//! Property tests for the histogram and snapshot layers: sharded
//! recording must be indistinguishable from single-stream recording, and
//! the snapshot wire format must be lossless.

use proptest::prelude::*;

use gmlake_telemetry::{
    Event, EventKind, Histogram, HistogramSummary, MemorySample, MemorySnapshot, PoolSnapshot,
};

fn latency_strategy() -> impl Strategy<Value = u64> {
    // Span several octaves, from sub-bucket-exact to huge.
    prop_oneof![
        4 => 0u64..64,
        4 => 64u64..100_000,
        2 => 100_000u64..10_000_000_000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-shard histograms equals one histogram fed the
    /// concatenated sample stream — bucket-exact, not just summary-close.
    #[test]
    fn merge_of_shards_equals_concatenated(
        shards in prop::collection::vec(
            prop::collection::vec(latency_strategy(), 0..200),
            1..6,
        )
    ) {
        let merged = Histogram::new();
        let reference = Histogram::new();
        for shard in &shards {
            let h = Histogram::new();
            for &v in shard {
                h.record(v);
                reference.record(v);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(merged.nonzero_buckets(), reference.nonzero_buckets());
        prop_assert_eq!(merged.count(), reference.count());
        prop_assert_eq!(merged.summary(), reference.summary());
    }

    /// Percentiles are monotone in q and bounded by the observed extrema.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        samples in prop::collection::vec(latency_strategy(), 1..500)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        let mut prev = 0u64;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            prop_assert!(p >= prev, "percentile dipped at q={}", i);
            prop_assert!(p >= lo && p <= hi, "p{} = {} outside [{}, {}]", i, p, lo, hi);
            prev = p;
        }
    }

    /// Arbitrary snapshots survive the JSON round trip exactly.
    #[test]
    fn snapshot_json_round_trips(
        reserved in prop::collection::vec(0u64..1 << 40, 0..20),
        n_events in 0usize..30,
        kind_seed in any::<u64>(),
    ) {
        let samples: Vec<MemorySample> = reserved
            .iter()
            .enumerate()
            .map(|(i, &r)| MemorySample {
                ts_ns: i as u64 * 10,
                reserved_bytes: r,
                active_bytes: r / 2,
                pending_bytes: r / 4,
                fragmentation: if r == 0 { 0.0 } else { 0.5 },
            })
            .collect();
        let events: Vec<Event> = (0..n_events)
            .map(|i| {
                let kinds = EventKind::ALL;
                Event {
                    ts_ns: i as u64,
                    kind: kinds[(kind_seed as usize + i) % kinds.len()],
                    bytes: (i as u64) << 20,
                    a: i as u64,
                    b: kind_seed % 97,
                }
            })
            .collect();
        let snap = MemorySnapshot {
            pools: vec![PoolSnapshot {
                pool: "gpu0 \"quoted\"\npool".to_string(), // exercise escaping
                final_reserved: samples.last().map_or(0, |s| s.reserved_bytes),
                final_active: samples.last().map_or(0, |s| s.active_bytes),
                dropped_events: kind_seed % 13,
                // Counters stay below 2^53: the JSON shim stores numbers
                // as f64, and the round trip must be exact.
                fault: (kind_seed % 2 == 0).then(|| gmlake_telemetry::FaultSnapshot {
                    faults: kind_seed % 1_000_003,
                    retries: (kind_seed % 1_000_003) * 2,
                    breaker_trips: kind_seed % 3,
                    breaker_open: kind_seed % 4 == 0,
                    rescues: kind_seed % 5,
                    journal_failed_ops: kind_seed % 1_000_003,
                    orphan_vas: kind_seed % 7,
                    orphan_va_bytes: (kind_seed % 7) << 21,
                    orphan_chunks: kind_seed % 11,
                }),
                samples,
                events,
                histograms: vec![(
                    "alloc_ns".to_string(),
                    HistogramSummary {
                        count: n_events as u64,
                        min_ns: 1,
                        max_ns: 1 << 30,
                        mean_ns: 123.25,
                        p50_ns: 10,
                        p90_ns: 100,
                        p99_ns: 1000,
                        p999_ns: 10_000,
                    },
                )],
            }],
        };
        let json = snap.to_json();
        prop_assert_eq!(MemorySnapshot::from_json(&json).unwrap(), snap.clone());
        // And it passes schema validation (timelines above are sorted and
        // the final gauges reconcile by construction).
        MemorySnapshot::validate_json(&json).unwrap();
        // The chrome-trace export of the same snapshot is valid JSON.
        gmlake_telemetry::json::parse(&snap.to_chrome_trace()).unwrap();
    }
}
