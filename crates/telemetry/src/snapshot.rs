//! Memory-timeline snapshots: the exportable artifact.
//!
//! A [`MemorySnapshot`] bundles, per pool, the sampled
//! reserved/active/pending/fragmentation series, the drained event trace,
//! and latency-histogram summaries. Two export formats:
//!
//! * [`MemorySnapshot::to_json`] — the canonical `gmlake-snapshot/v1`
//!   document, parsed back by [`MemorySnapshot::from_json`] and checked
//!   by [`MemorySnapshot::validate_json`] (the schema test CI runs
//!   against `--profile` output);
//! * [`MemorySnapshot::to_chrome_trace`] — a chrome://tracing /
//!   [Perfetto](https://ui.perfetto.dev) document: one counter track per
//!   pool for the memory series plus instant events for the trace.
//!
//! All timestamps are simulated nanoseconds from the driver clock.

use crate::event::{Event, EventKind};
use crate::histogram::HistogramSummary;
use crate::json::{self, Value};

/// Schema identifier written into and required of every snapshot.
pub const SCHEMA: &str = "gmlake-snapshot/v1";

/// One point on a pool's memory timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemorySample {
    /// When the sample was taken (simulated ns).
    pub ts_ns: u64,
    /// Bytes reserved from the device (cached + in use).
    pub reserved_bytes: u64,
    /// Bytes handed out to live allocations.
    pub active_bytes: u64,
    /// Bytes parked behind device events in the front-end shards.
    pub pending_bytes: u64,
    /// `1 - active/reserved` (0 when nothing is reserved), in `[0, 1]`.
    pub fragmentation: f64,
}

/// Fault-recovery and orphan accounting for one pool: the runtime's
/// retry/breaker counters merged with the allocator's fault-journal
/// residue, so chaos and serving runs surface both in one artifact.
///
/// Optional in the `gmlake-snapshot/v1` document (`"fault"`): absent for
/// pools profiled outside a fault-aware runtime, and older snapshots
/// without the section still parse.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSnapshot {
    /// Driver faults observed by the runtime handle.
    pub faults: u64,
    /// Retries the fault policy issued.
    pub retries: u64,
    /// Times the stitch circuit breaker opened.
    pub breaker_trips: u64,
    /// Whether the breaker was open (stitching disabled) at dump time.
    pub breaker_open: bool,
    /// Staged OOM-rescue invocations.
    pub rescues: u64,
    /// Driver sequences that failed mid-way and were unwound.
    pub journal_failed_ops: u64,
    /// VA reservations the unwind could not return.
    pub orphan_vas: u64,
    /// Bytes of those orphaned reservations.
    pub orphan_va_bytes: u64,
    /// Physical chunk handles the unwind could not release.
    pub orphan_chunks: u64,
}

/// Everything recorded for one pool.
#[derive(Clone, Debug, PartialEq)]
pub struct PoolSnapshot {
    /// Pool label (e.g. `"gpu0"`).
    pub pool: String,
    /// Reserved bytes at dump time; the last timeline sample must agree.
    pub final_reserved: u64,
    /// Active bytes at dump time.
    pub final_active: u64,
    /// Trace records lost to ring-buffer overflow.
    pub dropped_events: u64,
    /// Fault-recovery and orphan accounting, when profiled through a
    /// fault-aware runtime (`None` otherwise).
    pub fault: Option<FaultSnapshot>,
    /// The memory timeline, in non-decreasing `ts_ns` order.
    pub samples: Vec<MemorySample>,
    /// The drained event trace, in non-decreasing `ts_ns` order.
    pub events: Vec<Event>,
    /// Latency histogram summaries, `(name, summary)`, stable order.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// A whole-run snapshot across every profiled pool.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemorySnapshot {
    /// Per-pool snapshots, in registration order.
    pub pools: Vec<PoolSnapshot>,
}

impl MemorySnapshot {
    /// Serialize to the canonical `gmlake-snapshot/v1` JSON document.
    ///
    /// Numbers use Rust's shortest-round-trip float formatting, so
    /// [`from_json`](MemorySnapshot::from_json) reproduces this value
    /// exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"pools\": [");
        for (pi, pool) in self.pools.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!(
                "      \"pool\": \"{}\",\n",
                json::escape(&pool.pool)
            ));
            out.push_str(&format!(
                "      \"final_reserved_bytes\": {},\n",
                pool.final_reserved
            ));
            out.push_str(&format!(
                "      \"final_active_bytes\": {},\n",
                pool.final_active
            ));
            out.push_str(&format!(
                "      \"dropped_events\": {},\n",
                pool.dropped_events
            ));
            if let Some(fault) = &pool.fault {
                out.push_str(&format!(
                    "      \"fault\": {{\"faults\": {}, \"retries\": {}, \"breaker_trips\": {}, \"breaker_open\": {}, \"rescues\": {}, \"journal_failed_ops\": {}, \"orphan_vas\": {}, \"orphan_va_bytes\": {}, \"orphan_chunks\": {}}},\n",
                    fault.faults,
                    fault.retries,
                    fault.breaker_trips,
                    fault.breaker_open,
                    fault.rescues,
                    fault.journal_failed_ops,
                    fault.orphan_vas,
                    fault.orphan_va_bytes,
                    fault.orphan_chunks
                ));
            }
            out.push_str("      \"samples\": [");
            for (i, s) in pool.samples.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {{\"ts_ns\": {}, \"reserved_bytes\": {}, \"active_bytes\": {}, \"pending_bytes\": {}, \"fragmentation\": {}}}",
                    s.ts_ns, s.reserved_bytes, s.active_bytes, s.pending_bytes, s.fragmentation
                ));
            }
            out.push_str(if pool.samples.is_empty() {
                "],\n"
            } else {
                "\n      ],\n"
            });
            out.push_str("      \"events\": [");
            for (i, e) in pool.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {{\"ts_ns\": {}, \"kind\": \"{}\", \"bytes\": {}, \"a\": {}, \"b\": {}}}",
                    e.ts_ns,
                    e.kind.as_str(),
                    e.bytes,
                    e.a,
                    e.b
                ));
            }
            out.push_str(if pool.events.is_empty() {
                "],\n"
            } else {
                "\n      ],\n"
            });
            out.push_str("      \"histograms\": {");
            for (i, (name, h)) in pool.histograms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        \"{}\": {{\"count\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                    json::escape(name),
                    h.count,
                    h.min_ns,
                    h.max_ns,
                    h.mean_ns,
                    h.p50_ns,
                    h.p90_ns,
                    h.p99_ns,
                    h.p999_ns
                ));
            }
            out.push_str(if pool.histograms.is_empty() {
                "}\n"
            } else {
                "\n      }\n"
            });
            out.push_str("    }");
        }
        out.push_str(if self.pools.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parse a `gmlake-snapshot/v1` document. Strict: unknown event
    /// kinds, missing fields, or a wrong `schema` are errors.
    pub fn from_json(text: &str) -> Result<MemorySnapshot, String> {
        let doc = json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let pools = doc
            .get("pools")
            .and_then(Value::as_arr)
            .ok_or("missing \"pools\" array")?;
        let pools = pools
            .iter()
            .enumerate()
            .map(|(i, p)| parse_pool(p).map_err(|e| format!("pools[{i}]: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MemorySnapshot { pools })
    }

    /// Schema-validate a snapshot document. On top of
    /// [`from_json`](MemorySnapshot::from_json)'s strict parse, checks
    /// that each pool's sample and event timelines are sorted by
    /// timestamp, that fragmentation stays in `[0, 1]`, and that the
    /// last timeline sample reconciles with the pool's final
    /// reserved/active gauges.
    pub fn validate_json(text: &str) -> Result<(), String> {
        let snap = MemorySnapshot::from_json(text)?;
        for pool in &snap.pools {
            let name = &pool.pool;
            for w in pool.samples.windows(2) {
                if w[1].ts_ns < w[0].ts_ns {
                    return Err(format!("{name}: samples not sorted by ts_ns"));
                }
            }
            for w in pool.events.windows(2) {
                if w[1].ts_ns < w[0].ts_ns {
                    return Err(format!("{name}: events not sorted by ts_ns"));
                }
            }
            for s in &pool.samples {
                if !(0.0..=1.0).contains(&s.fragmentation) {
                    return Err(format!(
                        "{name}: fragmentation {} outside [0, 1]",
                        s.fragmentation
                    ));
                }
            }
            if let Some(last) = pool.samples.last() {
                if last.reserved_bytes != pool.final_reserved
                    || last.active_bytes != pool.final_active
                {
                    return Err(format!(
                        "{name}: last sample ({} reserved / {} active) does not reconcile \
                         with final gauges ({} / {})",
                        last.reserved_bytes,
                        last.active_bytes,
                        pool.final_reserved,
                        pool.final_active
                    ));
                }
            }
        }
        Ok(())
    }

    /// Export as a chrome://tracing JSON document (open in
    /// `chrome://tracing` or Perfetto). Per pool: a process-name
    /// metadata record, one `"C"` counter event per memory sample
    /// (reserved/active/pending series on one track), and one `"i"`
    /// instant event per trace record. Timestamps are microseconds, as
    /// the format requires.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [");
        let mut first = true;
        let mut push = |out: &mut String, line: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&line);
        };
        for (pid, pool) in self.pools.iter().enumerate() {
            push(
                &mut out,
                format!(
                    "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"args\": {{\"name\": \"{}\"}}}}",
                    json::escape(&pool.pool)
                ),
            );
            for s in &pool.samples {
                push(
                    &mut out,
                    format!(
                        "{{\"name\": \"memory\", \"ph\": \"C\", \"ts\": {}, \"pid\": {pid}, \"args\": {{\"reserved\": {}, \"active\": {}, \"pending\": {}}}}}",
                        s.ts_ns as f64 / 1000.0,
                        s.reserved_bytes,
                        s.active_bytes,
                        s.pending_bytes
                    ),
                );
            }
            for e in &pool.events {
                push(
                    &mut out,
                    format!(
                        "{{\"name\": \"{}\", \"ph\": \"i\", \"ts\": {}, \"pid\": {pid}, \"tid\": 0, \"s\": \"p\", \"args\": {{\"bytes\": {}, \"a\": {}, \"b\": {}}}}}",
                        e.kind.as_str(),
                        e.ts_ns as f64 / 1000.0,
                        e.bytes,
                        e.a,
                        e.b
                    ),
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or(format!("missing or non-integer \"{key}\""))
}

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or(format!("missing or non-numeric \"{key}\""))
}

fn parse_pool(p: &Value) -> Result<PoolSnapshot, String> {
    let pool = p
        .get("pool")
        .and_then(Value::as_str)
        .ok_or("missing \"pool\" name")?
        .to_string();
    let samples = p
        .get("samples")
        .and_then(Value::as_arr)
        .ok_or("missing \"samples\" array")?
        .iter()
        .map(|s| {
            Ok(MemorySample {
                ts_ns: field_u64(s, "ts_ns")?,
                reserved_bytes: field_u64(s, "reserved_bytes")?,
                active_bytes: field_u64(s, "active_bytes")?,
                pending_bytes: field_u64(s, "pending_bytes")?,
                fragmentation: field_f64(s, "fragmentation")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let events = p
        .get("events")
        .and_then(Value::as_arr)
        .ok_or("missing \"events\" array")?
        .iter()
        .map(|e| {
            let kind = e
                .get("kind")
                .and_then(Value::as_str)
                .ok_or("missing event \"kind\"")?;
            Ok(Event {
                ts_ns: field_u64(e, "ts_ns")?,
                kind: EventKind::parse(kind).ok_or(format!("unknown event kind {kind:?}"))?,
                bytes: field_u64(e, "bytes")?,
                a: field_u64(e, "a")?,
                b: field_u64(e, "b")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let histograms = match p.get("histograms") {
        Some(Value::Obj(members)) => members
            .iter()
            .map(|(name, h)| {
                Ok((
                    name.clone(),
                    HistogramSummary {
                        count: field_u64(h, "count")?,
                        min_ns: field_u64(h, "min_ns")?,
                        max_ns: field_u64(h, "max_ns")?,
                        mean_ns: field_f64(h, "mean_ns")?,
                        p50_ns: field_u64(h, "p50_ns")?,
                        p90_ns: field_u64(h, "p90_ns")?,
                        p99_ns: field_u64(h, "p99_ns")?,
                        p999_ns: field_u64(h, "p999_ns")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing \"histograms\" object".into()),
    };
    let fault = match p.get("fault") {
        None => None,
        Some(f) => Some(FaultSnapshot {
            faults: field_u64(f, "faults")?,
            retries: field_u64(f, "retries")?,
            breaker_trips: field_u64(f, "breaker_trips")?,
            breaker_open: f
                .get("breaker_open")
                .and_then(Value::as_bool)
                .ok_or("missing or non-boolean \"breaker_open\"")?,
            rescues: field_u64(f, "rescues")?,
            journal_failed_ops: field_u64(f, "journal_failed_ops")?,
            orphan_vas: field_u64(f, "orphan_vas")?,
            orphan_va_bytes: field_u64(f, "orphan_va_bytes")?,
            orphan_chunks: field_u64(f, "orphan_chunks")?,
        }),
    };
    Ok(PoolSnapshot {
        pool,
        final_reserved: field_u64(p, "final_reserved_bytes")?,
        final_active: field_u64(p, "final_active_bytes")?,
        dropped_events: field_u64(p, "dropped_events")?,
        fault,
        samples,
        events,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MemorySnapshot {
        MemorySnapshot {
            pools: vec![PoolSnapshot {
                pool: "gpu0 (gmlake)".into(),
                final_reserved: 1 << 30,
                final_active: 123_456,
                dropped_events: 2,
                fault: Some(FaultSnapshot {
                    faults: 3,
                    retries: 5,
                    breaker_trips: 1,
                    breaker_open: true,
                    rescues: 2,
                    journal_failed_ops: 3,
                    orphan_vas: 0,
                    orphan_va_bytes: 0,
                    orphan_chunks: 0,
                }),
                samples: vec![
                    MemorySample {
                        ts_ns: 100,
                        reserved_bytes: 1 << 20,
                        active_bytes: 1 << 19,
                        pending_bytes: 0,
                        fragmentation: 0.5,
                    },
                    MemorySample {
                        ts_ns: 200,
                        reserved_bytes: 1 << 30,
                        active_bytes: 123_456,
                        pending_bytes: 4096,
                        fragmentation: 0.25,
                    },
                ],
                events: vec![
                    Event {
                        ts_ns: 150,
                        kind: EventKind::StitchDecision,
                        bytes: 4096,
                        a: 3,
                        b: 7,
                    },
                    Event {
                        ts_ns: 180,
                        kind: EventKind::Stitch,
                        bytes: 8192,
                        a: 2,
                        b: 0,
                    },
                ],
                histograms: vec![(
                    "alloc_ns".into(),
                    HistogramSummary {
                        count: 10,
                        min_ns: 5,
                        max_ns: 900,
                        mean_ns: 101.5,
                        p50_ns: 80,
                        p90_ns: 500,
                        p99_ns: 900,
                        p999_ns: 900,
                    },
                )],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert_eq!(MemorySnapshot::from_json(&json).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let empty = MemorySnapshot::default();
        assert_eq!(MemorySnapshot::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn fault_section_is_optional_and_round_trips() {
        // With the section: exact round trip (covered by sample_snapshot).
        let with = sample_snapshot();
        let parsed = MemorySnapshot::from_json(&with.to_json()).unwrap();
        assert_eq!(parsed.pools[0].fault, with.pools[0].fault);

        // Without it: the document omits "fault" entirely and still
        // parses/validates (pre-fault snapshots stay readable).
        let mut without = sample_snapshot();
        without.pools[0].fault = None;
        let json = without.to_json();
        assert!(!json.contains("\"fault\""));
        assert_eq!(MemorySnapshot::from_json(&json).unwrap(), without);
        MemorySnapshot::validate_json(&json).unwrap();

        // A present but malformed section is a strict-parse error.
        let broken = with
            .to_json()
            .replace("\"breaker_open\": true", "\"breaker_open\": 7");
        assert!(MemorySnapshot::from_json(&broken)
            .unwrap_err()
            .contains("breaker_open"));
    }

    #[test]
    fn validate_accepts_well_formed_and_rejects_violations() {
        let mut snap = sample_snapshot();
        // Well-formed but unreconciled: last sample != final gauges.
        let err = MemorySnapshot::validate_json(&snap.to_json());
        assert!(err.is_ok(), "{err:?}");

        snap.pools[0].samples[1].reserved_bytes = 1;
        assert!(MemorySnapshot::validate_json(&snap.to_json())
            .unwrap_err()
            .contains("reconcile"));

        let mut snap = sample_snapshot();
        snap.pools[0].samples.swap(0, 1);
        assert!(MemorySnapshot::validate_json(&snap.to_json())
            .unwrap_err()
            .contains("sorted"));

        let mut snap = sample_snapshot();
        snap.pools[0].samples[0].fragmentation = 1.5;
        // First sample order is still fine; fragmentation check fires.
        assert!(MemorySnapshot::validate_json(&snap.to_json())
            .unwrap_err()
            .contains("fragmentation"));
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_unknown_kinds() {
        let json = sample_snapshot().to_json();
        let wrong = json.replace(SCHEMA, "gmlake-snapshot/v0");
        assert!(MemorySnapshot::from_json(&wrong)
            .unwrap_err()
            .contains("schema"));
        let bad_kind = json.replace("\"stitch\"", "\"warp_drive\"");
        assert!(MemorySnapshot::from_json(&bad_kind)
            .unwrap_err()
            .contains("unknown event kind"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let trace = sample_snapshot().to_chrome_trace();
        let doc = crate::json::parse(&trace).expect("chrome trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 metadata + 2 counter samples + 2 instants.
        assert_eq!(events.len(), 5);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, vec!["M", "C", "C", "i", "i"]);
        let counter = &events[1];
        assert_eq!(
            counter
                .get("args")
                .unwrap()
                .get("reserved")
                .unwrap()
                .as_u64(),
            Some(1 << 20)
        );
        // ts is in microseconds.
        assert_eq!(counter.get("ts").unwrap().as_f64(), Some(0.1));
    }
}
