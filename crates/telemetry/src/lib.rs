//! `gmlake-telemetry` — low-overhead observability for the GMLake stack.
//!
//! The allocator crates report end-of-run counters (`MemStats`,
//! `DriverStats`, per-shard cache stats); this crate turns them into a
//! *timeline*: what happened, when, and how long it took. It is the
//! measurement substrate for the paper's memory-behaviour figures
//! (reserved-vs-active curves, stitch activity over time) and for the
//! roadmap's serving/self-tuning items, which need p99 allocation latency
//! under churn.
//!
//! Three pieces, composable but designed to be used together through
//! [`PoolTelemetry`]:
//!
//! * [`Recorder`] — a lock-minimal structured event log. Bounded ring
//!   buffers sharded by thread keep the hot path to one short
//!   uncontended mutex; when a ring fills, the oldest record is dropped
//!   and counted, never blocking an allocation.
//! * [`Histogram`] — log-bucketed, mergeable latency histograms with
//!   atomic buckets (`&self` recording) and p50/p90/p99/p999 readout.
//! * [`MemorySnapshot`] — a serializable dump of per-pool
//!   reserved/active/pending/fragmentation series plus the event trace
//!   and histogram summaries, exportable as JSON
//!   ([`MemorySnapshot::to_json`]) or chrome://tracing format
//!   ([`MemorySnapshot::to_chrome_trace`]).
//!
//! # Overhead model
//!
//! Instrumented code holds an `Option<Arc<PoolTelemetry>>`; `None` is the
//! compiled-out baseline (one branch). With telemetry attached but
//! *disabled* — the default — every hook reduces to one relaxed atomic
//! load. Enabled recording is *sampled*: [`PoolTelemetry::hot_sample`]
//! admits one in `2^k` operations (default 1 in 32) on the fast paths, so
//! the ~100 ns `DeviceAllocator` shard hit pays the timestamp + ring-push
//! cost only occasionally. Slow paths (BestFit, stitching, driver calls)
//! record every operation — they are orders of magnitude above the
//! per-record cost. `bench_pr6` gates both bounds in CI.
//!
//! # Example
//!
//! ```
//! use gmlake_telemetry::{EventKind, MemorySnapshot, PoolTelemetry};
//!
//! let tel = PoolTelemetry::full(); // record every op (no sampling)
//! tel.enable();
//! tel.record(EventKind::Alloc, 4096, 0, 0);
//! tel.alloc_ns().record(250);
//! tel.record_sample(1 << 20, 4096, 0, 0.5);
//!
//! let snap = MemorySnapshot {
//!     pools: vec![tel.snapshot("gpu0", 1 << 20, 4096)],
//! };
//! let json = snap.to_json();
//! MemorySnapshot::validate_json(&json).unwrap();
//! assert_eq!(MemorySnapshot::from_json(&json).unwrap(), snap);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod histogram;
pub mod json;
pub mod log;
pub mod pool;
pub mod recorder;
pub mod snapshot;

pub use event::{Event, EventKind};
pub use histogram::{Histogram, HistogramSummary};
pub use log::Level;
pub use pool::{PoolTelemetry, TelemetryClock};
pub use recorder::Recorder;
pub use snapshot::{FaultSnapshot, MemorySample, MemorySnapshot, PoolSnapshot, SCHEMA};
