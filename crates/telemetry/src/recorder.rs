//! Lock-minimal structured event recorder.
//!
//! Records land in one of [`DEFAULT_SHARDS`]-many bounded rings; each
//! thread is pinned round-robin to a shard on first use, so under steady
//! state a record is one uncontended `parking_lot` mutex lock plus a
//! `VecDeque` push. Full rings overwrite their oldest record and bump a
//! shared drop counter — recording never blocks or allocates (ring
//! capacity is reserved up front).

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

use parking_lot::Mutex;

use crate::event::Event;

/// Default shard count (threads are striped across these).
pub const DEFAULT_SHARDS: usize = 8;
/// Default per-shard ring capacity.
pub const DEFAULT_CAPACITY: usize = 4096;

// Round-robin thread → shard assignment, cached per thread. Process-wide
// on purpose: successive threads land on successive shards regardless of
// which recorder they hit first.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static SHARD_HINT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn shard_hint() -> usize {
    SHARD_HINT.with(|h| {
        let mut v = h.get();
        if v == usize::MAX {
            v = NEXT_SHARD.fetch_add(1, Relaxed);
            h.set(v);
        }
        v
    })
}

/// Sharded bounded ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct Recorder {
    shards: Box<[Mutex<VecDeque<Event>>]>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(DEFAULT_SHARDS, DEFAULT_CAPACITY)
    }
}

impl Recorder {
    /// A recorder with `shards` rings of `capacity` records each. Both
    /// are clamped to at least 1.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        Recorder {
            shards: (0..shards)
                .map(|_| Mutex::new(VecDeque::with_capacity(capacity)))
                .collect(),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one record to the calling thread's shard, evicting the
    /// oldest record there if the ring is full.
    pub fn record(&self, event: Event) {
        let mut ring = self.shards[shard_hint() % self.shards.len()].lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        ring.push_back(event);
    }

    /// Move every buffered record out, merged across shards and sorted by
    /// timestamp (stable, so same-timestamp records keep per-shard order).
    pub fn drain(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for shard in self.shards.iter() {
            all.extend(shard.lock().drain(..));
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Records currently buffered across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records overwritten because their ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            kind: EventKind::Alloc,
            bytes: 1,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn drain_merges_and_sorts() {
        let r = Recorder::new(4, 16);
        for ts in [5, 1, 9, 3] {
            r.record(ev(ts));
        }
        assert_eq!(r.len(), 4);
        let ts: Vec<u64> = r.drain().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![1, 3, 5, 9]);
        assert!(r.is_empty());
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let r = Recorder::new(1, 2);
        for ts in 0..5 {
            r.record(ev(ts));
        }
        assert_eq!(r.dropped(), 3);
        let ts: Vec<u64> = r.drain().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![3, 4], "oldest evicted first");
    }

    #[test]
    fn concurrent_records_all_land() {
        let r = Recorder::new(4, 10_000);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..500 {
                        r.record(ev(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(r.len(), 8 * 500);
        assert_eq!(r.dropped(), 0);
    }
}
