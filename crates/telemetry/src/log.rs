//! Leveled stderr logging.
//!
//! A tiny `log`-crate stand-in for the workspace's debug prints. The
//! active level is read once per process from the `GMLAKE_LOG`
//! environment variable (`off`, `error`, `warn`, `info`, `debug`,
//! `trace`; default `off`). Setting the legacy `GMLAKE_DEBUG_S3`
//! variable — the old ad-hoc switch for `gmlake-core`'s BestFit S2/S3/S4
//! prints — is a back-compat alias that raises the level to at least
//! `debug`.
//!
//! ```
//! use gmlake_telemetry::log::{self, Level};
//!
//! if log::enabled(Level::Debug) {
//!     log::log(Level::Debug, "gmlake_core::bestfit", format_args!("S3 fallback"));
//! }
//! ```

use std::sync::OnceLock;

/// Log severity, most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or corrupting conditions.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// High-level lifecycle messages.
    Info = 3,
    /// Per-decision diagnostics (the old `GMLAKE_DEBUG_S3` prints).
    Debug = 4,
    /// Per-operation firehose.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// `GMLAKE_LOG` value → numeric level (0 = off). Unknown strings are off.
fn parse_level(s: &str) -> u8 {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => 1,
        "warn" | "warning" => 2,
        "info" => 3,
        "debug" => 4,
        "trace" => 5,
        _ => 0, // includes "off", "", and anything unrecognised
    }
}

fn active_level() -> u8 {
    static LEVEL: OnceLock<u8> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let mut level = std::env::var("GMLAKE_LOG")
            .map(|v| parse_level(&v))
            .unwrap_or(0);
        // Back-compat: the pre-telemetry debug switch implies `debug`.
        if std::env::var_os("GMLAKE_DEBUG_S3").is_some() {
            level = level.max(Level::Debug as u8);
        }
        level
    })
}

/// True when messages at `level` are emitted. One cached-atomic read
/// after the first call; callers may also cache the result themselves.
pub fn enabled(level: Level) -> bool {
    active_level() >= level as u8
}

/// Write one line to stderr if `level` is enabled:
/// `[LEVEL target] message`.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("[{} {target}] {args}", level.as_str());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(parse_level("error"), 1);
        assert_eq!(parse_level("WARN"), 2);
        assert_eq!(parse_level(" info "), 3);
        assert_eq!(parse_level("debug"), 4);
        assert_eq!(parse_level("trace"), 5);
        assert_eq!(parse_level("off"), 0);
        assert_eq!(parse_level(""), 0);
        assert_eq!(parse_level("nonsense"), 0);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
    }
}
