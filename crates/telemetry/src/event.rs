//! Structured trace records.
//!
//! Every record is a fixed-size [`Event`]: a timestamp, a [`EventKind`]
//! discriminant, a byte count, and two kind-specific payload words. Keeping
//! the record `Copy` and pointer-free means the recorder's ring buffers
//! never allocate on the hot path.

/// What happened. The `bytes`/`a`/`b` payload meaning is per-kind; see
/// each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An allocation was served. `bytes` = size, `a` = stream id.
    Alloc,
    /// An allocation was returned. `bytes` = size, `a` = stream id.
    Free,
    /// `DeviceAllocator` served a small alloc from its shard cache.
    /// `bytes` = size class, `a` = stream id.
    ShardHit,
    /// `DeviceAllocator` missed its shard cache and fell through to the
    /// wrapped core. `bytes` = size class, `a` = stream id.
    ShardMiss,
    /// A cross-stream free was parked behind a device event. `bytes` =
    /// size class, `a` = freeing stream, `b` = owning stream.
    CrossStreamPark,
    /// Parked blocks were promoted after their guard events completed.
    /// `bytes` = bytes promoted, `a` = block count.
    EventPromotion,
    /// Core BestFit classified a large request. `bytes` = aligned request
    /// size, `a` = tier chosen (1 exact, 2 single, 3 multiple,
    /// 4 insufficient), `b` = candidate pBlocks probed.
    StitchDecision,
    /// pBlocks were stitched into a new sBlock. `bytes` = stitched size,
    /// `a` = parts count.
    Stitch,
    /// A pBlock was split. `bytes` = original size, `a` = carved size.
    Split,
    /// A cached sBlock/pBlock was evicted to enforce pool capacity.
    /// `bytes` = freed size.
    Evict,
    /// A defrag/compact pass ran. `bytes` = bytes released.
    Defrag,
    /// The driver's fault-injection layer fired. `a` = faulted-op index
    /// (`FaultOp::index`), `b` = cumulative injected-fault count.
    FaultInjected,
    /// One stage of the runtime's staged OOM-rescue pipeline ran.
    /// `bytes` = bytes released by the stage, `a` = stage index
    /// (1 flush, 2 drain, 3 compact, 4 tenant rescue hook, 5 cross-pool),
    /// `b` = 1 when the subsequent retry succeeded.
    RescueStage,
    /// The stitch circuit breaker changed state. `a` = 1 opened (stitching
    /// disabled), 0 closed (re-enabled); `b` = consecutive faults observed.
    BreakerTrip,
    /// The serving admission controller ruled on a tenant. `bytes` =
    /// requested quota, `a` = tenant id, `b` = verdict (0 admitted,
    /// 1 rejected, 2 queued, 3 shed-then-admitted, 4 queue timeout).
    TenantAdmission,
    /// A tenant arrived at or departed from a serving pool. `bytes` =
    /// tenant quota, `a` = tenant id, `b` = 1 arrival, 0 departure.
    TenantChurn,
    /// An idle tenant's resident memory was reclaimed by the tenant-aware
    /// rescue/shed path. `bytes` = bytes reclaimed, `a` = tenant id,
    /// `b` = live allocations dropped.
    TenantEvict,
    /// A planned core served an allocation straight from its static plan
    /// (no driver call). `bytes` = size, `a` = plan slot index,
    /// `b` = stream id.
    PlanHit,
    /// A planned core routed a request to its reactive fallback (size or
    /// stream not in the plan, slot space-blocked, or mid-iteration
    /// growth). `bytes` = size, `a` = stream id, `b` = 0 alloc / 1 free.
    PlanResidue,
    /// A planned core discarded its plan and returned to recording.
    /// `bytes` = arena bytes released, `a` = cumulative replan count.
    Replan,
}

impl EventKind {
    /// Every kind, in declaration order (schema validation walks this).
    pub const ALL: [EventKind; 20] = [
        EventKind::Alloc,
        EventKind::Free,
        EventKind::ShardHit,
        EventKind::ShardMiss,
        EventKind::CrossStreamPark,
        EventKind::EventPromotion,
        EventKind::StitchDecision,
        EventKind::Stitch,
        EventKind::Split,
        EventKind::Evict,
        EventKind::Defrag,
        EventKind::FaultInjected,
        EventKind::RescueStage,
        EventKind::BreakerTrip,
        EventKind::TenantAdmission,
        EventKind::TenantChurn,
        EventKind::TenantEvict,
        EventKind::PlanHit,
        EventKind::PlanResidue,
        EventKind::Replan,
    ];

    /// Stable wire name used in snapshots and chrome traces.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Alloc => "alloc",
            EventKind::Free => "free",
            EventKind::ShardHit => "shard_hit",
            EventKind::ShardMiss => "shard_miss",
            EventKind::CrossStreamPark => "cross_stream_park",
            EventKind::EventPromotion => "event_promotion",
            EventKind::StitchDecision => "stitch_decision",
            EventKind::Stitch => "stitch",
            EventKind::Split => "split",
            EventKind::Evict => "evict",
            EventKind::Defrag => "defrag",
            EventKind::FaultInjected => "fault_injected",
            EventKind::RescueStage => "rescue_stage",
            EventKind::BreakerTrip => "breaker_trip",
            EventKind::TenantAdmission => "tenant_admission",
            EventKind::TenantChurn => "tenant_churn",
            EventKind::TenantEvict => "tenant_evict",
            EventKind::PlanHit => "plan_hit",
            EventKind::PlanResidue => "plan_residue",
            EventKind::Replan => "replan",
        }
    }

    /// Inverse of [`EventKind::as_str`]; `None` for unknown names.
    pub fn parse(name: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.as_str() == name)
    }
}

/// One trace record. `ts_ns` comes from the attached
/// [`TelemetryClock`](crate::TelemetryClock) (the sim clock in this
/// workspace) or from a per-pool sequence counter when no clock is set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Timestamp, simulated nanoseconds (or a sequence number without a
    /// clock — still totally ordered per pool).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Size payload; see [`EventKind`] for the per-kind meaning.
    pub bytes: u64,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
            assert!(seen.insert(k.as_str()), "duplicate name {}", k.as_str());
        }
        assert_eq!(EventKind::parse("not_a_kind"), None);
    }
}
