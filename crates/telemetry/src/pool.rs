//! Per-pool telemetry hub.
//!
//! One [`PoolTelemetry`] instance rides alongside each allocator pool
//! (the `DeviceAllocator` front-end, its wrapped core, and the driver all
//! share it via `Arc`). It owns the event [`Recorder`], the latency
//! [`Histogram`]s, and the memory-timeline sample buffer, and gates
//! everything behind one runtime-togglable flag:
//!
//! * **detached** (`Option::None` at the call site) — zero cost;
//! * **disabled** (the default) — one relaxed atomic load per hook;
//! * **enabled** — fast-path hooks additionally consult a per-thread
//!   sampling counter ([`PoolTelemetry::hot_sample`]) so only 1 in
//!   `2^k` operations pays for timestamps and ring pushes.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::event::{Event, EventKind};
use crate::histogram::Histogram;
use crate::recorder::Recorder;
use crate::snapshot::{MemorySample, PoolSnapshot};

/// A monotonic nanosecond source for event timestamps. In this workspace
/// the simulated driver (`CudaDriver`) implements it with the sim clock;
/// without a clock attached, [`PoolTelemetry`] falls back to a sequence
/// counter (still totally ordered, just not in time units).
pub trait TelemetryClock: Send + Sync {
    /// Current time in nanoseconds.
    fn now_ns(&self) -> u64;
}

/// Default sampling mask for fast-path hooks: record 1 in 32. Chosen so
/// the enabled sink stays within the `bench_pr6` 25% overhead budget on
/// a ~35 ns warm alloc/free path: a sampled call pays for two `Instant`
/// reads and a ring push, so admitting one in 32 keeps the amortized
/// cost in single-digit nanoseconds while still feeding the histograms
/// thousands of points per second.
pub const DEFAULT_SAMPLE_MASK: u64 = 31;

thread_local! {
    static SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// Shared telemetry state for one pool. See the module docs for the
/// overhead model.
pub struct PoolTelemetry {
    enabled: AtomicBool,
    sample_mask: u64,
    recorder: Recorder,
    alloc_ns: Histogram,
    free_ns: Histogram,
    bestfit_ns: Histogram,
    driver_ns: Histogram,
    samples: Mutex<Vec<MemorySample>>,
    clock: RwLock<Option<Arc<dyn TelemetryClock>>>,
    /// Mirrors `clock.is_some()` for lock-free fast-path checks.
    has_clock: AtomicBool,
    /// Last clock reading published by [`PoolTelemetry::note_now`]: the
    /// hot paths stamp events from this relaxed load instead of taking
    /// the clock owner's lock. The sim clock only advances inside driver
    /// calls — which publish here — so between driver calls the cached
    /// value IS the exact current time.
    hot_clock: AtomicU64,
    seq: AtomicU64,
}

impl std::fmt::Debug for PoolTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolTelemetry")
            .field("enabled", &self.is_enabled())
            .field("sample_mask", &self.sample_mask)
            .field("buffered_events", &self.recorder.len())
            .finish_non_exhaustive()
    }
}

impl Default for PoolTelemetry {
    fn default() -> Self {
        PoolTelemetry::new()
    }
}

impl PoolTelemetry {
    fn with_mask(sample_mask: u64) -> Self {
        PoolTelemetry {
            enabled: AtomicBool::new(false),
            sample_mask,
            recorder: Recorder::default(),
            alloc_ns: Histogram::new(),
            free_ns: Histogram::new(),
            bestfit_ns: Histogram::new(),
            driver_ns: Histogram::new(),
            samples: Mutex::new(Vec::new()),
            clock: RwLock::new(None),
            has_clock: AtomicBool::new(false),
            hot_clock: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }

    /// Disabled telemetry with the default 1-in-32 fast-path sampling.
    pub fn new() -> Self {
        PoolTelemetry::with_mask(DEFAULT_SAMPLE_MASK)
    }

    /// Disabled telemetry that records *every* fast-path operation when
    /// enabled (no sampling). Higher overhead; use for profiling runs
    /// where completeness beats throughput.
    pub fn full() -> Self {
        PoolTelemetry::with_mask(0)
    }

    /// Attach a timestamp source (builder form).
    pub fn with_clock(self, clock: Arc<dyn TelemetryClock>) -> Self {
        self.set_clock(clock);
        self
    }

    /// Attach or replace the timestamp source after construction.
    pub fn set_clock(&self, clock: Arc<dyn TelemetryClock>) {
        self.hot_clock.store(clock.now_ns(), Relaxed);
        *self.clock.write() = Some(clock);
        self.has_clock.store(true, Relaxed);
    }

    /// Publish the clock owner's current time for lock-free hot-path
    /// stamping (see the `hot_clock` field). The driver calls this from
    /// every costed entry, where it already holds its own lock and the
    /// reading is free.
    #[inline]
    pub fn note_now(&self, now_ns: u64) {
        self.hot_clock.store(now_ns, Relaxed);
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Relaxed);
    }

    /// Stop recording. Buffered data is kept until drained.
    pub fn disable(&self) {
        self.enabled.store(false, Relaxed);
    }

    /// Whether hooks currently record. One relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Fast-path gate: false when disabled, and when enabled admits one
    /// call in `sample_mask + 1` per thread. Callers skip *all*
    /// telemetry work (timestamps included) on a false return.
    #[inline]
    pub fn hot_sample(&self) -> bool {
        if !self.is_enabled() {
            return false;
        }
        if self.sample_mask == 0 {
            return true;
        }
        SAMPLE_TICK.with(|c| {
            let t = c.get().wrapping_add(1);
            c.set(t);
            t & self.sample_mask == 0
        })
    }

    /// Current timestamp, read exactly: the attached clock (under its
    /// lock), or a per-pool sequence counter when none is set. Slow-path
    /// use only; hot paths go through the lock-free
    /// [`hot_now_ns`](PoolTelemetry::hot_now_ns).
    pub fn now_ns(&self) -> u64 {
        if let Some(clock) = self.clock.read().as_ref() {
            clock.now_ns()
        } else {
            self.seq.fetch_add(1, Relaxed)
        }
    }

    /// Lock-free timestamp for hot-path events: the cached clock reading
    /// published by [`note_now`](PoolTelemetry::note_now) (exact whenever
    /// no driver call is in flight, since only driver calls advance the
    /// sim clock), or the sequence counter when no clock is attached.
    #[inline]
    pub fn hot_now_ns(&self) -> u64 {
        if self.has_clock.load(Relaxed) {
            self.hot_clock.load(Relaxed)
        } else {
            self.seq.fetch_add(1, Relaxed)
        }
    }

    /// Record an event stamped with
    /// [`hot_now_ns`](PoolTelemetry::hot_now_ns). No-op while disabled.
    pub fn record(&self, kind: EventKind, bytes: u64, a: u64, b: u64) {
        if self.is_enabled() {
            self.record_at(self.hot_now_ns(), kind, bytes, a, b);
        }
    }

    /// Record an event with a caller-supplied timestamp (layers that own
    /// a clock, like `gmlake-core`, stamp events themselves). No-op
    /// while disabled.
    pub fn record_at(&self, ts_ns: u64, kind: EventKind, bytes: u64, a: u64, b: u64) {
        if self.is_enabled() {
            self.recorder.record(Event {
                ts_ns,
                kind,
                bytes,
                a,
                b,
            });
        }
    }

    /// Latency of `DeviceAllocator` allocation calls.
    pub fn alloc_ns(&self) -> &Histogram {
        &self.alloc_ns
    }

    /// Latency of `DeviceAllocator` free calls.
    pub fn free_ns(&self) -> &Histogram {
        &self.free_ns
    }

    /// Latency of core BestFit + stitch decisions.
    pub fn bestfit_ns(&self) -> &Histogram {
        &self.bestfit_ns
    }

    /// Simulated cost of driver calls (from the driver's cost model).
    pub fn driver_ns(&self) -> &Histogram {
        &self.driver_ns
    }

    /// Append a memory-timeline sample stamped with
    /// [`now_ns`](PoolTelemetry::now_ns). No-op while disabled.
    pub fn record_sample(&self, reserved: u64, active: u64, pending: u64, fragmentation: f64) {
        if self.is_enabled() {
            let ts_ns = self.now_ns();
            self.samples.lock().push(MemorySample {
                ts_ns,
                reserved_bytes: reserved,
                active_bytes: active,
                pending_bytes: pending,
                fragmentation,
            });
        }
    }

    /// Buffered trace records (cheap; takes each ring lock briefly).
    pub fn buffered_events(&self) -> usize {
        self.recorder.len()
    }

    /// Drain everything into a serializable [`PoolSnapshot`]. The caller
    /// supplies the pool label and the final reserved/active gauges (from
    /// `MemStats`), which the snapshot schema requires to reconcile with
    /// the timeline's last sample. Trace records are drained (removed);
    /// samples and histogram counts are left in place.
    pub fn snapshot(&self, pool: &str, final_reserved: u64, final_active: u64) -> PoolSnapshot {
        PoolSnapshot {
            pool: pool.to_string(),
            final_reserved,
            final_active,
            dropped_events: self.recorder.dropped(),
            // Fault accounting lives in the runtime/allocator, not the
            // sink; the profiler attaches it after draining (see
            // `MemoryProfiler::dump`).
            fault: None,
            samples: self.samples.lock().clone(),
            events: self.recorder.drain(),
            histograms: vec![
                ("alloc_ns".to_string(), self.alloc_ns.summary()),
                ("free_ns".to_string(), self.free_ns.summary()),
                ("bestfit_ns".to_string(), self.bestfit_ns.summary()),
                ("driver_ns".to_string(), self.driver_ns.summary()),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = PoolTelemetry::full();
        t.record(EventKind::Alloc, 1, 0, 0);
        t.record_at(5, EventKind::Free, 1, 0, 0);
        t.record_sample(1, 1, 0, 0.0);
        assert!(!t.hot_sample());
        let snap = t.snapshot("p", 0, 0);
        assert!(snap.samples.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn full_mode_samples_every_call() {
        let t = PoolTelemetry::full();
        t.enable();
        assert!((0..100).all(|_| t.hot_sample()));
    }

    #[test]
    fn masked_mode_samples_one_in_mask_plus_one() {
        let t = PoolTelemetry::new();
        t.enable();
        // A multiple of the sampling period, so the thread-local tick's
        // starting phase cannot shift the expected count.
        let hits = (0..3200).filter(|_| t.hot_sample()).count();
        assert_eq!(hits, 100);
    }

    #[test]
    fn sequence_timestamps_are_ordered_without_a_clock() {
        let t = PoolTelemetry::full();
        t.enable();
        t.record(EventKind::Alloc, 1, 0, 0);
        t.record(EventKind::Free, 1, 0, 0);
        let events = t.snapshot("p", 0, 0).events;
        assert_eq!(events.len(), 2);
        assert!(events[0].ts_ns < events[1].ts_ns);
    }

    #[test]
    fn clock_timestamps_flow_through() {
        struct Fixed;
        impl TelemetryClock for Fixed {
            fn now_ns(&self) -> u64 {
                42
            }
        }
        let t = PoolTelemetry::full().with_clock(Arc::new(Fixed));
        t.enable();
        t.record(EventKind::Alloc, 1, 0, 0);
        t.record_sample(10, 5, 0, 0.5);
        let snap = t.snapshot("p", 10, 5);
        assert_eq!(snap.events[0].ts_ns, 42);
        assert_eq!(snap.samples[0].ts_ns, 42);
    }

    #[test]
    fn snapshot_drains_events_but_keeps_histograms() {
        let t = PoolTelemetry::full();
        t.enable();
        t.record(EventKind::Alloc, 1, 0, 0);
        t.alloc_ns().record(100);
        let first = t.snapshot("p", 0, 0);
        assert_eq!(first.events.len(), 1);
        let second = t.snapshot("p", 0, 0);
        assert!(second.events.is_empty(), "drain removes events");
        assert_eq!(second.histograms[0].1.count, 1, "histograms persist");
    }
}
