//! Log-bucketed, mergeable latency histograms.
//!
//! The layout is HdrHistogram-style log-linear: each power-of-two octave
//! is divided into [`SUB_BUCKETS`] linear sub-buckets, giving a worst-case
//! relative error of `1 / SUB_BUCKETS` (12.5%) across the full `u64`
//! nanosecond range in [`BUCKETS`] buckets (~4 KiB of counters). All
//! counters are atomics, so recording takes `&self` and is safe from any
//! thread; per-shard histograms [`merge`](Histogram::merge) losslessly —
//! the merged bucket counts equal those of a histogram fed the
//! concatenated samples (property-tested).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Linear sub-buckets per power-of-two octave (`2^SUB_BITS`).
const SUB_BITS: u32 = 3;
/// `2^SUB_BITS` — sub-bucket count and the bound of the exact first range.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering `0..=u64::MAX`.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Bucket index for a recorded value. Monotone in `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // floor(log2), >= SUB_BITS
    let sub = (value >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1);
    ((exp - SUB_BITS + 1) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// Lower bound of the value range mapping to bucket `index` (inverse of
/// [`bucket_index`]); used as the reported percentile value.
fn bucket_floor(index: usize) -> u64 {
    let block = (index as u64) >> SUB_BITS;
    let sub = (index as u64) & (SUB_BUCKETS - 1);
    if block == 0 {
        return sub;
    }
    let exp = (block as u32 - 1) + SUB_BITS;
    (1u64 << exp) | (sub << (exp - SUB_BITS))
}

/// A concurrent log-linear histogram of nanosecond latencies.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // Vec -> Box<[_; N]> avoids a large stack temporary.
        let buckets: Box<[AtomicU64]> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.try_into().expect("BUCKETS-sized box"),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (nanoseconds).
    pub fn record(&self, value_ns: u64) {
        self.buckets[bucket_index(value_ns)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value_ns, Relaxed);
        self.min.fetch_min(value_ns, Relaxed);
        self.max.fetch_max(value_ns, Relaxed);
    }

    /// Fold `other`'s counts into `self`. Lossless: bucket counts add.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Relaxed);
            if n != 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Value at quantile `q` in `[0, 1]`: the floor of the bucket holding
    /// the `ceil(q * count)`-th sample, clamped to the true observed
    /// extrema. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= target {
                return bucket_floor(i).clamp(self.min.load(Relaxed), self.max.load(Relaxed));
            }
        }
        self.max.load(Relaxed)
    }

    /// Value at quantile `q` in `[0, 1]` — the serving-report spelling of
    /// [`Histogram::percentile`]. Same contract: bucket-floor resolution
    /// (worst-case relative error `1 / SUB_BUCKETS`, i.e. 12.5%), clamped
    /// to the observed extrema, 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        self.percentile(q)
    }

    /// Median (`quantile(0.50)`), in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (`quantile(0.99)`), in nanoseconds — the headline
    /// serving-latency number.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (`quantile(0.999)`), in nanoseconds.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-zero buckets as `(floor_value, count)` pairs, for exact
    /// equality checks in tests.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n != 0).then(|| (bucket_floor(i), n))
            })
            .collect()
    }

    /// Point-in-time summary with the standard percentile set.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            min_ns: if count == 0 {
                0
            } else {
                self.min.load(Relaxed)
            },
            max_ns: self.max.load(Relaxed),
            mean_ns: if count == 0 {
                0.0
            } else {
                self.sum.load(Relaxed) as f64 / count as f64
            },
            p50_ns: self.percentile(0.50),
            p90_ns: self.percentile(0.90),
            p99_ns: self.percentile(0.99),
            p999_ns: self.percentile(0.999),
        }
    }
}

/// Plain-data snapshot of a [`Histogram`], as serialized into pool
/// snapshots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Recorded sample count.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min_ns: u64,
    /// Largest recorded value.
    pub max_ns: u64,
    /// Arithmetic mean (exact; tracked as a sum, not from buckets).
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_floor_inverts() {
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            assert!(bucket_floor(i) <= v, "floor above value at {v}");
            assert_eq!(
                bucket_index(bucket_floor(i)),
                i,
                "floor leaves bucket at {v}"
            );
        }
        // Spot-check the top of the range.
        let top = bucket_index(u64::MAX);
        assert!(top < BUCKETS);
        assert_eq!(bucket_index(bucket_floor(top)), top);
    }

    #[test]
    fn exact_below_sub_buckets() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn percentile_relative_error_bounded() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v * 17); // spread across several octaves
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = ((q * 100_000f64).ceil() as u64) * 17;
            let got = h.percentile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.13, "q={q}: got {got}, exact {exact}, err {err}");
        }
    }

    #[test]
    fn quantile_accessors_match_percentile_and_pin_error_bounds() {
        let h = Histogram::new();
        // 10_000 samples spread across octaves; exact k-th sample is k * 31.
        for v in 1..=10_000u64 {
            h.record(v * 31);
        }
        assert_eq!(h.quantile(0.50), h.percentile(0.50));
        assert_eq!(h.p50(), h.quantile(0.50));
        assert_eq!(h.p99(), h.quantile(0.99));
        assert_eq!(h.p999(), h.quantile(0.999));
        // The accessors inherit the log-linear bound: 1/SUB_BUCKETS = 12.5%.
        for (got, q) in [(h.p50(), 0.50), (h.p99(), 0.99), (h.p999(), 0.999)] {
            let exact = ((q * 10_000f64).ceil() as u64) * 31;
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 1.0 / SUB_BUCKETS as f64,
                "q={q}: got {got}, exact {exact}, err {err}"
            );
        }
    }

    #[test]
    fn quantile_accessors_are_exact_on_singletons_and_zero_when_empty() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.p999(), 0);
        h.record(42_000);
        // One sample: the extrema clamp makes every quantile exact.
        assert_eq!(h.p50(), 42_000);
        assert_eq!(h.p99(), 42_000);
        assert_eq!(h.p999(), 42_000);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                min_ns: 0,
                max_ns: 0,
                mean_ns: 0.0,
                p50_ns: 0,
                p90_ns: 0,
                p99_ns: 0,
                p999_ns: 0,
            }
        );
    }

    #[test]
    fn merge_adds_counts_and_extrema() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(1000);
        b.record(3);
        b.record(70_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        let s = a.summary();
        assert_eq!(s.min_ns, 3);
        assert_eq!(s.max_ns, 70_000);
    }
}
