//! A minimal JSON reader.
//!
//! The offline build has no serde, so snapshot parsing
//! ([`MemorySnapshot::from_json`](crate::MemorySnapshot::from_json),
//! schema validation, the chrome-trace validity test) is built on this
//! hand-rolled recursive-descent parser. It accepts standard JSON
//! (objects, arrays, strings with the common escapes, numbers, booleans,
//! null) and nothing more — good enough to read back what this crate
//! writes, and strict enough to catch malformed output.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64` (integers up to 2^53 are exact, which
    /// covers every quantity this crate serializes).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if it is one (non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always on a char boundary).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escape a string for embedding in a JSON document (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Value::Num(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", r#"{"a" 1}"#, "tru", "1 2", r#""unterminated"#] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "line1\nline2\t\"quoted\" back\\slash \u{1} café";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        assert_eq!(parse(&doc).unwrap().get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn u64_precision_within_2_53() {
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(1 << 53));
    }
}
