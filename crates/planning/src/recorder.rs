//! Recording mode: captures one iteration's allocation sequence as
//! lifetime intervals for the offline planner.
//!
//! The recorder assigns a monotonically increasing *tick* to every alloc
//! and free it observes. An allocation whose alloc **and** free both fall
//! inside the recorded window becomes a [`LifetimeInterval`] — a
//! *transient* the planner can place statically. Allocations still live
//! when the window closes (model weights, optimizer state, anything that
//! crosses an iteration boundary) are left out of the plan and stay with
//! the reactive fallback for their whole lifetime.

use std::collections::HashMap;

use gmlake_alloc_api::{AllocationId, StreamId};

/// One planned lifetime: the allocation was requested at `alloc_tick` and
/// released at `free_tick` (half-open: live during `[alloc_tick,
/// free_tick)`), for `size` bytes on logical stream `stream`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeInterval {
    /// Tick of the alloc event (position in the recorded sequence).
    pub alloc_tick: u64,
    /// Tick of the free event; strictly greater than `alloc_tick`.
    pub free_tick: u64,
    /// Requested size in bytes (unrounded — plan slots serve exact sizes).
    pub size: u64,
    /// Raw id of the logical stream the alloc was issued on.
    pub stream: u32,
}

impl LifetimeInterval {
    /// True when `self` and `other` are live at the same time.
    pub fn overlaps_time(&self, other: &LifetimeInterval) -> bool {
        self.alloc_tick < other.free_tick && other.alloc_tick < self.free_tick
    }
}

#[derive(Debug, Clone, Copy)]
struct Record {
    alloc_tick: u64,
    free_tick: Option<u64>,
    size: u64,
    stream: u32,
}

/// Captures alloc/free events between two iteration boundaries.
#[derive(Debug, Default)]
pub struct IterationRecorder {
    tick: u64,
    records: Vec<Record>,
    open: HashMap<AllocationId, usize>,
}

impl IterationRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        IterationRecorder::default()
    }

    /// Number of events (allocs + frees) observed in the current window.
    pub fn events(&self) -> usize {
        self.tick as usize
    }

    /// Records an allocation issued under `id`.
    pub fn on_alloc(&mut self, id: AllocationId, size: u64, stream: StreamId) {
        let tick = self.tick;
        self.tick += 1;
        self.open.insert(id, self.records.len());
        self.records.push(Record {
            alloc_tick: tick,
            free_tick: None,
            size,
            stream: stream.0,
        });
    }

    /// Records the free of `id`. Frees of allocations made before the
    /// current window opened are ignored (they are not plannable).
    pub fn on_free(&mut self, id: AllocationId) {
        let tick = self.tick;
        self.tick += 1;
        if let Some(idx) = self.open.remove(&id) {
            self.records[idx].free_tick = Some(tick);
        }
    }

    /// Closes the window: returns every *transient* interval (alloc and
    /// free both inside the window) and resets the recorder for the next
    /// window. Open records are discarded — their owners stay on the
    /// fallback path.
    pub fn finish_window(&mut self) -> Vec<LifetimeInterval> {
        let intervals = self
            .records
            .iter()
            .filter_map(|r| {
                r.free_tick.map(|ft| LifetimeInterval {
                    alloc_tick: r.alloc_tick,
                    free_tick: ft,
                    size: r.size,
                    stream: r.stream,
                })
            })
            .collect();
        self.tick = 0;
        self.records.clear();
        self.open.clear();
        intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transients_are_captured_and_open_records_dropped() {
        let mut r = IterationRecorder::new();
        let a = AllocationId::new(1);
        let b = AllocationId::new(2);
        r.on_alloc(a, 100, StreamId::new(0));
        r.on_alloc(b, 200, StreamId::new(1));
        r.on_free(a);
        let out = r.finish_window();
        assert_eq!(
            out,
            vec![LifetimeInterval {
                alloc_tick: 0,
                free_tick: 2,
                size: 100,
                stream: 0
            }]
        );
        // The window reset: a stale free is ignored, ticks restart at 0.
        r.on_free(b);
        r.on_alloc(a, 300, StreamId::new(2));
        r.on_free(a);
        let out = r.finish_window();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].alloc_tick, 1);
        assert_eq!(out[0].free_tick, 2);
    }
}
