//! [`PlannedCore`]: the record → plan → serve allocator backend.
//!
//! # Lifecycle
//!
//! A fresh `PlannedCore` starts in **recording** mode: every request is
//! served by the embedded [`GmLakeAllocator`] (so iteration 1 behaves
//! exactly like the reactive core) while an [`IterationRecorder`] captures
//! the sequence. At the next [`iteration_boundary`], the transient
//! intervals are handed to the offline planner, the fallback's warm-up
//! cache is released, and a single virtually-contiguous **arena** sized to
//! the plan's capacity is mapped. The core then enters **serving** mode:
//! a request whose `(size, stream)` matches the next recorded slot is
//! answered from the plan with *zero* driver calls; everything else —
//! mismatched sizes, unexpected frees, mid-iteration growth — is routed to
//! the fallback, where the full GMLake stitching machinery (and its
//! fault rollback) applies.
//!
//! # Replanning
//!
//! When the workload drifts (the per-iteration plan hit rate falls below
//! [`PlannedConfig::replan_hit_floor`]) and no plan slot is live, the
//! arena is torn down and the core returns to recording; the next
//! boundary installs a fresh plan. [`release_cached`] — the reactive OOM
//! fallback — does the same, so a planned core never pins memory the
//! device needs back.
//!
//! [`iteration_boundary`]: AllocatorCore::iteration_boundary
//! [`release_cached`]: AllocatorCore::release_cached

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use gmlake_alloc_api::{
    AllocError, AllocRequest, Allocation, AllocationId, AllocatorCore, FaultJournalStats, MemStats,
    StreamId, VirtAddr,
};
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, PhysHandle};
use gmlake_telemetry::{EventKind, PoolTelemetry};

use crate::plan::MemoryPlan;
use crate::recorder::IterationRecorder;

/// Tuning knobs for [`PlannedCore`].
#[derive(Debug, Clone)]
pub struct PlannedConfig {
    /// Configuration for the embedded reactive fallback.
    pub gmlake: GmLakeConfig,
    /// Minimum transient intervals a recorded window must contain before
    /// a plan is built; smaller windows keep recording.
    pub min_plan_intervals: usize,
    /// Per-iteration plan hit-rate floor; a served iteration below it
    /// triggers a replan at the next boundary (once no slot is live).
    pub replan_hit_floor: f64,
}

impl Default for PlannedConfig {
    fn default() -> Self {
        PlannedConfig {
            gmlake: GmLakeConfig::default(),
            min_plan_intervals: 4,
            replan_hit_floor: 0.5,
        }
    }
}

/// Cumulative planning counters, also mirrored into `gmlake-telemetry`
/// ([`EventKind::PlanHit`] / [`EventKind::PlanResidue`] /
/// [`EventKind::Replan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCounters {
    /// Allocations served straight from the plan (no driver call).
    pub plan_hits: u64,
    /// Allocations routed to the reactive fallback while a plan was
    /// installed.
    pub residue_allocs: u64,
    /// Frees routed to the fallback while a plan was installed.
    pub residue_frees: u64,
    /// Plans built and installed.
    pub plans_built: u64,
    /// Plans discarded (drift replans and `release_cached` teardowns).
    pub replans: u64,
    /// Plan installs aborted because the arena could not be materialized.
    pub plan_aborts: u64,
}

impl PlanCounters {
    /// Lifetime plan hit rate over all alloc traffic seen while serving.
    pub fn hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.residue_allocs;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }
}

/// Fibonacci-multiplicative hasher for the route table: route keys are
/// sequentially minted ids, so a single multiply mixes them better than
/// the default SipHash at a fraction of the cost — the plan-hit path is
/// two table touches and must stay in the tens of nanoseconds.
#[derive(Default)]
struct FibHasher(u64);

impl Hasher for FibHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FibHasher>>;

/// Where a live allocation handed out by the planned core actually lives.
#[derive(Debug, Clone, Copy)]
enum Route {
    /// Plan slot index into `InstalledPlan::slots`.
    Plan(u32),
    /// Id inside the embedded fallback allocator, plus the served size
    /// it charged (needed to mirror its accounting on free).
    Fallback(AllocationId, u64),
}

/// The mapped arena backing an installed plan: one VA reservation of the
/// plan capacity rounded up to the driver granularity, fully mapped.
#[derive(Debug)]
struct Arena {
    base: VirtAddr,
    bytes: u64,
    chunks: Vec<PhysHandle>,
}

#[derive(Debug)]
struct InstalledPlan {
    plan: MemoryPlan,
    arena: Arena,
    /// Per-slot list of space-overlapping slot indices (precomputed
    /// offline so serving stays O(conflicts), typically O(1)).
    conflicts: Vec<Vec<u32>>,
    /// Per-slot count of *live* space-conflicting slots; a slot may only
    /// be handed out while its count is zero.
    blocked: Vec<u32>,
    live: Vec<bool>,
    /// FIFO of not-yet-consumed slots per `(size, stream)`, in recorded
    /// alloc-tick order; rebuilt at each iteration boundary. Sorted by
    /// key so the hit path is a hash-free binary search over the few
    /// dozen size classes a model has.
    queues: Vec<((u64, u32), VecDeque<u32>)>,
    live_count: usize,
    live_bytes: u64,
    iter_hits: u64,
    iter_misses: u64,
}

impl InstalledPlan {
    fn new(plan: MemoryPlan, arena: Arena) -> Self {
        let n = plan.slots.len();
        let mut conflicts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if plan.slots[i].overlaps_space(&plan.slots[j]) {
                    conflicts[i].push(j as u32);
                    conflicts[j].push(i as u32);
                }
            }
        }
        let mut installed = InstalledPlan {
            plan,
            arena,
            conflicts,
            blocked: vec![0; n],
            live: vec![false; n],
            queues: Vec::new(),
            live_count: 0,
            live_bytes: 0,
            iter_hits: 0,
            iter_misses: 0,
        };
        installed.rebuild_queues();
        installed
    }

    /// Re-enqueues every non-live slot in recorded alloc-tick order
    /// (slots are already sorted by alloc tick in `plan.slots`).
    fn rebuild_queues(&mut self) {
        let mut grouped: std::collections::BTreeMap<(u64, u32), VecDeque<u32>> =
            std::collections::BTreeMap::new();
        for (i, s) in self.plan.slots.iter().enumerate() {
            if !self.live[i] {
                grouped
                    .entry((s.size, s.stream))
                    .or_default()
                    .push_back(i as u32);
            }
        }
        self.queues = grouped.into_iter().collect();
        self.iter_hits = 0;
        self.iter_misses = 0;
    }

    /// Tries to serve `(size, stream)` from the plan. Returns the slot
    /// index, or `None` when no matching slot is available (queue empty,
    /// or the next slot's address range is still occupied).
    fn take(&mut self, size: u64, stream: u32) -> Option<u32> {
        let idx = self
            .queues
            .binary_search_by_key(&(size, stream), |(k, _)| *k)
            .ok()?;
        let queue = &mut self.queues[idx].1;
        let &front = queue.front()?;
        if self.blocked[front as usize] > 0 {
            return None;
        }
        queue.pop_front();
        self.live[front as usize] = true;
        self.live_count += 1;
        self.live_bytes += size;
        for &c in &self.conflicts[front as usize] {
            self.blocked[c as usize] += 1;
        }
        Some(front)
    }

    fn release(&mut self, slot: u32) {
        debug_assert!(self.live[slot as usize]);
        self.live[slot as usize] = false;
        self.live_count -= 1;
        self.live_bytes -= self.plan.slots[slot as usize].size;
        for i in 0..self.conflicts[slot as usize].len() {
            let c = self.conflicts[slot as usize][i];
            self.blocked[c as usize] -= 1;
        }
    }

    fn iter_hit_rate(&self) -> f64 {
        let total = self.iter_hits + self.iter_misses;
        if total == 0 {
            1.0
        } else {
            self.iter_hits as f64 / total as f64
        }
    }
}

/// The STAlloc-style spatio-temporal planning backend. See the module
/// docs for the record → plan → serve lifecycle.
#[derive(Debug)]
pub struct PlannedCore {
    driver: CudaDriver,
    fallback: GmLakeAllocator,
    config: PlannedConfig,
    recording: bool,
    recorder: IterationRecorder,
    installed: Option<InstalledPlan>,
    routes: FastMap<AllocationId, Route>,
    next_id: u64,
    stats: MemStats,
    counters: PlanCounters,
    telemetry: Option<Arc<PoolTelemetry>>,
}

impl PlannedCore {
    /// Creates a planned core over `driver`, starting in recording mode.
    pub fn new(driver: CudaDriver, config: PlannedConfig) -> Self {
        let fallback = GmLakeAllocator::new(driver.clone(), config.gmlake.clone());
        PlannedCore {
            driver,
            fallback,
            config,
            recording: true,
            recorder: IterationRecorder::new(),
            installed: None,
            routes: FastMap::default(),
            next_id: 1,
            stats: MemStats::default(),
            counters: PlanCounters::default(),
            telemetry: None,
        }
    }

    /// Creates a planned core with the default configuration.
    pub fn with_defaults(driver: CudaDriver) -> Self {
        PlannedCore::new(driver, PlannedConfig::default())
    }

    /// Attaches a telemetry recorder (also forwarded to the fallback).
    pub fn set_telemetry(&mut self, telemetry: Arc<PoolTelemetry>) {
        self.fallback.set_telemetry(Arc::clone(&telemetry));
        self.telemetry = Some(telemetry);
    }

    /// The embedded reactive fallback.
    pub fn fallback(&self) -> &GmLakeAllocator {
        &self.fallback
    }

    /// Cumulative planning counters.
    pub fn counters(&self) -> PlanCounters {
        self.counters
    }

    /// True while the core is serving from an installed plan.
    pub fn is_serving(&self) -> bool {
        self.installed.is_some()
    }

    /// A copy of the installed plan, if any (what the profiler exports).
    pub fn plan(&self) -> Option<MemoryPlan> {
        self.installed.as_ref().map(|p| p.plan.clone())
    }

    /// The fallback's driver-fault journal (empty while no faults fired).
    pub fn fault_journal(&self) -> gmlake_core::FaultJournal {
        self.fallback.fault_journal()
    }

    fn record(&self, kind: EventKind, bytes: u64, a: u64, b: u64) {
        if let Some(t) = &self.telemetry {
            t.record(kind, bytes, a, b);
        }
    }

    fn mint_id(&mut self) -> AllocationId {
        let id = AllocationId::new(self.next_id);
        self.next_id += 1;
        id
    }

    fn sync_reserved(&mut self) {
        let arena = self.installed.as_ref().map_or(0, |p| p.arena.bytes);
        self.stats
            .set_reserved(arena + self.fallback.stats().reserved_bytes);
    }

    /// Maps a granularity-rounded arena for `capacity` plan bytes: one VA
    /// reservation, one physical batch, one range map — three driver
    /// calls regardless of size. Unwinds fully on any failure.
    fn materialize_arena(&self, capacity: u64) -> Result<Arena, gmlake_gpu_sim::DriverError> {
        let gran = self.driver.granularity();
        let bytes = capacity.div_ceil(gran) * gran;
        let va = self.driver.mem_address_reserve(bytes)?;
        let chunks = match self.driver.mem_create_batch(gran, (bytes / gran) as usize) {
            Ok(chunks) => chunks,
            Err(e) => {
                let _ = self.driver.mem_address_free(va, bytes);
                return Err(e);
            }
        };
        if let Err(e) = self
            .driver
            .mem_map_range(va, gran, &chunks)
            .and_then(|()| self.driver.mem_set_access(va, bytes, true))
        {
            let _ = self.driver.mem_unmap_range(va, bytes);
            let _ = self.driver.mem_release_batch(&chunks);
            let _ = self.driver.mem_address_free(va, bytes);
            return Err(e);
        }
        Ok(Arena {
            base: va,
            bytes,
            chunks,
        })
    }

    /// Best-effort arena teardown (release paths and `Drop` must not
    /// fail; injected faults here at worst orphan simulated state).
    fn teardown_arena(&self, arena: &Arena) {
        let _ = self.driver.mem_unmap_range(arena.base, arena.bytes);
        let _ = self.driver.mem_release_batch(&arena.chunks);
        let _ = self.driver.mem_address_free(arena.base, arena.bytes);
    }

    /// Discards the installed plan (arena teardown + back to recording).
    /// Caller must ensure no plan slot is live. Returns the arena bytes
    /// released.
    fn uninstall_plan(&mut self) -> u64 {
        let Some(installed) = self.installed.take() else {
            return 0;
        };
        debug_assert_eq!(installed.live_count, 0);
        self.teardown_arena(&installed.arena);
        self.recording = true;
        self.counters.replans += 1;
        self.record(
            EventKind::Replan,
            installed.arena.bytes,
            self.counters.replans,
            0,
        );
        installed.arena.bytes
    }

    /// Closes the recording window and, if it contained enough
    /// transients, installs a plan: build placement → release the
    /// fallback's warm-up cache (so the arena does not double-reserve on
    /// top of it) → materialize the arena. An arena failure (capacity or
    /// injected fault) aborts the install and keeps recording.
    fn try_install_plan(&mut self) {
        let intervals = self.recorder.finish_window();
        if intervals.len() < self.config.min_plan_intervals {
            return;
        }
        let plan = MemoryPlan::build(&intervals);
        debug_assert!(plan.validate().is_ok());
        if plan.capacity == 0 {
            return;
        }
        self.fallback.release_cached();
        match self.materialize_arena(plan.capacity) {
            Ok(arena) => {
                self.installed = Some(InstalledPlan::new(plan, arena));
                self.recording = false;
                self.counters.plans_built += 1;
            }
            Err(_) => {
                self.counters.plan_aborts += 1;
            }
        }
    }
}

impl AllocatorCore for PlannedCore {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        self.alloc_on_stream(req, StreamId::DEFAULT)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        self.free_on_stream(id, StreamId::DEFAULT)
    }

    fn alloc_on_stream(
        &mut self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        if req.size == 0 {
            return Err(AllocError::ZeroSize);
        }

        // Plan path: O(1), no driver interaction at all.
        if let Some(installed) = &mut self.installed {
            if let Some(slot) = installed.take(req.size, stream.0) {
                installed.iter_hits += 1;
                let offset = installed.plan.slots[slot as usize].offset;
                let va = installed.arena.base.offset(offset);
                let id = self.mint_id();
                self.routes.insert(id, Route::Plan(slot));
                // Neither the arena nor the fallback changed, so
                // `reserved` is already in sync — the hit path stays
                // driver-free and lock-free.
                self.stats.on_alloc(req.size, req.size);
                self.counters.plan_hits += 1;
                self.record(EventKind::PlanHit, req.size, slot as u64, stream.0 as u64);
                return Ok(Allocation {
                    id,
                    va,
                    size: req.size,
                    requested: req.size,
                });
            }
            installed.iter_misses += 1;
            self.counters.residue_allocs += 1;
            self.record(EventKind::PlanResidue, req.size, stream.0 as u64, 0);
        }

        // Residue / recording path: the reactive fallback, with full
        // stitching and fault rollback. Plan tables are never touched
        // here, so a fallback fault leaves the plan intact.
        let mut result = self.fallback.alloc_on_stream(req, stream);
        if matches!(result, Err(AllocError::OutOfMemory { .. })) {
            // Last-ditch reclaim: surrender an idle arena and retry once.
            let idle_arena = self.installed.as_ref().is_some_and(|p| p.live_count == 0);
            if idle_arena {
                self.uninstall_plan();
                result = self.fallback.alloc_on_stream(req, stream);
            }
        }
        match result {
            Ok(inner) => {
                let id = self.mint_id();
                self.routes
                    .insert(id, Route::Fallback(inner.id, inner.size));
                if self.recording {
                    self.recorder.on_alloc(id, req.size, stream);
                }
                self.stats.on_alloc(inner.requested, inner.size);
                self.sync_reserved();
                Ok(Allocation { id, ..inner })
            }
            Err(e) => {
                if matches!(e, AllocError::OutOfMemory { .. }) {
                    self.stats.oom_count += 1;
                }
                self.sync_reserved();
                Err(e)
            }
        }
    }

    fn free_on_stream(&mut self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        match self.routes.get(&id) {
            Some(&Route::Plan(slot)) => {
                let installed = self.installed.as_mut().expect("plan route without plan");
                let size = installed.plan.slots[slot as usize].size;
                installed.release(slot);
                self.routes.remove(&id);
                self.stats.on_free(size);
                self.record(EventKind::Free, size, stream.0 as u64, 0);
                Ok(())
            }
            Some(&Route::Fallback(inner, size)) => {
                self.fallback.free_on_stream(inner, stream)?;
                self.routes.remove(&id);
                if self.installed.is_some() {
                    self.counters.residue_frees += 1;
                    self.record(EventKind::PlanResidue, size, stream.0 as u64, 1);
                }
                if self.recording {
                    self.recorder.on_free(id);
                }
                self.stats.on_free(size);
                self.sync_reserved();
                Ok(())
            }
            None => Err(AllocError::UnknownAllocation(id)),
        }
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "planned-gmlake"
    }

    fn iteration_boundary(&mut self) {
        self.fallback.iteration_boundary();
        if self.recording {
            self.try_install_plan();
        } else if let Some(installed) = &mut self.installed {
            let drifted = installed.iter_misses > 0
                && installed.iter_hit_rate() < self.config.replan_hit_floor;
            if drifted && installed.live_count == 0 {
                self.uninstall_plan();
            } else {
                installed.rebuild_queues();
            }
        }
        self.sync_reserved();
    }

    fn release_cached(&mut self) -> u64 {
        let mut freed = self.fallback.release_cached();
        let idle_arena = self.installed.as_ref().is_some_and(|p| p.live_count == 0);
        if idle_arena {
            freed += self.uninstall_plan();
        }
        self.sync_reserved();
        freed
    }

    fn compact(&mut self) -> u64 {
        // Proactive pass: compact the reactive side only. The arena *is*
        // the plan — it is surrendered by `release_cached` (reactive OOM
        // pressure) or a replan, never by routine defrag.
        let freed = self.fallback.compact();
        self.sync_reserved();
        freed
    }

    fn fragmentation(&self) -> f64 {
        // Idle arena bytes are pre-placed capacity, not fragmentation:
        // measure only the reactive side's slack.
        let s = self.stats;
        if s.reserved_bytes == 0 {
            return 0.0;
        }
        let arena_idle = self
            .installed
            .as_ref()
            .map_or(0, |p| p.arena.bytes - p.live_bytes);
        (1.0 - (s.active_bytes + arena_idle) as f64 / s.reserved_bytes as f64).clamp(0.0, 1.0)
    }

    fn set_stitch_enabled(&mut self, enabled: bool) {
        self.fallback.set_stitch_enabled(enabled);
    }

    fn fault_journal_stats(&self) -> FaultJournalStats {
        self.fallback.fault_journal_stats()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

impl PlannedCore {
    /// Checks every internal invariant; used by the differential and
    /// chaos harnesses after every probe.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.fallback.validate()?;
        let mut plan_live = 0usize;
        let mut plan_live_bytes = 0u64;
        for route in self.routes.values() {
            if let Route::Plan(slot) = route {
                let installed = self
                    .installed
                    .as_ref()
                    .ok_or("live plan route without an installed plan")?;
                if !installed.live[*slot as usize] {
                    return Err(format!("route to slot {slot} not marked live"));
                }
                plan_live += 1;
                plan_live_bytes += installed.plan.slots[*slot as usize].size;
            }
        }
        if let Some(installed) = &self.installed {
            installed.plan.validate()?;
            if installed.live_count != plan_live {
                return Err(format!(
                    "live_count {} != live plan routes {plan_live}",
                    installed.live_count
                ));
            }
            if installed.live_bytes != plan_live_bytes {
                return Err(format!(
                    "live_bytes {} != live plan route bytes {plan_live_bytes}",
                    installed.live_bytes
                ));
            }
            let gran = self.driver.granularity();
            if installed.arena.bytes != installed.plan.capacity.div_ceil(gran) * gran {
                return Err("arena bytes do not match rounded plan capacity".into());
            }
            // blocked[] must equal the live-conflict count, recomputed.
            for i in 0..installed.plan.slots.len() {
                let expect = installed.conflicts[i]
                    .iter()
                    .filter(|&&c| installed.live[c as usize])
                    .count() as u32;
                if installed.blocked[i] != expect {
                    return Err(format!(
                        "slot {i}: blocked {} != recomputed {expect}",
                        installed.blocked[i]
                    ));
                }
                if installed.live[i] && installed.blocked[i] > 0 {
                    return Err(format!("slot {i} live while space-blocked"));
                }
            }
        } else if plan_live > 0 {
            return Err("plan routes live with no plan installed".into());
        }
        Ok(())
    }
}

impl Drop for PlannedCore {
    fn drop(&mut self) {
        if let Some(installed) = self.installed.take() {
            self.teardown_arena(&installed.arena);
        }
        // The fallback's own Drop releases everything it reserved.
    }
}
