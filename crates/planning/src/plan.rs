//! The offline planner and its output, [`MemoryPlan`].
//!
//! Placement is classic first-fit-decreasing over a linear address space:
//! intervals are sorted by size (descending, ties broken by alloc tick so
//! the plan is deterministic), and each is placed at the lowest offset
//! where it fits next to every already-placed interval it overlaps *in
//! time*. Two intervals may share address space if and only if their
//! lifetimes are disjoint — that is the whole trick: the planned capacity
//! tracks the measured peak of the transient working set, not its sum.
//!
//! Plans serialize to a hand-rolled JSON document (`gmlake-plan/v1`) so
//! the profiler can export them and tests can pin the format without any
//! external serde dependency.

use gmlake_telemetry::json::{self, Value};

use crate::recorder::LifetimeInterval;

/// Schema tag embedded in every serialized plan.
pub const PLAN_SCHEMA: &str = "gmlake-plan/v1";

/// One placed lifetime: `size` bytes at `offset` from the arena base,
/// live during `[alloc_tick, free_tick)` on `stream`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSlot {
    /// Byte offset from the arena base.
    pub offset: u64,
    /// Slot size in bytes (exact requested size — no rounding).
    pub size: u64,
    /// Raw id of the stream the recorded alloc was issued on.
    pub stream: u32,
    /// Recorded alloc tick (defines serving order within a size class).
    pub alloc_tick: u64,
    /// Recorded free tick.
    pub free_tick: u64,
}

impl PlanSlot {
    fn interval(&self) -> LifetimeInterval {
        LifetimeInterval {
            alloc_tick: self.alloc_tick,
            free_tick: self.free_tick,
            size: self.size,
            stream: self.stream,
        }
    }

    /// True when the two slots' address ranges intersect.
    pub fn overlaps_space(&self, other: &PlanSlot) -> bool {
        self.offset < other.offset + other.size && other.offset < self.offset + self.size
    }
}

/// A static placement for one steady-state iteration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryPlan {
    /// Linear address space the slots are packed into, in bytes (the
    /// measured peak of the planned transients, not their sum).
    pub capacity: u64,
    /// Placed slots, in recorded alloc-tick order.
    pub slots: Vec<PlanSlot>,
}

impl MemoryPlan {
    /// Computes a plan for `intervals` by first-fit-decreasing.
    ///
    /// Deterministic: the same intervals always produce the same plan
    /// (ties in size break by alloc tick). The returned slot list is
    /// sorted back into alloc-tick order, which is the order the serving
    /// queues hand slots out in.
    pub fn build(intervals: &[LifetimeInterval]) -> MemoryPlan {
        let mut order: Vec<usize> = (0..intervals.len()).collect();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(intervals[i].size),
                intervals[i].alloc_tick,
            )
        });

        let mut placed: Vec<PlanSlot> = Vec::with_capacity(intervals.len());
        let mut capacity = 0u64;
        for &i in &order {
            let iv = intervals[i];
            // Occupied ranges among time-overlapping, already-placed slots.
            let mut busy: Vec<(u64, u64)> = placed
                .iter()
                .filter(|s| s.interval().overlaps_time(&iv))
                .map(|s| (s.offset, s.offset + s.size))
                .collect();
            busy.sort_unstable();
            let mut offset = 0u64;
            for (lo, hi) in busy {
                if offset + iv.size <= lo {
                    break;
                }
                offset = offset.max(hi);
            }
            capacity = capacity.max(offset + iv.size);
            placed.push(PlanSlot {
                offset,
                size: iv.size,
                stream: iv.stream,
                alloc_tick: iv.alloc_tick,
                free_tick: iv.free_tick,
            });
        }
        placed.sort_by_key(|s| s.alloc_tick);
        MemoryPlan {
            capacity,
            slots: placed,
        }
    }

    /// Checks the planner invariants:
    ///
    /// * every slot fits: `offset + size <= capacity`;
    /// * no two slots overlap in space *and* time;
    /// * every slot has a positive size and a well-formed lifetime.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.slots.iter().enumerate() {
            if s.size == 0 {
                return Err(format!("slot {i}: zero size"));
            }
            if s.free_tick <= s.alloc_tick {
                return Err(format!(
                    "slot {i}: degenerate lifetime [{}, {})",
                    s.alloc_tick, s.free_tick
                ));
            }
            if s.offset + s.size > self.capacity {
                return Err(format!(
                    "slot {i}: {}+{} exceeds capacity {}",
                    s.offset, s.size, self.capacity
                ));
            }
            for (j, t) in self.slots.iter().enumerate().skip(i + 1) {
                if s.overlaps_space(t) && s.interval().overlaps_time(&t.interval()) {
                    return Err(format!("slots {i} and {j} overlap in space and time"));
                }
            }
        }
        Ok(())
    }

    /// Sum of all slot sizes (what the transients would cost unshared).
    pub fn total_slot_bytes(&self) -> u64 {
        self.slots.iter().map(|s| s.size).sum()
    }

    /// Serializes the plan as a `gmlake-plan/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.slots.len() * 80);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{PLAN_SCHEMA}\",\n"));
        out.push_str(&format!("  \"capacity\": {},\n", self.capacity));
        out.push_str("  \"slots\": [\n");
        for (i, s) in self.slots.iter().enumerate() {
            let comma = if i + 1 == self.slots.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"offset\": {}, \"size\": {}, \"stream\": {}, \"alloc_tick\": {}, \"free_tick\": {}}}{comma}\n",
                s.offset, s.size, s.stream, s.alloc_tick, s.free_tick
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a `gmlake-plan/v1` document produced by
    /// [`MemoryPlan::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: bad JSON,
    /// wrong schema tag, or a missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<MemoryPlan, String> {
        let doc = json::parse(text).map_err(|e| format!("plan JSON: {e}"))?;
        if !matches!(&doc, Value::Obj(_)) {
            return Err("plan JSON: top level is not an object".into());
        }
        match doc.get("schema").and_then(Value::as_str) {
            Some(PLAN_SCHEMA) => {}
            other => return Err(format!("plan JSON: bad schema tag {other:?}")),
        }
        let capacity = doc
            .get("capacity")
            .and_then(Value::as_u64)
            .ok_or("plan JSON: `capacity` is not a non-negative integer")?;
        let raw_slots = doc
            .get("slots")
            .and_then(Value::as_arr)
            .ok_or("plan JSON: `slots` is not an array")?;
        let mut slots = Vec::with_capacity(raw_slots.len());
        for (i, item) in raw_slots.iter().enumerate() {
            let field = |name: &str| -> Result<u64, String> {
                item.get(name).and_then(Value::as_u64).ok_or_else(|| {
                    format!("plan JSON: slot {i} field `{name}` missing or ill-typed")
                })
            };
            slots.push(PlanSlot {
                offset: field("offset")?,
                size: field("size")?,
                stream: field("stream")? as u32,
                alloc_tick: field("alloc_tick")?,
                free_tick: field("free_tick")?,
            });
        }
        Ok(MemoryPlan { capacity, slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(alloc_tick: u64, free_tick: u64, size: u64, stream: u32) -> LifetimeInterval {
        LifetimeInterval {
            alloc_tick,
            free_tick,
            size,
            stream,
        }
    }

    #[test]
    fn disjoint_lifetimes_share_address_space() {
        // Two 100-byte transients that never coexist pack into 100 bytes.
        let plan = MemoryPlan::build(&[iv(0, 1, 100, 0), iv(2, 3, 100, 0)]);
        plan.validate().unwrap();
        assert_eq!(plan.capacity, 100);
        assert_eq!(plan.slots[0].offset, plan.slots[1].offset);
    }

    #[test]
    fn overlapping_lifetimes_get_disjoint_offsets() {
        let plan = MemoryPlan::build(&[iv(0, 3, 100, 0), iv(1, 2, 50, 0)]);
        plan.validate().unwrap();
        assert_eq!(plan.capacity, 150);
    }

    #[test]
    fn first_fit_reuses_gaps() {
        // Big long-lived block at 0; a short one after it dies fits at 0
        // again rather than growing the arena.
        let plan = MemoryPlan::build(&[iv(0, 2, 64, 0), iv(1, 3, 32, 0), iv(2, 4, 64, 0)]);
        plan.validate().unwrap();
        assert_eq!(plan.capacity, 96);
    }

    #[test]
    fn json_round_trip_is_identical() {
        let plan = MemoryPlan::build(&[iv(0, 3, 4096, 1), iv(1, 2, 1024, 0), iv(4, 5, 4096, 1)]);
        let back = MemoryPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(MemoryPlan::from_json("[]").is_err());
        assert!(
            MemoryPlan::from_json("{\"schema\": \"nope\", \"capacity\": 0, \"slots\": []}")
                .is_err()
        );
        assert!(MemoryPlan::from_json("{\"schema\": \"gmlake-plan/v1\", \"slots\": []}").is_err());
    }

    #[test]
    fn validate_catches_space_time_overlap() {
        let bad = MemoryPlan {
            capacity: 100,
            slots: vec![
                PlanSlot {
                    offset: 0,
                    size: 60,
                    stream: 0,
                    alloc_tick: 0,
                    free_tick: 4,
                },
                PlanSlot {
                    offset: 40,
                    size: 60,
                    stream: 0,
                    alloc_tick: 1,
                    free_tick: 3,
                },
            ],
        };
        assert!(bad.validate().is_err());
    }
}
