//! Spatio-temporal planning core (STAlloc-style) for the GMLake
//! workspace.
//!
//! DNN training is iterative: after one warm-up iteration the allocation
//! sequence is almost fully known, so instead of *reacting* to
//! fragmentation at alloc time the allocator can *plan* placements
//! offline (STAlloc, arXiv 2507.16274) and serve the steady state in
//! O(1). This crate provides:
//!
//! * [`IterationRecorder`] — captures one iteration's alloc/free sequence
//!   as [`LifetimeInterval`]s;
//! * [`MemoryPlan`] — the offline first-fit-decreasing planner, its
//!   invariant checker, and the `gmlake-plan/v1` JSON format;
//! * [`PlannedCore`] — the drop-in
//!   [`AllocatorCore`](gmlake_alloc_api::AllocatorCore) backend: record →
//!   plan → serve, with an embedded
//!   [`GmLakeAllocator`](gmlake_core::GmLakeAllocator) handling dynamic
//!   residue through the full stitching + fault-rollback machinery.
//!
//! See `docs/planning.md` for the lifecycle, residue rules, and replan
//! triggers.

#![warn(missing_docs)]

mod core;
mod plan;
mod recorder;

pub use crate::core::{PlanCounters, PlannedConfig, PlannedCore};
pub use crate::plan::{MemoryPlan, PlanSlot, PLAN_SCHEMA};
pub use crate::recorder::{IterationRecorder, LifetimeInterval};
