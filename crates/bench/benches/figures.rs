//! Criterion wrappers for the figure experiments, so `cargo bench` exercises
//! one representative workload per evaluation axis end to end (small
//! configurations; the full paper-scale sweeps live in `src/bin/fig*.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gmlake_bench::{run_single, Allocator};
use gmlake_workload::{ModelSpec, ReplayOptions, StrategySet, TrainConfig};

fn small_cfg() -> TrainConfig {
    TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_iterations(2)
        .with_seq_len(512)
}

fn bench_replay_baseline(c: &mut Criterion) {
    let cfg = small_cfg();
    let mut g = c.benchmark_group("replay_opt1_3b_lr");
    g.sample_size(10);
    g.bench_function("caching", |b| {
        b.iter(|| {
            black_box(run_single(
                &cfg,
                Allocator::Caching,
                &ReplayOptions::default(),
            ))
        })
    });
    g.bench_function("gmlake", |b| {
        b.iter(|| {
            black_box(run_single(
                &cfg,
                Allocator::GmLake,
                &ReplayOptions::default(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_replay_baseline);
criterion_main!(benches);
