//! Criterion micro-benchmarks: allocator hot paths and the VMM cost model.
//!
//! These measure the *host-side* wall time of the simulator's data
//! structures (the simulated-time results live in the figure binaries):
//! * caching-allocator reuse cycle (best-fit hit),
//! * GMLake exact-match cycle (the S1 steady state),
//! * GMLake first-touch stitch (S3),
//! * driver VMM map/unmap round trip,
//! * the closed-form Figure-6 cost curve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use gmlake_alloc_api::{gib, mib, AllocRequest, AllocatorCore};
use gmlake_caching::CachingAllocator;
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CostModel, CudaDriver, DeviceConfig};

fn device() -> CudaDriver {
    CudaDriver::new(
        DeviceConfig::a100_80g()
            .with_cost(CostModel::zero())
            .with_capacity(gib(4)),
    )
}

fn bench_caching_reuse(c: &mut Criterion) {
    c.bench_function("caching_alloc_free_reuse_64MiB", |b| {
        let mut alloc = CachingAllocator::new(device());
        // Warm the cache so the loop measures the best-fit hit path.
        let a = alloc.allocate(AllocRequest::new(mib(64))).unwrap();
        alloc.deallocate(a.id).unwrap();
        b.iter(|| {
            let a = alloc
                .allocate(AllocRequest::new(black_box(mib(64))))
                .unwrap();
            alloc.deallocate(a.id).unwrap();
        });
    });
}

fn bench_gmlake_exact(c: &mut Criterion) {
    c.bench_function("gmlake_exact_match_64MiB", |b| {
        let mut lake = GmLakeAllocator::new(device(), GmLakeConfig::default());
        let a = lake.allocate(AllocRequest::new(mib(64))).unwrap();
        lake.deallocate(a.id).unwrap();
        b.iter(|| {
            let a = lake
                .allocate(AllocRequest::new(black_box(mib(64))))
                .unwrap();
            lake.deallocate(a.id).unwrap();
        });
    });
}

fn bench_gmlake_stitch(c: &mut Criterion) {
    c.bench_function("gmlake_first_stitch_2x32MiB", |b| {
        b.iter_batched(
            || {
                let mut lake =
                    GmLakeAllocator::new(device(), GmLakeConfig::default().with_frag_limit(mib(2)));
                let x = lake.allocate(AllocRequest::new(mib(32))).unwrap();
                let y = lake.allocate(AllocRequest::new(mib(32))).unwrap();
                lake.deallocate(x.id).unwrap();
                lake.deallocate(y.id).unwrap();
                lake
            },
            |mut lake| {
                let a = lake
                    .allocate(AllocRequest::new(black_box(mib(64))))
                    .unwrap();
                black_box(a.va);
                lake
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_driver_map_roundtrip(c: &mut Criterion) {
    c.bench_function("driver_vmm_map_unmap_2MiB", |b| {
        let driver = device();
        let g = driver.granularity();
        let va = driver.mem_address_reserve(g).unwrap();
        let h = driver.mem_create(g).unwrap();
        b.iter(|| {
            driver.mem_map(va, g, 0, h).unwrap();
            driver.mem_set_access(va, g, true).unwrap();
            driver.mem_unmap(va, g).unwrap();
        });
    });
}

fn bench_cost_model_curve(c: &mut Criterion) {
    let model = CostModel::calibrated();
    c.bench_function("cost_model_fig6_curve", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for chunk in gmlake_gpu_sim::figure6_chunk_sizes() {
                total += model.vmm_block_alloc_norm(black_box(gib(2)), chunk);
            }
            black_box(total)
        });
    });
}

criterion_group!(
    benches,
    bench_caching_reuse,
    bench_gmlake_exact,
    bench_gmlake_stitch,
    bench_driver_map_roundtrip,
    bench_cost_model_curve
);
criterion_main!(benches);
