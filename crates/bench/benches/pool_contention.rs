//! Lock-contention micro-benchmark of the runtime's shared-pool path:
//! how much an alloc/free cycle costs through a `PoolHandle` when the pool
//! mutex is uncontended, versus raw allocator access, versus four threads
//! hammering one handle.
//!
//! The absolute numbers are host-side wall time (the device cost model is
//! zeroed); the interesting ratio is handle-vs-raw (mutex overhead) and how
//! it scales under contention.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gmlake_alloc_api::{gib, mib, AllocRequest, GpuAllocator};
use gmlake_caching::CachingAllocator;
use gmlake_gpu_sim::{CostModel, CudaDriver, DeviceConfig};
use gmlake_runtime::{DeviceId, PoolHandle, PoolService};

const OPS_PER_THREAD: usize = 256;

fn device() -> CudaDriver {
    CudaDriver::new(
        DeviceConfig::a100_80g()
            .with_cost(CostModel::zero())
            .with_capacity(gib(4)),
    )
}

fn shared_pool() -> PoolHandle {
    let service = PoolService::new();
    service
        .register(DeviceId(0), Box::new(CachingAllocator::new(device())))
        .expect("fresh service")
}

fn cycle(alloc: &mut impl GpuAllocator, size: u64) {
    let a = alloc.allocate(AllocRequest::new(black_box(size))).unwrap();
    alloc.deallocate(a.id).unwrap();
}

fn bench_raw_baseline(c: &mut Criterion) {
    c.bench_function("contention_raw_allocator_1thread", |b| {
        let mut alloc = CachingAllocator::new(device());
        cycle(&mut alloc, mib(8)); // warm the cache
        b.iter(|| cycle(&mut alloc, mib(8)));
    });
}

fn bench_handle_uncontended(c: &mut Criterion) {
    c.bench_function("contention_pool_handle_1thread", |b| {
        let mut pool = shared_pool();
        cycle(&mut pool, mib(8));
        b.iter(|| cycle(&mut pool, mib(8)));
    });
}

fn bench_handle_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention_pool_handle_4threads");
    g.sample_size(20);
    g.bench_function(&format!("{OPS_PER_THREAD}ops_each"), |b| {
        let pool = shared_pool();
        // Warm: distinct sizes per thread so best-fit reuse stays exact.
        for t in 0..4u64 {
            cycle(&mut pool.clone(), mib(4 + t));
        }
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let mut pool = pool.clone();
                    s.spawn(move || {
                        for _ in 0..OPS_PER_THREAD {
                            cycle(&mut pool, mib(4 + t));
                        }
                    });
                }
            })
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_raw_baseline,
    bench_handle_uncontended,
    bench_handle_contended
);
criterion_main!(benches);
