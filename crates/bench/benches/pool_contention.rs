//! Lock-contention micro-benchmark of the shared-pool allocation path:
//! what a small alloc/free cycle costs through the sharded
//! `DeviceAllocator` fast path versus the retired single-mutex design
//! (fast path disabled — every call through the core mutex), swept over
//! 1/2/4/8 threads, plus the raw single-owner allocator as the floor.
//!
//! The absolute numbers are host-side wall time (the device cost model is
//! zeroed); the interesting ratio is sharded-vs-mutex at each thread count.
//! `bench_pr3` records the same sweep as `BENCH_PR3.json` for the CI
//! perf-trajectory gate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gmlake_alloc_api::{gib, kib, AllocRequest, AllocatorCore, DeviceAllocator};
use gmlake_bench::perf::{contention_pool, contention_thread_size};
use gmlake_caching::CachingAllocator;
use gmlake_gpu_sim::{CostModel, CudaDriver, DeviceConfig};
use gmlake_runtime::{DeviceId, PoolHandle, PoolService};

const OPS_PER_THREAD: usize = 256;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn device() -> CudaDriver {
    CudaDriver::new(
        DeviceConfig::a100_80g()
            .with_cost(CostModel::zero())
            .with_capacity(gib(4)),
    )
}

fn cycle(pool: &DeviceAllocator, size: u64) {
    let a = pool.allocate(AllocRequest::new(black_box(size))).unwrap();
    pool.deallocate(a.id).unwrap();
}

fn hammer(pool: &DeviceAllocator, threads: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = pool.clone();
            s.spawn(move || {
                let size = contention_thread_size(t);
                for _ in 0..OPS_PER_THREAD {
                    cycle(&pool, size);
                }
            });
        }
    })
}

fn bench_raw_baseline(c: &mut Criterion) {
    c.bench_function("contention_raw_allocator_1thread", |b| {
        let mut alloc = CachingAllocator::new(device());
        let warm = alloc.allocate(AllocRequest::new(kib(8))).unwrap();
        alloc.deallocate(warm.id).unwrap();
        b.iter(|| {
            let a = alloc
                .allocate(AllocRequest::new(black_box(kib(8))))
                .unwrap();
            alloc.deallocate(a.id).unwrap();
        });
    });
}

fn bench_thread_sweep(c: &mut Criterion) {
    for &threads in &THREAD_COUNTS {
        let group_name = format!("contention_{threads}threads");
        let mut g = c.benchmark_group(&group_name);
        g.sample_size(20);
        for (label, sharded) in [("mutex", false), ("sharded", true)] {
            g.bench_function(&format!("{label}_{OPS_PER_THREAD}ops_each"), |b| {
                let pool = contention_pool(sharded);
                for t in 0..threads {
                    cycle(&pool, contention_thread_size(t)); // warm every class
                }
                b.iter(|| hammer(&pool, threads));
            });
        }
        g.finish();
    }
}

fn bench_pool_handle_path(c: &mut Criterion) {
    // The full runtime path (PoolService registry + scheduler hooks) on
    // top of the sharded fast path: the overhead the handle itself adds.
    c.bench_function("contention_pool_handle_1thread", |b| {
        let service = PoolService::new();
        let pool: PoolHandle = service
            .register(DeviceId(0), Box::new(CachingAllocator::new(device())))
            .expect("fresh service");
        let warm = pool.allocate(AllocRequest::new(kib(8))).unwrap();
        pool.deallocate(warm.id).unwrap();
        b.iter(|| {
            let a = pool.allocate(AllocRequest::new(black_box(kib(8)))).unwrap();
            pool.deallocate(a.id).unwrap();
        });
    });
}

criterion_group!(
    benches,
    bench_raw_baseline,
    bench_thread_sweep,
    bench_pool_handle_path
);
criterion_main!(benches);
