//! Allocator hot-path scaling: allocate/deallocate and `BestFit`
//! classification across pool sizes (1e2–1e5 inactive blocks), on the
//! converged pool state where every inactive pBlock belongs to a cached
//! available sBlock.
//!
//! `probe:indexed` vs `probe:reference` is the headline comparison: the
//! tiered-index implementation against the retained pre-index reference on
//! identical pool state. `alloc_free:s1` shows the end-to-end exact-match
//! round-trip staying flat (logarithmic) as the pool grows.

use criterion::{criterion_group, criterion_main, Criterion};
use gmlake_alloc_api::{AllocRequest, AllocatorCore};
use gmlake_bench::perf::{build_converged_pool, STITCH_PROBE_BYTES, VIEW_BYTES};

fn bestfit_scaling(c: &mut Criterion) {
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let mut lake = build_converged_pool(n);
        let mut group = c.benchmark_group(&format!("bestfit_scaling/{n}_blocks"));
        group.bench_function("alloc_free:s1", |b| {
            b.iter(|| {
                let a = lake
                    .allocate(AllocRequest::new(VIEW_BYTES))
                    .expect("exact match");
                lake.deallocate(a.id).expect("live");
            })
        });
        group.bench_function("probe:indexed", |b| {
            b.iter(|| lake.probe_bestfit_indexed(STITCH_PROBE_BYTES))
        });
        let flat = lake.flat_inactive_index();
        group.bench_function("probe:reference", |b| {
            b.iter(|| lake.probe_bestfit_reference(STITCH_PROBE_BYTES, &flat))
        });
        group.finish();
    }
}

criterion_group!(benches, bestfit_scaling);
criterion_main!(benches);
