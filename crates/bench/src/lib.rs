//! Shared harness plumbing for the per-figure/table benchmark binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper's
//! evaluation (see `DESIGN.md` §4 for the index). They all follow the same
//! recipe: build a [`TrainConfig`], generate its trace, replay it against
//! the PyTorch-style caching allocator and against GMLake on identical
//! fresh devices, and print the paper's rows/series.

use std::sync::Arc;

use gmlake_alloc_api::{gib, AllocatorCore, DeviceAllocator, DeviceAllocatorConfig};
use gmlake_caching::CachingAllocator;
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig, NativeAllocator};
use gmlake_runtime::{DefragScheduler, DeviceId, MemoryProfiler, PoolService};
use gmlake_telemetry::{MemorySnapshot, PoolTelemetry};
use gmlake_workload::{
    ConcurrentReplayer, RankSpec, ReplayOptions, ReplayReport, Replayer, ScaleoutReport,
    TraceGenerator, TrainConfig,
};

pub mod perf;
pub mod report;

/// Which allocator to run a workload against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocator {
    /// PyTorch-style caching allocator (baseline, "w/o GML").
    Caching,
    /// GMLake ("w/ GML").
    GmLake,
    /// Native `cudaMalloc`/`cudaFree` pass-through.
    Native,
}

/// Result pair for one workload: baseline vs GMLake.
#[derive(Debug, Clone)]
pub struct Pair {
    /// Caching-allocator report.
    pub baseline: ReplayReport,
    /// GMLake report.
    pub gmlake: ReplayReport,
}

/// Device capacity used throughout the evaluation (A100-80GB).
pub fn device_capacity() -> u64 {
    gib(80)
}

/// Runs `cfg` against one allocator on a fresh A100-80G device.
pub fn run_single(cfg: &TrainConfig, which: Allocator, opts: &ReplayOptions) -> ReplayReport {
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let replayer = Replayer::new(driver.clone()).with_options(opts.clone());
    match which {
        Allocator::Caching => {
            let mut alloc = CachingAllocator::new(driver);
            replayer.replay(&mut alloc, &trace, cfg)
        }
        Allocator::GmLake => {
            let mut alloc = GmLakeAllocator::new(driver, GmLakeConfig::default());
            replayer.replay(&mut alloc, &trace, cfg)
        }
        Allocator::Native => {
            let mut alloc = NativeAllocator::new(driver);
            replayer.replay(&mut alloc, &trace, cfg)
        }
    }
}

/// Runs `cfg` against the caching baseline and GMLake on identical devices.
pub fn run_pair(cfg: &TrainConfig) -> Pair {
    let opts = ReplayOptions::default();
    Pair {
        baseline: run_single(cfg, Allocator::Caching, &opts),
        gmlake: run_single(cfg, Allocator::GmLake, &opts),
    }
}

/// Runs a concurrent scale-out fleet: `ranks` data-parallel ranks of `cfg`,
/// each on its own fresh A100-80G device, all replaying simultaneously on
/// their own OS threads through one [`PoolService`] (optionally supervised
/// by a defrag scheduler).
pub fn run_scaleout(
    cfg: &TrainConfig,
    ranks: u32,
    which: Allocator,
    scheduler: Option<DefragScheduler>,
) -> ScaleoutReport {
    let service = match scheduler {
        Some(s) => PoolService::with_scheduler(s),
        None => PoolService::new(),
    };
    let specs: Vec<RankSpec> = (0..ranks)
        .map(|rank| {
            let driver = CudaDriver::new(DeviceConfig::a100_80g());
            let device = DeviceId(rank);
            let alloc: Box<dyn AllocatorCore + Send> = match which {
                Allocator::Caching => Box::new(CachingAllocator::new(driver.clone())),
                Allocator::GmLake => Box::new(GmLakeAllocator::new(
                    driver.clone(),
                    GmLakeConfig::default(),
                )),
                Allocator::Native => Box::new(NativeAllocator::new(driver.clone())),
            };
            service
                .register(device, alloc)
                .expect("fresh device ids are unique");
            RankSpec::new(device, driver, cfg.clone())
        })
        .collect();
    ConcurrentReplayer::new(service)
        .replay_ranks(specs)
        .expect("all ranks were just registered")
}

/// Runs a profiled GMLake scale-out fleet: like
/// [`run_scaleout`]`(cfg, ranks, Allocator::GmLake, None)`, but with the
/// full telemetry stack attached to every rank — an unsampled
/// [`PoolTelemetry`] sink wired into the front-end hot paths, the GMLake
/// core's stitch decisions, and the device driver (which also serves as
/// the sink's clock, so event timestamps share the replay's simulated
/// timeline) — under a started [`MemoryProfiler`]. Returns the replay
/// report together with the dumped [`MemorySnapshot`]: one pool per rank,
/// timeline points at every iteration boundary plus the profiler's final
/// reconciling sample.
pub fn run_scaleout_profiled(cfg: &TrainConfig, ranks: u32) -> (ScaleoutReport, MemorySnapshot) {
    let service = PoolService::new();
    let profiler = MemoryProfiler::new(&service);
    let specs: Vec<RankSpec> = (0..ranks)
        .map(|rank| {
            let driver = CudaDriver::new(DeviceConfig::a100_80g());
            let telemetry = Arc::new(PoolTelemetry::full().with_clock(Arc::new(driver.clone())));
            driver.set_telemetry(Arc::clone(&telemetry));
            let mut core = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
            core.set_telemetry(Arc::clone(&telemetry));
            let alloc = DeviceAllocator::try_build(
                Box::new(core),
                DeviceAllocatorConfig::default(),
                Some(Arc::new(driver.clone())),
                Some(telemetry),
            )
            .expect("the default front-end config is valid");
            let device = DeviceId(rank);
            service
                .register_device(device, alloc)
                .expect("fresh device ids are unique");
            RankSpec::new(device, driver, cfg.clone())
        })
        .collect();
    profiler.start();
    let report = ConcurrentReplayer::new(service)
        .replay_ranks(specs)
        .expect("all ranks were just registered");
    let snapshot = profiler.dump();
    (report, snapshot)
}

/// Runs `cfg` against a caller-supplied allocator on a fresh device (for
/// ablations with custom configurations).
pub fn run_with<A, F>(cfg: &TrainConfig, make: F) -> ReplayReport
where
    A: AllocatorCore,
    F: FnOnce(CudaDriver) -> A,
{
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut alloc = make(driver.clone());
    Replayer::new(driver).replay(&mut alloc, &trace, cfg)
}

/// Formats bytes as GiB with one decimal.
pub fn fmt_gib(bytes: u64) -> String {
    format!("{:6.1}", gmlake_workload::to_gib(bytes))
}

/// Formats a ratio as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Renders an outcome: reserved GiB, or `OOM` when the run died.
pub fn fmt_reserved(r: &ReplayReport) -> String {
    if r.outcome.is_completed() {
        fmt_gib(r.peak_reserved)
    } else {
        "   OOM".to_owned()
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints the standard comparison row for one workload.
pub fn print_compare_row(label: &str, pair: &Pair) {
    let b = &pair.baseline;
    let g = &pair.gmlake;
    println!(
        "{label:<34} {} {}   {} {}   {} {}",
        fmt_reserved(b),
        fmt_pct(b.utilization()),
        fmt_reserved(g),
        fmt_pct(g.utilization()),
        fmt_gib(b.peak_reserved.saturating_sub(g.peak_reserved)),
        fmt_pct(if b.peak_reserved > 0 {
            (b.peak_reserved.saturating_sub(g.peak_reserved)) as f64 / b.peak_reserved as f64
        } else {
            0.0
        }),
    );
}

/// Prints the standard comparison header.
pub fn print_compare_header(first_col: &str) {
    println!(
        "{first_col:<34} {:>6} {:>6}   {:>6} {:>6}   {:>6} {:>6}",
        "RM-pt", "UR-pt", "RM-gml", "UR-gml", "save", "save%"
    );
    rule(84);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_workload::{ModelSpec, StrategySet};

    #[test]
    fn pair_runs_and_gmlake_wins_on_fragmentation() {
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR).with_iterations(3);
        let pair = run_pair(&cfg);
        assert!(pair.baseline.outcome.is_completed());
        assert!(pair.gmlake.outcome.is_completed());
        assert!(
            pair.gmlake.utilization() >= pair.baseline.utilization(),
            "gmlake {:.3} vs baseline {:.3}",
            pair.gmlake.utilization(),
            pair.baseline.utilization()
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_gib(1 << 30), "   1.0");
        assert_eq!(fmt_pct(0.925), " 92.5%");
    }
}
