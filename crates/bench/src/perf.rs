//! Hot-path perf harness: converged-pool builders and probe workloads
//! shared by the `bestfit_scaling` criterion bench and the `bench_pr2`
//! perf-snapshot binary.
//!
//! The interesting regime for `BestFit` is the paper's *converged* steady
//! state: nearly every inactive pBlock is woven into a cached, fully
//! inactive sBlock (`StitchCost::ReferencedAvailable`). In that state the
//! reference implementation's S3 classification makes two full
//! closure-evaluating passes over the pool (the unreferenced and
//! referenced-blocked tiers are empty) before the third pass succeeds,
//! while the tiered-index implementation probes two empty sets and walks a
//! handful of candidates. [`build_converged_pool`] constructs exactly that
//! state at an arbitrary scale.

use std::time::Instant;

use gmlake_alloc_api::{
    gib, kib, mib, AllocRequest, AllocatorCore, DeviceAllocator, DeviceAllocatorConfig,
};
use gmlake_caching::CachingAllocator;
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CostModel, CudaDriver, DeviceConfig};

/// Size of each cached stitched view the builder creates.
pub const VIEW_BYTES: u64 = mib(10);
/// A request no cached structure can satisfy alone: forces the S3
/// (multi-block) classification, the reference path's worst case.
pub const STITCH_PROBE_BYTES: u64 = mib(20);

/// Builds a GMLake allocator in the converged steady state with
/// `n_blocks` inactive pBlocks (rounded down to a pair multiple), every
/// one referenced by an available cached sBlock.
///
/// Construction: pairs of 4 + 6 MiB tensors are freed and re-requested as
/// 10 MiB, which stitches them; holding every 10 MiB tensor until the end
/// keeps earlier structures out of `BestFit`'s way, and the final bulk
/// free flips all views to available at once.
pub fn build_converged_pool(n_blocks: usize) -> GmLakeAllocator {
    let pairs = (n_blocks / 2).max(1);
    let dev = DeviceConfig {
        name: format!("bench-pool-{n_blocks}"),
        capacity: pairs as u64 * VIEW_BYTES + mib(64),
        granularity: mib(2),
        backing: false,
        cost: CostModel::zero(),
    };
    let cfg = GmLakeConfig::default()
        .with_frag_limit(mib(2))
        .with_max_sblocks(n_blocks.max(8192));
    let mut lake = GmLakeAllocator::new(CudaDriver::new(dev), cfg);
    let mut held = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let a = lake.allocate(AllocRequest::new(mib(4))).expect("capacity");
        let b = lake.allocate(AllocRequest::new(mib(6))).expect("capacity");
        lake.deallocate(a.id).expect("live");
        lake.deallocate(b.id).expect("live");
        // The only inactive blocks right now are a and b: this stitches
        // them, and stays assigned so later pairs cannot disturb it.
        let c = lake
            .allocate(AllocRequest::new(VIEW_BYTES))
            .expect("capacity");
        held.push(c.id);
    }
    for id in held {
        lake.deallocate(id).expect("live");
    }
    debug_assert_eq!(lake.pblock_count(), pairs * 2);
    debug_assert_eq!(lake.sblock_count(), pairs);
    lake
}

// ---------------------------------------------------------------------
// Pool-contention sweep harness, shared by the `pool_contention` criterion
// bench and the `bench_pr3` snapshot/CI-gate binary so both measure the
// same workload.
// ---------------------------------------------------------------------

/// Builds the shared pool of the contention sweep: a caching core on a
/// zero-cost device. `sharded = false` disables the front-end fast path,
/// reproducing the retired one-global-mutex `SharedAllocator` behaviour —
/// the sweep's baseline.
pub fn contention_pool(sharded: bool) -> DeviceAllocator {
    let driver = CudaDriver::new(
        DeviceConfig::a100_80g()
            .with_cost(CostModel::zero())
            .with_capacity(gib(4)),
    );
    let config = if sharded {
        DeviceAllocatorConfig::default()
    } else {
        DeviceAllocatorConfig::default().with_small_threshold(0)
    };
    DeviceAllocator::with_config(CachingAllocator::new(driver), config)
}

/// Distinct small size per sweep thread (distinct power-of-two classes,
/// 8 KiB … 1 MiB for threads 0…7), as data-parallel ranks with different
/// tensor shapes would issue.
pub fn contention_thread_size(t: usize) -> u64 {
    kib(8) << t
}

// ---------------------------------------------------------------------
// Stream-sweep harness (PR 4), shared by the `bench_pr4` snapshot/CI-gate
// binary.
// ---------------------------------------------------------------------

/// Size every thread of the stream sweep allocates: ONE shared class, the
/// worst case for pure size-class sharding (all threads hash to the same
/// shard) and precisely the case per-stream banks exist to fix — identical
/// tensor shapes issued concurrently on independent streams.
pub const STREAM_SWEEP_SIZE: u64 = kib(64);

/// Builds the stream sweep's shared pool: a caching core on a zero-cost
/// device behind a front-end with `streams` cache banks (1 = the PR 3
/// single-pool layout, the sweep's baseline).
pub fn stream_pool(streams: usize) -> DeviceAllocator {
    let driver = CudaDriver::new(
        DeviceConfig::a100_80g()
            .with_cost(CostModel::zero())
            .with_capacity(gib(4)),
    );
    DeviceAllocator::with_config(
        CachingAllocator::new(driver),
        DeviceAllocatorConfig::default().with_streams(streams),
    )
}

/// Builds the event-backed variant of [`stream_pool`] (PR 5): the same
/// caching core on a zero-cost device, with a clone of the device's driver
/// as the front-end's [`EventSource`] — cross-stream frees record a real
/// driver event and park in the pending rings instead of round-tripping
/// through the core mutex. On the zero-cost device no stream work is ever
/// in flight, so every event completes at record time: the sweep measures
/// the pure mechanics of the event-guarded path (record + park + promote),
/// not event latency.
///
/// [`EventSource`]: gmlake_alloc_api::EventSource
pub fn stream_pool_with_events(streams: usize) -> DeviceAllocator {
    let driver = CudaDriver::new(
        DeviceConfig::a100_80g()
            .with_cost(CostModel::zero())
            .with_capacity(gib(4)),
    );
    DeviceAllocator::with_config_and_events(
        CachingAllocator::new(driver.clone()),
        DeviceAllocatorConfig::default().with_streams(streams),
        std::sync::Arc::new(driver),
    )
}

/// Builds the telemetry variant of [`stream_pool_with_events`] (PR 6): the
/// same event-backed pool with a [`PoolTelemetry`] sink attached exactly
/// as `PoolService::register` attaches it (default 1-in-32 hot-path
/// sampling), optionally pre-enabled. The driver doubles as the sink's
/// clock and feeds the driver-call histogram, mirroring the full profiled
/// stack so `bench_pr6` measures realistic end-to-end overhead.
///
/// [`PoolTelemetry`]: gmlake_telemetry::PoolTelemetry
pub fn stream_pool_with_telemetry(streams: usize, enabled: bool) -> DeviceAllocator {
    let driver = CudaDriver::new(
        DeviceConfig::a100_80g()
            .with_cost(CostModel::zero())
            .with_capacity(gib(4)),
    );
    let telemetry = std::sync::Arc::new(
        gmlake_telemetry::PoolTelemetry::new().with_clock(std::sync::Arc::new(driver.clone())),
    );
    if enabled {
        telemetry.enable();
    }
    driver.set_telemetry(std::sync::Arc::clone(&telemetry));
    DeviceAllocator::try_build(
        Box::new(CachingAllocator::new(driver.clone())),
        DeviceAllocatorConfig::default().with_streams(streams),
        Some(std::sync::Arc::new(driver)),
        Some(telemetry),
    )
    .expect("default config with a valid stream count")
}

// ---------------------------------------------------------------------
// Large-path sweep harness (PR 9), shared by the `bench_pr9` snapshot/
// CI-gate binary.
// ---------------------------------------------------------------------

/// Size every thread of the large sweep allocates: comfortably above the
/// 2 MiB stitch threshold, so every request takes the GMLake large path —
/// the traffic that used to serialize on the core mutex regardless of
/// stream.
pub const LARGE_SWEEP_SIZE: u64 = mib(4);

/// Inactive pBlocks the large pool is primed with before the sweep runs.
/// An empty core makes the mutex baseline unrealistically cheap: real
/// GMLake pools carry a populated inactive index, and the pre-PR 9 design
/// ran `BestFit` + tier maintenance over it *inside the mutex* for every
/// warm large request — precisely the per-op work the bank route's warm
/// hits never do.
pub const LARGE_POOL_PRIMED_BLOCKS: usize = 256;

/// Builds the large sweep's shared pool: a GMLake core on a zero-cost
/// device, primed with [`LARGE_POOL_PRIMED_BLOCKS`] assorted inactive
/// blocks (6–12 MiB), behind a front-end with `streams` large banks and a
/// clone of the driver as the [`EventSource`] (cross-stream large frees
/// park behind real driver events). `cap` is `max_cached_large_per_bank`:
/// 0 disables the per-stream large banks entirely, reproducing the
/// pre-PR 9 layout where every above-threshold allocation round-trips the
/// core mutex — the sweep's in-process baseline.
///
/// [`EventSource`]: gmlake_alloc_api::EventSource
pub fn large_pool(streams: usize, cap: usize) -> DeviceAllocator {
    let driver = CudaDriver::new(
        DeviceConfig::a100_80g()
            .with_cost(CostModel::zero())
            .with_capacity(gib(8)),
    );
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    let mut held = Vec::with_capacity(LARGE_POOL_PRIMED_BLOCKS);
    for i in 0..LARGE_POOL_PRIMED_BLOCKS {
        let size = mib(6 + 2 * (i % 4) as u64);
        held.push(lake.allocate(AllocRequest::new(size)).expect("capacity").id);
    }
    for id in held {
        lake.deallocate(id).expect("live");
    }
    DeviceAllocator::with_config_and_events(
        lake,
        DeviceAllocatorConfig::default()
            .with_streams(streams)
            .with_max_cached_large_per_bank(cap),
        std::sync::Arc::new(driver),
    )
}

/// Minimal field extractor for the committed `BENCH_PR<n>.json` snapshots
/// used by the `--check` CI gates: finds the first `"name": <number>`
/// occurrence. The snapshots are machine-written by the bench binaries
/// themselves, so no general JSON parsing is needed.
pub fn extract_field(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Times `op` with a two-point read of the monotonic clock around a single
/// block of iterations (sized by a one-call estimate against
/// `budget_ms`), returning ns per call. Mirrors the criterion shim's
/// measurement strategy so the binary and the bench report comparable
/// numbers.
pub fn time_ns_per_call(budget_ms: u64, mut op: impl FnMut()) -> f64 {
    op(); // warm-up
    let t = Instant::now();
    op();
    let est = t.elapsed().as_nanos().max(1);
    let iters = ((budget_ms as u128 * 1_000_000) / est).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// One pool-size sample of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingSample {
    /// Inactive pBlocks in the pool.
    pub pool_blocks: usize,
    /// Full allocate+deallocate round-trip of an exact-match (S1) request.
    pub alloc_free_s1_ns: f64,
    /// Indexed `BestFit` classification of an S3 (stitch) request.
    pub probe_indexed_ns: f64,
    /// Reference (pre-index) `BestFit` classification of the same request.
    pub probe_reference_ns: f64,
}

impl ScalingSample {
    /// reference / indexed classification-time ratio.
    pub fn speedup(&self) -> f64 {
        self.probe_reference_ns / self.probe_indexed_ns
    }
}

/// Runs the sweep for one pool size.
pub fn sample_pool(n_blocks: usize, budget_ms: u64) -> ScalingSample {
    let mut lake = build_converged_pool(n_blocks);
    let alloc_free_s1_ns = time_ns_per_call(budget_ms, || {
        let a = lake
            .allocate(AllocRequest::new(VIEW_BYTES))
            .expect("exact match");
        lake.deallocate(a.id).expect("live");
    });
    let probe_indexed_ns = time_ns_per_call(budget_ms, || {
        std::hint::black_box(lake.probe_bestfit_indexed(STITCH_PROBE_BYTES));
    });
    let flat = lake.flat_inactive_index();
    let probe_reference_ns = time_ns_per_call(budget_ms, || {
        std::hint::black_box(lake.probe_bestfit_reference(STITCH_PROBE_BYTES, &flat));
    });
    ScalingSample {
        pool_blocks: n_blocks,
        alloc_free_s1_ns,
        probe_indexed_ns,
        probe_reference_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_pool_has_expected_shape_and_probes_agree() {
        let lake = build_converged_pool(40);
        assert_eq!(lake.pblock_count(), 40);
        assert_eq!(lake.sblock_count(), 20);
        lake.validate().unwrap();
        // Exact view size classifies S1; the stitch probe classifies S3 in
        // both implementations.
        assert_eq!(lake.probe_bestfit_indexed(VIEW_BYTES), 1);
        let flat = lake.flat_inactive_index();
        assert_eq!(flat.len(), 40, "every pblock is inactive");
        assert_eq!(
            lake.probe_bestfit_indexed(STITCH_PROBE_BYTES),
            lake.probe_bestfit_reference(STITCH_PROBE_BYTES, &flat)
        );
        assert_eq!(lake.probe_bestfit_indexed(STITCH_PROBE_BYTES), 3);
    }

    #[test]
    fn stream_pool_partitions_by_stream() {
        use gmlake_alloc_api::StreamId;
        let pool = stream_pool(8);
        assert_eq!(pool.cache_stats().streams, 8);
        let a = pool
            .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), StreamId(3))
            .expect("capacity");
        pool.free_on_stream(a.id, StreamId(3)).expect("live");
        assert_eq!(pool.stream_cache_stats(StreamId(3)).cached_blocks, 1);
        assert_eq!(pool.stream_cache_stats(StreamId(0)).cached_blocks, 0);
    }

    #[test]
    fn event_pool_recycles_cross_stream_blocks_without_core_traffic() {
        use gmlake_alloc_api::StreamId;
        // The steady-state cycle bench_pr5's cross_events shape measures:
        // alloc on t, free on t+1 (parks behind a driver event that is
        // complete at record time), alloc on t again promotes and reuses.
        let pool = stream_pool_with_events(8);
        let a = pool
            .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), StreamId(2))
            .expect("capacity");
        pool.free_on_stream(a.id, StreamId(3)).expect("live");
        let core_allocs = pool.with_core(|c| c.stats().alloc_count);
        let b = pool
            .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), StreamId(2))
            .expect("capacity");
        assert_eq!(b.va, a.va, "the parked block was promoted and reused");
        assert_eq!(
            pool.with_core(|c| c.stats().alloc_count),
            core_allocs,
            "no core round trip on the warm event path"
        );
        let c = pool.cache_stats();
        assert_eq!((c.cross_stream_parked, c.event_promotions), (1, 1));
        assert_eq!(c.cross_stream_fallback, 0);
        pool.free_on_stream(b.id, StreamId(2)).expect("live");
    }

    #[test]
    fn timing_helper_returns_positive_nanoseconds() {
        let ns = time_ns_per_call(1, || {
            std::hint::black_box(42u64.wrapping_mul(7));
        });
        assert!(ns > 0.0);
    }
}
