//! Quick calibration probe: utilization of both allocators across the five
//! strategy combinations, to check the simulated fragmentation bands against
//! the paper before running the full figure harnesses.

use gmlake_bench::{print_compare_header, print_compare_row, run_pair};
use gmlake_workload::{ModelSpec, StrategySet, TrainConfig};

fn main() {
    println!("calibration: OPT-1.3B and OPT-13B across strategies (4 GPUs)\n");
    print_compare_header("workload");
    for model in [ModelSpec::opt_1_3b(), ModelSpec::opt_13b()] {
        for s in StrategySet::FIG10_SWEEP {
            let cfg = TrainConfig::new(model.clone(), s).with_iterations(4);
            let pair = run_pair(&cfg);
            print_compare_row(&cfg.label(), &pair);
        }
    }
}
