//! Perf snapshot for the PR 6 telemetry layer: measures what attaching a
//! `PoolTelemetry` sink costs on the hottest path in the repo — the
//! `bench_pr5` same-stream warm alloc/free sweep (8 stream banks, thread
//! *t* allocating and freeing one shared 64 KiB class on `StreamId(t)`) —
//! in three configurations:
//!
//! * **baseline** — the PR 5 event-backed pool, no telemetry attached:
//!   the instrumentation compiles to an `Option::None` branch;
//! * **disabled** — the same pool with a sink attached but disabled, the
//!   state every `PoolService::register` pool ships in: one relaxed
//!   atomic load per call;
//! * **enabled** — the sink enabled at the default 1-in-32 hot-path
//!   sampling rate, as a running `MemoryProfiler` configures it: sampled
//!   calls take two `Instant` reads plus two ring-buffer event pushes.
//!
//! Results are written as machine-readable `BENCH_PR6.json` (committed,
//! uploaded as a CI artifact; the committed snapshot records the disabled
//! sink within the 5% acceptance bound and the enabled sink within 25% of
//! baseline at 8 threads). `bench_pr6 --check` re-runs the sweep (best of
//! three per point, fresh pools) and fails when the telemetry layer
//! *structurally* regresses: an 8-thread disabled overhead above
//! [`MAX_DISABLED_8T`] or enabled overhead above [`MAX_ENABLED_8T`] fails
//! the gate, values between the acceptance bounds and the ceilings only
//! warn (scheduler noise on oversubscribed single-core runners), and
//! order-of-magnitude drops against the committed snapshot fail as in
//! `bench_pr5 --check`.

use std::time::Instant;

use gmlake_alloc_api::{AllocRequest, DeviceAllocator, StreamId};
use gmlake_bench::perf::{stream_pool_with_events, stream_pool_with_telemetry, STREAM_SWEEP_SIZE};
use gmlake_bench::report;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OPS_PER_THREAD: usize = 20_000;
/// Repetitions per measurement point; the best run is kept (strips
/// scheduler-noise downside on oversubscribed runners).
const REPS: usize = 3;
/// Stream banks of the pools (covers the widest sweep point).
const STREAMS: usize = 8;
/// Acceptance bound on the disabled sink at 8 threads: at most 5% slower
/// than the no-telemetry baseline. The committed snapshot meets it;
/// `--check` runs above it only warn until [`MAX_DISABLED_8T`].
const ACCEPT_DISABLED_8T: f64 = 1.05;
/// Hard `--check` ceiling on the disabled-sink overhead: above this the
/// "one relaxed atomic load" claim is broken (e.g. the gate grew a lock)
/// and CI fails.
const MAX_DISABLED_8T: f64 = 1.5;
/// Acceptance bound on the enabled sink at 8 threads: at most 25% slower
/// than baseline under the default 1-in-32 sampling.
const ACCEPT_ENABLED_8T: f64 = 1.25;
/// Hard `--check` ceiling on the enabled-sink overhead: above this the
/// sampled fast path has structurally regressed (e.g. recording started
/// contending on a shared lock) and CI fails.
const MAX_ENABLED_8T: f64 = 2.0;

/// Best of [`REPS`] runs of [`measure_once`], each on a FRESH pool: a rep
/// that falls into a bad lock-handoff regime (oversubscribed single-core
/// runners) cannot poison the others through shared mutex/cache state.
fn measure(make_pool: impl Fn() -> DeviceAllocator, threads: usize) -> f64 {
    (0..REPS)
        .map(|_| measure_once(&make_pool(), threads))
        .fold(0.0, f64::max)
}

/// Runs `threads` workers, each doing `OPS_PER_THREAD` warm same-stream
/// alloc/free cycles of the shared size class (the `bench_pr5`
/// same-stream shape); returns aggregate operations (one alloc + one free
/// = 2 ops) per second.
fn measure_once(pool: &DeviceAllocator, threads: usize) -> f64 {
    // Warm every thread's (stream, class) slot so the sweep measures the
    // steady state, not first-touch core misses.
    for t in 0..threads {
        let stream = StreamId(t as u32);
        let a = pool
            .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), stream)
            .unwrap();
        pool.free_on_stream(a.id, stream).unwrap();
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = pool.clone();
            s.spawn(move || {
                let stream = StreamId(t as u32);
                for _ in 0..OPS_PER_THREAD {
                    let a = pool
                        .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), stream)
                        .unwrap();
                    pool.free_on_stream(a.id, stream).unwrap();
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads * OPS_PER_THREAD * 2) as f64 / secs
}

struct SweepPoint {
    threads: usize,
    baseline_ops_per_sec: f64,
    disabled_ops_per_sec: f64,
    enabled_ops_per_sec: f64,
}

impl SweepPoint {
    /// Slowdown factor of the attached-but-disabled sink (1.0 = parity).
    fn overhead_disabled(&self) -> f64 {
        self.baseline_ops_per_sec / self.disabled_ops_per_sec
    }

    /// Slowdown factor of the enabled, 1-in-32-sampled sink.
    fn overhead_enabled(&self) -> f64 {
        self.baseline_ops_per_sec / self.enabled_ops_per_sec
    }
}

fn run_sweep() -> Vec<SweepPoint> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let baseline_ops_per_sec = measure(|| stream_pool_with_events(STREAMS), threads);
            let disabled_ops_per_sec =
                measure(|| stream_pool_with_telemetry(STREAMS, false), threads);
            let enabled_ops_per_sec =
                measure(|| stream_pool_with_telemetry(STREAMS, true), threads);
            let point = SweepPoint {
                threads,
                baseline_ops_per_sec,
                disabled_ops_per_sec,
                enabled_ops_per_sec,
            };
            eprintln!(
                "  {threads} thread(s): baseline {:>12.0} ops/s, disabled {:>12.0} ops/s \
                 ({:.3}x), enabled {:>12.0} ops/s ({:.3}x)",
                point.baseline_ops_per_sec,
                point.disabled_ops_per_sec,
                point.overhead_disabled(),
                point.enabled_ops_per_sec,
                point.overhead_enabled(),
            );
            point
        })
        .collect()
}

fn render_json(sweep: &[SweepPoint]) -> String {
    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr6/v1\",\n");
    json.push_str("  \"telemetry_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"baseline_ops_per_sec\": {:.0}, \
             \"disabled_ops_per_sec\": {:.0}, \"enabled_ops_per_sec\": {:.0}, \
             \"overhead_disabled\": {:.3}, \"overhead_enabled\": {:.3}}}{}\n",
            p.threads,
            p.baseline_ops_per_sec,
            p.disabled_ops_per_sec,
            p.enabled_ops_per_sec,
            p.overhead_disabled(),
            p.overhead_enabled(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let eight = sweep.last().expect("sweep is non-empty");
    json.push_str(&format!(
        "  \"overhead_disabled_8t\": {:.3},\n  \"overhead_enabled_8t\": {:.3},\n",
        eight.overhead_disabled(),
        eight.overhead_enabled()
    ));
    json.push_str(
        "  \"notes\": \"warm 64 KiB same-stream alloc+free cycles on the bench_pr5 \
         event-backed pool (8 stream banks, thread t on StreamId(t)); baseline has no \
         telemetry attached (the instrumentation is an Option::None branch), disabled has a \
         PoolTelemetry sink attached but off (one relaxed atomic load per call, the state \
         every PoolService::register pool ships in), enabled samples 1-in-32 hot-path calls \
         (two Instant reads + alloc/free event pushes into per-thread ring shards) with the \
         driver feeding the driver-call histogram. Overheads are baseline/variant slowdown \
         factors (1.0 = parity). Acceptance: overhead_disabled_8t <= 1.05, \
         overhead_enabled_8t <= 1.25\"\n}\n",
    );
    json
}

/// Compares a freshly measured sweep against the committed snapshot;
/// returns the hard failures (empty = pass).
fn check_against(committed: &str, sweep: &[SweepPoint]) -> Vec<String> {
    let mut failures = Vec::new();
    let eight = sweep.last().expect("sweep is non-empty");
    if eight.overhead_disabled() > MAX_DISABLED_8T {
        failures.push(format!(
            "8-thread disabled-telemetry overhead rose to {:.3}x (hard ceiling \
             {MAX_DISABLED_8T}x; acceptance bound {ACCEPT_DISABLED_8T}x)",
            eight.overhead_disabled()
        ));
    } else if eight.overhead_disabled() > ACCEPT_DISABLED_8T {
        eprintln!(
            "warning: 8-thread disabled-telemetry overhead {:.3}x exceeds the \
             {ACCEPT_DISABLED_8T}x acceptance bound (scheduler noise on an oversubscribed \
             runner?)",
            eight.overhead_disabled()
        );
    }
    if eight.overhead_enabled() > MAX_ENABLED_8T {
        failures.push(format!(
            "8-thread enabled-telemetry overhead rose to {:.3}x (hard ceiling \
             {MAX_ENABLED_8T}x; acceptance bound {ACCEPT_ENABLED_8T}x)",
            eight.overhead_enabled()
        ));
    } else if eight.overhead_enabled() > ACCEPT_ENABLED_8T {
        eprintln!(
            "warning: 8-thread enabled-telemetry overhead {:.3}x exceeds the \
             {ACCEPT_ENABLED_8T}x acceptance bound (scheduler noise on an oversubscribed \
             runner?)",
            eight.overhead_enabled()
        );
    }
    // First sweep entry in the snapshot is the 1-thread point; compare
    // the same-shape quantity: current 1-thread baseline throughput.
    failures.extend(report::throughput_guard(
        committed,
        "baseline_ops_per_sec",
        sweep[0].baseline_ops_per_sec,
        "1-thread baseline throughput",
        "ops/s",
    ));
    failures
}

fn main() {
    eprintln!("telemetry overhead sweep, {OPS_PER_THREAD} alloc/free cycles per thread:");
    let sweep = run_sweep();

    report::finish(
        "BENCH_PR6.json",
        || render_json(&sweep),
        |committed| check_against(committed, &sweep),
        || {
            let eight = sweep.last().unwrap();
            format!(
                "8-thread telemetry overhead {:.3}x disabled, {:.3}x enabled",
                eight.overhead_disabled(),
                eight.overhead_enabled()
            )
        },
    );
}
