//! **Figure 13** — end-to-end effectiveness across batch sizes: reserved
//! memory + utilization (a–c) and throughput (d–f) for OPT-1.3B, OPT-13B and
//! GPT-NeoX-20B with LoRA + recomputation + ZeRO-3 on 4×A100.
//!
//! Paper: GMLake reduces peak reserved memory consistently, reaches >95%
//! utilization on the larger models, matches baseline throughput, and keeps
//! running at batch sizes where the PyTorch caching allocator hits OOM
//! (OPT-1.3B @249, OPT-13B @~120, GPT-NeoX-20B @~72).

use gmlake_bench::{fmt_pct, fmt_reserved, rule, run_pair};
use gmlake_workload::{ModelSpec, ReplayOutcome, StrategySet, TrainConfig};

fn main() {
    println!("Figure 13: batch-size sweep under LR + ZeRO-3, w/ and w/o GMLake\n");
    // Per-model sequence lengths keep activation-per-sample in the regime
    // where the paper's sweep ranges end near the 80 GB OOM wall.
    let sweeps: [(ModelSpec, u32, Vec<u32>); 3] = [
        (
            ModelSpec::opt_1_3b(),
            2048,
            vec![1, 32, 64, 128, 192, 249, 266, 272, 280],
        ),
        (
            ModelSpec::opt_13b(),
            1024,
            vec![1, 20, 40, 60, 80, 100, 120, 135, 150],
        ),
        (
            ModelSpec::gpt_neox_20b(),
            1024,
            vec![1, 12, 24, 36, 48, 60, 72, 84, 96, 100, 104],
        ),
    ];
    for (model, seq, batches) in sweeps {
        println!("model: {} (seq {seq})", model.name);
        println!(
            "{:<6} {:>7} {:>7} {:>9}   {:>7} {:>7} {:>9}",
            "batch", "RM-pt", "UR-pt", "thr-pt", "RM-gml", "UR-gml", "thr-gml"
        );
        rule(62);
        let mut pt_oom_at = None;
        let mut gml_oom_at = None;
        for &bs in &batches {
            let cfg = TrainConfig::new(model.clone(), StrategySet::LR)
                .with_seq_len(seq)
                .with_batch(bs);
            let pair = run_pair(&cfg);
            if pt_oom_at.is_none() {
                if let ReplayOutcome::Oom { .. } = pair.baseline.outcome {
                    pt_oom_at = Some(bs);
                }
            }
            if gml_oom_at.is_none() {
                if let ReplayOutcome::Oom { .. } = pair.gmlake.outcome {
                    gml_oom_at = Some(bs);
                }
            }
            println!(
                "{bs:<6} {:>7} {:>7} {:>9.1}   {:>7} {:>7} {:>9.1}",
                fmt_reserved(&pair.baseline),
                fmt_pct(pair.baseline.utilization()),
                pair.baseline.throughput,
                fmt_reserved(&pair.gmlake),
                fmt_pct(pair.gmlake.utilization()),
                pair.gmlake.throughput,
            );
        }
        match (pt_oom_at, gml_oom_at) {
            (Some(p), Some(g)) => {
                println!("PyTorch first OOM at batch {p}; GMLake at batch {g}")
            }
            (Some(p), None) => {
                println!("PyTorch first OOM at batch {p}; GMLake completed the whole sweep")
            }
            (None, _) => println!("no OOM observed in this sweep"),
        }
        println!();
    }
}
