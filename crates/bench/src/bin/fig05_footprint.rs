//! **Figure 5** — memory-footprint irregularity of GPT-NeoX-20B training:
//! original PyTorch versus PyTorch + LR (LoRA & recomputation).
//!
//! The paper reports the original run making 46 k allocations of 93 MB on
//! average while the +LR run makes 76 k allocations of 85 MB on average —
//! complex strategies mean *more, smaller, and more irregular* requests.
//! (Absolute counts depend on run length; the shape — count up, mean size
//! down, footprint more jagged — is the reproduction target.)

use gmlake_alloc_api::BYTES_PER_MIB;
use gmlake_workload::{ModelSpec, StrategySet, TraceGenerator, TrainConfig};

fn describe(label: &str, strategies: StrategySet) {
    // NeoX full fine-tuning does not fit 4×80 GB; the "original PyTorch" run
    // in the paper's Figure 5 is the plain configuration, which we model
    // with recomputation off and LoRA off but a reduced batch so the trace
    // is generatable; the statistics of interest are per-allocation.
    let cfg = TrainConfig::new(ModelSpec::gpt_neox_20b(), strategies)
        .with_batch(4)
        .with_iterations(8);
    let trace = TraceGenerator::new(cfg).generate();
    let stats = trace.stats();
    println!(
        "{label:<18} allocs {:>7}   mean size {:>6.1} MB   small(<2MiB) {:>5}   peak live {:>6.1} GiB",
        stats.allocs,
        stats.mean_alloc as f64 / BYTES_PER_MIB as f64,
        stats.small_allocs,
        gmlake_workload::to_gib(stats.peak_live_bytes),
    );
}

fn main() {
    println!("Figure 5: request-stream irregularity, GPT-NeoX-20B (8 iterations)\n");
    println!("paper: original 46k allocs @ 93 MB avg; +LR 76k allocs @ 85 MB avg\n");
    describe("original (N)", StrategySet::N);
    describe("+LR", StrategySet::LR);
    println!();

    // Per-iteration allocation-count series: the jaggedness the footprint
    // plots show comes from the allocation churn within each iteration.
    for strategies in [StrategySet::N, StrategySet::LR] {
        let cfg = TrainConfig::new(ModelSpec::gpt_neox_20b(), strategies)
            .with_batch(4)
            .with_iterations(4);
        let trace = TraceGenerator::new(cfg).generate();
        let mut per_iter = vec![0u64; 4];
        let mut idx = None;
        for ev in &trace.events {
            match *ev {
                gmlake_workload::TraceEvent::IterBegin { index } => idx = Some(index as usize),
                gmlake_workload::TraceEvent::IterEnd { .. } => idx = None,
                gmlake_workload::TraceEvent::Alloc { .. } => {
                    if let Some(i) = idx {
                        per_iter[i] += 1;
                    }
                }
                _ => {}
            }
        }
        println!(
            "allocs per iteration ({}): {per_iter:?}",
            strategies.label()
        );
    }
}
