//! **Figure 14** — memory trace over time: active and reserved memory of the
//! PyTorch caching allocator versus GMLake during GPT-NeoX-20B fine-tuning
//! (LR strategies, 4 GPUs) at a batch size near the baseline's OOM wall.
//!
//! Paper observations reproduced here:
//! 1. PyTorch terminates with OOM partway through, GMLake completes;
//! 2. both allocators track the same active-memory curve, but PyTorch's
//!    reserved memory is far above it (fragmentation) while GMLake's hugs it;
//! 3. after ~4 iterations GMLake stops stitching/splitting — the allocation
//!    pattern has converged and only exact matches remain.

use gmlake_caching::CachingAllocator;
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
use gmlake_workload::{
    ModelSpec, ReplayOptions, ReplayOutcome, Replayer, StrategySet, TraceGenerator, TrainConfig,
};

fn main() {
    let cfg = TrainConfig::new(ModelSpec::gpt_neox_20b(), StrategySet::LR)
        .with_seq_len(1024)
        .with_batch(72)
        .with_iterations(8);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let opts = ReplayOptions {
        record_series: true,
        series_stride: 64,
        ..ReplayOptions::default()
    };

    println!(
        "Figure 14: memory trace, GPT-NeoX-20B (LR) at batch {}\n",
        cfg.batch_size
    );

    // Baseline.
    let d1 = CudaDriver::new(DeviceConfig::a100_80g());
    let mut pt = CachingAllocator::new(d1.clone());
    let r_pt = Replayer::new(d1)
        .with_options(opts.clone())
        .replay(&mut pt, &trace, &cfg);

    // GMLake (built inline so allocator state can be inspected afterwards).
    let d2 = CudaDriver::new(DeviceConfig::a100_80g());
    let mut gml = GmLakeAllocator::new(d2.clone(), GmLakeConfig::default());
    let r_gml = Replayer::new(d2)
        .with_options(opts)
        .replay(&mut gml, &trace, &cfg);

    match r_pt.outcome {
        ReplayOutcome::Oom { iteration, .. } => println!(
            "PyTorch: OOM during iteration {iteration} at t = {:.1} s (paper: OOM ~200 s)",
            r_pt.sim_time_ns as f64 / 1e9
        ),
        ReplayOutcome::Completed => println!(
            "PyTorch: completed (peak reserved {:.1} GiB)",
            gmlake_workload::to_gib(r_pt.peak_reserved)
        ),
    }
    println!(
        "GMLake:  {} {} iterations, peak reserved {:.1} GiB, peak active {:.1} GiB",
        if r_gml.outcome.is_completed() {
            "completed"
        } else {
            "OOM after"
        },
        r_gml.iterations_completed,
        gmlake_workload::to_gib(r_gml.peak_reserved),
        gmlake_workload::to_gib(r_gml.peak_active),
    );
    let c = gml.state_counters();
    println!(
        "GMLake states: S1 exact {}, S2 single {}, S3 multi {}, S4 alloc {}, stitches {}, splits {}, evictions {}",
        c.exact, c.single, c.multi, c.insufficient, c.stitches, c.splits, c.evictions
    );
    println!("GMLake converged: {}\n", gml.is_converged());

    // The time series, as CSV (seconds, GiB).
    println!("csv: t_s,pt_active,pt_reserved,gml_active,gml_reserved");
    let to_row = |t_ns: u64, a: u64, r: u64| {
        (
            t_ns as f64 / 1e9,
            gmlake_workload::to_gib(a),
            gmlake_workload::to_gib(r),
        )
    };
    let max_len = r_pt.series.len().max(r_gml.series.len());
    for i in (0..max_len).step_by(max_len.div_ceil(60).max(1)) {
        let pt_s = r_pt.series.get(i.min(r_pt.series.len().saturating_sub(1)));
        let gml_s = r_gml
            .series
            .get(i.min(r_gml.series.len().saturating_sub(1)));
        match (pt_s, gml_s) {
            (Some(p), Some(g)) => {
                let (t, pa, pr) = to_row(p.t_ns, p.active, p.reserved);
                let (_, ga, gr) = to_row(g.t_ns, g.active, g.reserved);
                println!("{t:.1},{pa:.2},{pr:.2},{ga:.2},{gr:.2}");
            }
            (None, Some(g)) => {
                let (t, ga, gr) = to_row(g.t_ns, g.active, g.reserved);
                println!("{t:.1},OOM,OOM,{ga:.2},{gr:.2}");
            }
            _ => {}
        }
    }
}
