//! Perf snapshot for the PR 8 multi-tenant serving subsystem: alloc
//! latency tails and admission behaviour under tenant churn.
//!
//! One seeded [`ServingPlan`] (geometric arrivals, heterogeneous model
//! shards from the corpus, geometric lifetimes, per-step KV-cache-style
//! request churn) replayed through a [`ServingService`] over a GMLake
//! pool on a simulated A100-80G. The replayer wall-clocks every
//! allocation; the snapshot records the p50/p99/p999 tail, the admission
//! counters, and the end-of-run per-tenant fragmentation.
//!
//! Results are written as machine-readable `BENCH_PR8.json` (committed,
//! uploaded as a CI artifact) plus an uncommitted `serving_profile.json`
//! memory-profiler snapshot of the pool after the run. `bench_pr8
//! --check` re-runs the sweep and fails when serving *structurally*
//! regresses: peak concurrency below [`MIN_PEAK_TENANTS`] simultaneous
//! tenants, any device-level OOM leaking through the rescue ladder, or
//! an order-of-magnitude p99 rise against the committed snapshot; a p99
//! above [`WARN_REGRESSION`]× the snapshot only warns (host noise).

use gmlake_alloc_api::gib;
use gmlake_bench::report;
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
use gmlake_runtime::{DeviceId, MemoryProfiler, PoolService};
use gmlake_serving::{AdmissionPolicy, ServingConfig, ServingService};
use gmlake_workload::{ServingPlan, ServingReplayer, ServingReport, ServingWorkloadConfig};

use gmlake_alloc_api::mib;

/// Seed of the churn plan; fixed so CI replays the identical workload.
const SEED: u64 = 0x5E12_B008;
/// Service steps the plan spans.
const STEPS: u64 = 192;
/// Expected tenant arrivals per step.
const ARRIVALS_PER_STEP: f64 = 2.0;
/// Expected tenant lifetime in steps.
const MEAN_LIFETIME: u64 = 96;
/// The acceptance floor on peak simultaneous tenants: the subsystem must
/// sustain at least this much multiplexing on one device.
const MIN_PEAK_TENANTS: u64 = 100;
/// p99 drift against the committed snapshot that earns a warning; the
/// hard gate stays at [`report::MAX_REGRESSION`]×.
const WARN_REGRESSION: f64 = 2.0;

fn run_once() -> (ServingReport, String) {
    let driver = CudaDriver::new(DeviceConfig::a100_80g().with_backing(false));
    let service = PoolService::new();
    let pool = service
        .register(
            DeviceId(0),
            Box::new(GmLakeAllocator::new(
                driver,
                GmLakeConfig::default().with_frag_limit(mib(32)),
            )),
        )
        .expect("fresh service");
    let serving = ServingService::new(
        pool,
        ServingConfig::new(gib(80))
            .with_overcommit(1.5)
            .with_policy(AdmissionPolicy::Shed)
            .with_idle_after(8)
            .with_streams(4),
    );
    let plan = ServingPlan::generate(ServingWorkloadConfig {
        seed: SEED,
        steps: STEPS,
        arrivals_per_step: ARRIVALS_PER_STEP,
        mean_lifetime_steps: MEAN_LIFETIME,
        shard_range: (32, 128),
        requests_per_step: (1, 4),
    });
    let profiler = MemoryProfiler::new(&service);
    profiler.start();
    let report = ServingReplayer::new(plan).run(&serving);
    profiler.sample();
    let snapshot = profiler.dump().to_json();
    (report, snapshot)
}

fn render_json(r: &ServingReport) -> String {
    let s = r.latency_summary();
    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr8/v1\",\n");
    json.push_str(&format!(
        "  \"peak_tenants\": {},\n  \"offered\": {},\n  \"admitted\": {},\n  \
         \"departed\": {},\n  \"attempts\": {},\n",
        r.peak_tenants, r.offered, r.admitted, r.departed, r.attempts
    ));
    json.push_str(&format!(
        "  \"alloc_p50_ns\": {},\n  \"alloc_p99_ns\": {},\n  \"alloc_p999_ns\": {},\n  \
         \"alloc_mean_ns\": {:.0},\n",
        s.p50_ns, s.p99_ns, s.p999_ns, s.mean_ns
    ));
    json.push_str(&format!(
        "  \"quota_rejections\": {},\n  \"oom_failures\": {},\n  \
         \"mean_tenant_fragmentation\": {:.4},\n",
        r.quota_rejections, r.oom_failures, r.mean_tenant_fragmentation
    ));
    json.push_str(&format!(
        "  \"notes\": \"seeded serving churn plan (seed {SEED:#x}, {STEPS} steps, \
         ~{ARRIVALS_PER_STEP} arrivals/step, mean lifetime {MEAN_LIFETIME} steps, model \
         shards 1/32-1/128 of corpus fp16 footprints, 1-4 KV-style requests per tenant \
         per step) replayed through a ServingService (80 GiB, 1.5x overcommit, shed \
         policy, idle horizon 8 steps, 4 streams) over a GMLake pool on the simulated \
         A100-80G. Latencies are wall-clock per allocation attempt. Acceptance: \
         peak_tenants >= {MIN_PEAK_TENANTS}, oom_failures == 0\"\n}}\n"
    ));
    json
}

fn check_against(committed: &str, r: &ServingReport) -> Vec<String> {
    let mut failures = Vec::new();
    if r.peak_tenants < MIN_PEAK_TENANTS {
        failures.push(format!(
            "peak concurrent tenants fell to {} (floor {MIN_PEAK_TENANTS})",
            r.peak_tenants
        ));
    }
    if r.oom_failures > 0 {
        failures.push(format!(
            "{} device-level OOMs leaked through the tenant rescue ladder",
            r.oom_failures
        ));
    }
    let s = r.latency_summary();
    failures.extend(report::latency_guard(
        committed,
        "alloc_p99_ns",
        s.p99_ns as f64,
        "serving alloc p99 under churn",
    ));
    failures.extend(report::latency_guard(
        committed,
        "alloc_p999_ns",
        s.p999_ns as f64,
        "serving alloc p999 under churn",
    ));
    if let Some(baseline) = report::extract_field(committed, "alloc_p99_ns") {
        let p99 = s.p99_ns as f64;
        if p99 > baseline * WARN_REGRESSION && p99 <= baseline * report::MAX_REGRESSION {
            eprintln!(
                "warning: serving alloc p99 {p99:.0} ns is {:.1}x the committed snapshot \
                 ({baseline:.0} ns) — below the hard {:.0}x gate, likely host noise",
                p99 / baseline,
                report::MAX_REGRESSION
            );
        }
    }
    failures
}

fn main() {
    eprintln!(
        "serving churn sweep: {STEPS} steps, ~{ARRIVALS_PER_STEP} arrivals/step, \
         mean lifetime {MEAN_LIFETIME} steps"
    );
    let (report, profile) = run_once();
    let s = report.latency_summary();
    eprintln!(
        "  tenants: peak {} concurrent ({} offered, {} admitted, {} departed)",
        report.peak_tenants, report.offered, report.admitted, report.departed
    );
    eprintln!(
        "  alloc latency: p50 {:>7} ns, p99 {:>8} ns, p999 {:>8} ns over {} attempts \
         ({} quota rejections, {} OOMs)",
        s.p50_ns,
        s.p99_ns,
        s.p999_ns,
        report.attempts,
        report.quota_rejections,
        report.oom_failures
    );
    std::fs::write("serving_profile.json", &profile)
        .unwrap_or_else(|e| panic!("write serving_profile.json: {e}"));
    eprintln!("wrote serving_profile.json (uncommitted profiler artifact)");

    report::finish(
        "BENCH_PR8.json",
        || render_json(&report),
        |committed| check_against(committed, &report),
        || {
            format!(
                "peak {} tenants, alloc p99 {} ns / p999 {} ns, {} OOMs",
                report.peak_tenants, s.p99_ns, s.p999_ns, report.oom_failures
            )
        },
    );
}
