//! CI chaos soak: a fixed-seed fault-injection run with the full
//! telemetry stack attached, producing the fault-injection snapshot
//! artifact.
//!
//! Drives a `PoolService` GMLake pool through a mixed alloc/free churn
//! under a seeded 1-in-[`FAULT_ONE_IN`] probabilistic [`FaultPlan`], then
//! through a deterministic persistent `mem_map` outage that trips the
//! stitch circuit breaker and a recovery phase that closes it again. The
//! run fails (non-zero exit) if any recovery invariant breaks: an
//! allocation error the pipeline should have absorbed, a fault-journal
//! leak, a failed `validate()`, or a breaker that never tripped or never
//! recovered.
//!
//! Outputs (uploaded as the CI `chaos` job's artifact):
//!
//! * `chaos_soak.json` — summary counters: injected faults, service
//!   retry/rescue/breaker stats, and the core's fault journal;
//! * `chaos_profile.json` — the full telemetry [`MemorySnapshot`],
//!   whose event trace carries every `fault_injected`, `rescue_stage`
//!   and `breaker_trip` record of the run.
//!
//! [`MemorySnapshot`]: gmlake_telemetry::MemorySnapshot

use std::sync::Arc;

use gmlake_alloc_api::{mib, AllocError, AllocRequest, DeviceAllocator, DeviceAllocatorConfig};
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig, FaultOp, FaultPlan};
use gmlake_runtime::{DeviceId, FaultPolicy, MemoryProfiler, PoolService};
use gmlake_telemetry::PoolTelemetry;

/// Fixed seed of the probabilistic soak phase (deterministic schedule).
const SEED: u64 = 0x5EED_CAFE;
/// Soak fault rate: 1 in this many driver calls.
const FAULT_ONE_IN: u64 = 400;
/// Alloc/free pairs in the soak phase.
const SOAK_OPS: usize = 4_000;
/// `release_cached` burst cadence (keeps driver traffic in play).
const RELEASE_EVERY: usize = 64;
/// The churn sizes (MiB); all take the large split/stitch path.
const SIZES: [u64; 6] = [2, 6, 3, 12, 4, 8];

fn fail(msg: &str) -> ! {
    eprintln!("CHAOS FAILURE: {msg}");
    std::process::exit(1);
}

fn main() {
    // Short cooldown/backoff so the breaker's full open -> half-open ->
    // closed cycle fits in a quick CI run.
    let policy = FaultPolicy {
        max_retries: 3,
        backoff_us: 5,
        breaker_threshold: 3,
        breaker_cooldown: 16,
    };
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    let telemetry = Arc::new(PoolTelemetry::new().with_clock(Arc::new(driver.clone())));
    driver.set_telemetry(Arc::clone(&telemetry));
    let front = DeviceAllocator::try_build(
        Box::new(GmLakeAllocator::new(
            driver.clone(),
            GmLakeConfig::default().with_frag_limit(mib(2)),
        )),
        DeviceAllocatorConfig::default(),
        Some(Arc::new(driver.clone())),
        Some(telemetry),
    )
    .expect("default front-end config");
    let service = PoolService::with_fault_policy(policy);
    let pool = service
        .register_device(DeviceId(0), front)
        .expect("fresh service");
    let profiler = MemoryProfiler::new(&service);
    profiler.start();

    // Phase 1: probabilistic soak. Every fault the plan injects is either
    // absorbed by the service's retry pipeline or rolled back inside a
    // teardown (where the block simply stays cached).
    eprintln!("phase 1: soak, {SOAK_OPS} churn ops at 1-in-{FAULT_ONE_IN} faults (seed {SEED:#x})");
    driver.set_fault_plan(FaultPlan::new().with_probabilistic(SEED, FAULT_ONE_IN));
    let mut live = Vec::new();
    for i in 0..SOAK_OPS {
        if i % RELEASE_EVERY == 0 {
            pool.release_cached();
        }
        match pool.allocate(AllocRequest::new(mib(SIZES[i % SIZES.len()]))) {
            Ok(a) => live.push(a),
            Err(e) => fail(&format!("soak alloc escaped the retry pipeline: {e}")),
        }
        if live.len() > 8 {
            let victim = live.remove(0);
            for attempt in 0.. {
                match pool.deallocate(victim.id) {
                    Ok(()) => break,
                    Err(_) if attempt < 3 => continue,
                    Err(e) => fail(&format!("free kept faulting: {e}")),
                }
            }
        }
    }
    for a in live.drain(..) {
        let _ = pool.deallocate(a.id);
    }
    driver.clear_fault_plan();
    let soak_injected = driver.stats().injected_faults;
    if soak_injected == 0 {
        fail("soak injected nothing — the schedule is dead");
    }

    // Phase 2: persistent mem_map outage. Every large allocation now dies
    // even after retries; three consecutive surfaced faults trip the
    // breaker.
    eprintln!("phase 2: persistent mem_map outage trips the breaker");
    driver.set_fault_plan(FaultPlan::new().fail_from(FaultOp::Map, 1));
    match pool.allocate(AllocRequest::new(mib(10))) {
        Err(AllocError::DriverFault { .. }) => {}
        other => fail(&format!(
            "outage alloc should surface DriverFault, got {other:?}"
        )),
    }
    if !pool.fault_stats().breaker_open {
        fail("breaker still closed after a persistent outage");
    }

    // Phase 3: the outage clears; cooldown elapses over small churn and
    // the breaker re-probes, closes, and stitching serves again.
    eprintln!("phase 3: outage clears, breaker cools down and closes");
    driver.clear_fault_plan();
    for _ in 0..(policy.breaker_cooldown + 4) {
        match pool.allocate(AllocRequest::new(mib(4))) {
            Ok(a) => pool
                .deallocate(a.id)
                .unwrap_or_else(|e| fail(&e.to_string())),
            Err(e) => fail(&format!("post-outage alloc failed: {e}")),
        }
    }
    let stats = pool.fault_stats();
    if stats.breaker_open {
        fail("breaker never recovered after the outage cleared");
    }
    if stats.breaker_trips == 0 {
        fail("breaker trip was never counted");
    }

    // Final invariants straight from the core.
    let journal = pool.with_allocator(|core| {
        let lake = core
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<GmLakeAllocator>())
            .unwrap_or_else(|| fail("gmlake core downcast"));
        if let Err(e) = lake.validate() {
            fail(&format!("validate(): {e}"));
        }
        lake.fault_journal()
    });
    let injected = driver.stats().injected_faults;
    if journal.orphan_vas + journal.orphan_chunks > injected {
        fail(&format!(
            "journal claims more orphans than faults: {journal:?}"
        ));
    }

    profiler.stop();
    let snapshot = profiler.dump();
    let profile_json = snapshot.to_json();
    std::fs::write("chaos_profile.json", &profile_json)
        .unwrap_or_else(|e| fail(&format!("writing chaos_profile.json: {e}")));

    let summary = format!(
        "{{\n  \"schema\": \"gmlake-chaos-soak/v1\",\n  \"seed\": {SEED},\n  \
         \"fault_one_in\": {FAULT_ONE_IN},\n  \"soak_ops\": {SOAK_OPS},\n  \
         \"injected_faults\": {injected},\n  \"injected_faults_soak\": {soak_injected},\n  \
         \"service_faults\": {},\n  \"service_retries\": {},\n  \"breaker_trips\": {},\n  \
         \"breaker_open\": {},\n  \"rescues\": {},\n  \"journal_failed_ops\": {},\n  \
         \"journal_orphan_vas\": {},\n  \"journal_orphan_va_bytes\": {},\n  \
         \"journal_orphan_chunks\": {}\n}}\n",
        stats.faults,
        stats.retries,
        stats.breaker_trips,
        stats.breaker_open,
        stats.rescues,
        journal.failed_ops,
        journal.orphan_vas,
        journal.orphan_va_bytes,
        journal.orphan_chunks,
    );
    std::fs::write("chaos_soak.json", &summary)
        .unwrap_or_else(|e| fail(&format!("writing chaos_soak.json: {e}")));
    print!("{summary}");
    eprintln!(
        "chaos soak passed: {injected} faults injected, {} retried, breaker tripped {} time(s) \
         and recovered",
        stats.retries, stats.breaker_trips
    );
}
