//! Perf snapshot for the PR 2 hot-path rework: sweeps the `BestFit` pool
//! sizes, counts driver calls for a 1 GiB stitch, and emits the results as
//! machine-readable `BENCH_PR2.json` (committed to the repo, uploaded as a
//! CI artifact) so later PRs have a perf trajectory to compare against.
//!
//! Wall-clock numbers are host-dependent; the *ratios* (reference vs
//! indexed classification, per-chunk vs batched driver calls) are the
//! stable quantities.

use gmlake_alloc_api::{gib, mib, AllocRequest, AllocatorCore};
use gmlake_bench::perf::{sample_pool, ScalingSample};
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig};

/// Driver traffic of a 1 GiB stitched allocation built from two cached
/// 512 MiB blocks.
struct StitchCost {
    parts: u64,
    chunks: u64,
    map_calls: u64,
    create_calls: u64,
    sim_vmm_ns: u64,
}

fn stitch_1gib_driver_calls() -> StitchCost {
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    let a = lake.allocate(AllocRequest::new(mib(512))).expect("fits");
    let b = lake.allocate(AllocRequest::new(mib(512))).expect("fits");
    lake.deallocate(a.id).expect("live");
    lake.deallocate(b.id).expect("live");
    let before = driver.stats();
    let c = lake.allocate(AllocRequest::new(gib(1))).expect("stitches");
    let after = driver.stats();
    assert_eq!(c.size, gib(1));
    assert_eq!(
        lake.state_counters().stitches,
        1,
        "the 1 GiB alloc stitched"
    );
    StitchCost {
        parts: 2,
        chunks: gib(1) / driver.granularity(),
        map_calls: after.map.calls - before.map.calls,
        create_calls: after.create.calls - before.create.calls,
        sim_vmm_ns: after.vmm_time_ns() - before.vmm_time_ns(),
    }
}

fn main() {
    let sizes = [100usize, 1_000, 10_000, 100_000];
    eprintln!("sweeping pool sizes {sizes:?} (converged pools)...");
    let samples: Vec<ScalingSample> = sizes
        .iter()
        .map(|&n| {
            let s = sample_pool(n, 200);
            eprintln!(
                "  {:>7} blocks: alloc+free {:>9.1} ns, probe indexed {:>9.1} ns, \
                 reference {:>12.1} ns ({:.0}x)",
                s.pool_blocks,
                s.alloc_free_s1_ns,
                s.probe_indexed_ns,
                s.probe_reference_ns,
                s.speedup()
            );
            s
        })
        .collect();
    let stitch = stitch_1gib_driver_calls();
    eprintln!(
        "1 GiB stitch: {} mem_map calls for {} parts ({} chunks; per-chunk \
         mapping would cost {} calls)",
        stitch.map_calls, stitch.parts, stitch.chunks, stitch.chunks
    );

    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr2/v1\",\n");
    json.push_str("  \"pool_scaling\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"pool_blocks\": {}, \"alloc_free_s1_ns\": {:.1}, \
             \"probe_indexed_ns\": {:.1}, \"probe_reference_ns\": {:.1}, \
             \"reference_over_indexed\": {:.1}}}{}\n",
            s.pool_blocks,
            s.alloc_free_s1_ns,
            s.probe_indexed_ns,
            s.probe_reference_ns,
            s.speedup(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"stitch_1gib\": {{\"parts\": {}, \"chunks\": {}, \
         \"mem_map_calls\": {}, \"mem_create_calls\": {}, \
         \"per_chunk_equivalent_map_calls\": {}, \"sim_vmm_ns\": {}}},\n",
        stitch.parts,
        stitch.chunks,
        stitch.map_calls,
        stitch.create_calls,
        stitch.chunks,
        stitch.sim_vmm_ns
    ));
    json.push_str(
        "  \"notes\": \"converged pools (all inactive pBlocks woven into \
         available sBlocks); probe = S3 BestFit classification; reference = \
         retained pre-index implementation on identical state\"\n}\n",
    );
    std::fs::write("BENCH_PR2.json", &json).expect("write BENCH_PR2.json");
    println!("{json}");
    eprintln!("wrote BENCH_PR2.json");
}
