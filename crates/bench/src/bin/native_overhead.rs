//! **§2.2 claim** — throughput of the native `cudaMalloc`/`cudaFree`
//! allocator versus the caching allocator versus GMLake.
//!
//! Paper: disabling the PyTorch caching allocator on OPT-1.3B (4×A100)
//! cuts throughput by 9.7×; GMLake matches the caching allocator once its
//! allocation pattern converges.

use gmlake_bench::{rule, run_single, Allocator};
use gmlake_workload::{ModelSpec, ReplayOptions, StrategySet, TrainConfig};

fn main() {
    println!("Native-allocator overhead (OPT-1.3B, R, 4 GPUs, batch 8)\n");
    let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::R).with_iterations(4);
    let opts = ReplayOptions::default();
    println!(
        "{:<18} {:>12} {:>14} {:>14}",
        "allocator", "samples/s", "alloc time ms", "sim time s"
    );
    rule(62);
    let mut caching_thr = 0.0;
    for (name, which) in [
        ("caching (PyTorch)", Allocator::Caching),
        ("gmlake", Allocator::GmLake),
        ("native", Allocator::Native),
    ] {
        let r = run_single(&cfg, which, &opts);
        if which == Allocator::Caching {
            caching_thr = r.throughput;
        }
        println!(
            "{name:<18} {:>12.2} {:>14.1} {:>14.2}",
            r.throughput,
            r.allocator_ns as f64 / 1e6,
            r.sim_time_ns as f64 / 1e9,
        );
    }
    let native = run_single(&cfg, Allocator::Native, &opts);
    println!(
        "\ncaching vs native: {:.1}x faster (paper: 9.7x; our additive stall model is conservative)",
        caching_thr / native.throughput
    );
}
