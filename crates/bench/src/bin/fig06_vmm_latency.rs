//! **Figure 6** — allocation latency of the native allocator versus the
//! virtual-memory allocator, by internal chunk size (2 MB … 1 GB), for
//! total block sizes of 512 MB, 1 GB and 2 GB.
//!
//! Paper: with 2 MB chunks the VMM path is ~115× slower than `cudaMalloc`
//! (the "115x" annotation); the gap closes to ~1.5× at 1 GB chunks.
//!
//! Two measurements are reported here:
//! 1. the analytic cost-model curve (exactly what the calibrated model
//!    predicts), and
//! 2. an *executed* measurement: the driver actually performs the
//!    reserve/create/map/set-access sequence and the simulated clock is
//!    read back — verifying that the executable path matches the model.

use gmlake_alloc_api::{gib, mib};
use gmlake_gpu_sim::{figure6_chunk_sizes, CostModel, CudaDriver, DeviceConfig};

/// Executes a VMM block allocation on a fresh device and returns the
/// simulated nanoseconds it took.
fn executed_vmm_ns(block: u64, chunk: u64) -> u64 {
    let driver = CudaDriver::new(DeviceConfig::a100_80g().with_cost(CostModel::calibrated()));
    let t0 = driver.now_ns();
    let va = driver.mem_address_reserve(block).unwrap();
    let chunks = block / chunk;
    let mut handles = Vec::new();
    for i in 0..chunks {
        let h = driver.mem_create(chunk).unwrap();
        driver.mem_map(va.offset(i * chunk), chunk, 0, h).unwrap();
        handles.push(h);
    }
    driver.mem_set_access(va, block, true).unwrap();
    driver.now_ns() - t0
}

fn main() {
    let model = CostModel::calibrated();
    let blocks = [gib(1) / 2, gib(1), gib(2)];
    println!("Figure 6: allocation latency, native vs VMM by chunk size");
    println!("(normalized units: cudaMalloc(2 GiB) = 1.0 = 1 ms simulated)\n");

    print!("{:<12}", "chunk");
    for b in blocks {
        print!("{:>12}", format!("{}MB blk", b / mib(1)));
    }
    println!("{:>14}", "executed(2G)");
    println!("{}", "-".repeat(12 + 12 * blocks.len() + 14));

    // Native baseline row (one latency per block size).
    print!("{:<12}", "native");
    for b in blocks {
        print!("{:>12.3}", model.native_alloc_norm(b));
    }
    println!("{:>14}", "-");

    for chunk in figure6_chunk_sizes() {
        print!("{:<12}", format!("{}MB", chunk / mib(1)));
        for b in blocks {
            if chunk > b {
                print!("{:>12}", "-");
                continue;
            }
            print!("{:>12.3}", model.vmm_block_alloc_norm(b, chunk));
        }
        // Executed verification for the 2 GiB block.
        let ns = executed_vmm_ns(gib(2), chunk);
        println!("{:>14.3}", ns as f64 / 1_000_000.0);
    }

    let ratio = model.vmm_block_alloc_norm(gib(2), mib(2)) / model.native_alloc_norm(gib(2));
    println!("\n2 GiB block from 2 MB chunks vs native: {ratio:.1}x slower (paper: 115x)");
}
