//! Perf snapshot for the PR 9 concurrent large/stitch path: sweeps warm
//! *large*-allocation throughput (4 MiB — above the 2 MiB stitch
//! threshold, i.e. the traffic GMLake exists for) over 1/2/4/8 threads in
//! three shapes, all over the same GMLake core on a zero-cost device:
//!
//! * **mutex** — `max_cached_large_per_bank = 0`: the pre-PR 9 layout,
//!   every large allocation round-tripping the single core mutex
//!   regardless of stream — the in-process baseline;
//! * **large_route** — 8 per-stream large banks, thread *t* allocating and
//!   freeing on `StreamId(t)`: warm exact-size reuse from the thread's own
//!   bank, the core mutex reduced to a commit-time lock for misses;
//! * **cross_stream** — 8 banks, thread *t* allocating on `StreamId(t)`
//!   but freeing on `StreamId(t + 1)`: every free takes the large-path
//!   event guard (record on the freeing stream, park, promote), the
//!   machinery that lets a stitched view freed on stream A be re-served to
//!   stream B once its event completes.
//!
//! Results are written as machine-readable `BENCH_PR9.json` (committed,
//! uploaded as a CI artifact; the committed snapshot records the 8-thread
//! large-route path at ≥ 3x the mutex baseline). `bench_pr9 --check`
//! re-runs the sweep (best of three per point) and fails when the large
//! route *structurally* regresses: an 8-thread large-route/mutex ratio
//! below [`MIN_LARGE_OVER_MUTEX_8T`] fails the gate, ratios between it and
//! [`WARN_LARGE_OVER_MUTEX_8T`] warn once with the measured best-of-3
//! values (folded into the JSON report so the CI artifact records them),
//! and order-of-magnitude drops against the committed snapshot fail as in
//! the other gates.

use std::time::Instant;

use gmlake_alloc_api::{AllocRequest, DeviceAllocator, StreamId};
use gmlake_bench::perf::{large_pool, LARGE_SWEEP_SIZE};
use gmlake_bench::report;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OPS_PER_THREAD: usize = 10_000;
/// Repetitions per measurement point; the best run is kept (see
/// `bench_pr4` for the rationale).
const REPS: usize = 3;
/// Stream banks of the large-route pools (covers the widest sweep point).
const STREAMS: usize = 8;
/// Same-process large-route/mutex floor for `--check` at 8 threads: below
/// [`WARN_LARGE_OVER_MUTEX_8T`] only warns (oversubscribed runners), below
/// this the bank route is structurally slower than the single mutex it
/// replaces and the gate fails.
const MIN_LARGE_OVER_MUTEX_8T: f64 = 1.0;
/// Warn threshold: the acceptance target is 3x, but a machine with fewer
/// cores than sweep threads cannot show real parallel speedup, so the gate
/// only demands 2x before warning instead of failing.
const WARN_LARGE_OVER_MUTEX_8T: f64 = 2.0;

/// How each worker maps itself onto streams and which pool shape it runs.
#[derive(Clone, Copy)]
enum Shape {
    /// Pre-PR 9 baseline: large banks disabled, everything on the mutex.
    Mutex,
    /// Thread t lives entirely on StreamId(t), banks enabled.
    LargeRoute,
    /// Thread t allocates on StreamId(t), frees on StreamId(t + 1).
    CrossStream,
}

impl Shape {
    fn pool(self) -> DeviceAllocator {
        match self {
            Shape::Mutex => large_pool(STREAMS, 0),
            Shape::LargeRoute | Shape::CrossStream => large_pool(STREAMS, 32),
        }
    }

    fn streams(self, t: usize) -> (StreamId, StreamId) {
        match self {
            Shape::Mutex | Shape::LargeRoute => (StreamId(t as u32), StreamId(t as u32)),
            Shape::CrossStream => (StreamId(t as u32), StreamId(t as u32 + 1)),
        }
    }
}

/// Best of [`REPS`] runs of [`measure_once`].
fn measure(threads: usize, shape: Shape) -> f64 {
    (0..REPS)
        .map(|_| measure_once(&shape.pool(), threads, shape))
        .fold(0.0, f64::max)
}

/// Runs `threads` workers, each doing `OPS_PER_THREAD` warm large
/// alloc/free cycles under `shape`'s stream mapping; returns aggregate
/// operations (one alloc + one free = 2 ops) per second.
fn measure_once(pool: &DeviceAllocator, threads: usize, shape: Shape) -> f64 {
    // Warm every thread's bank slot (and, for the mutex shape, the core's
    // inactive pool) so the sweep measures the steady state.
    for t in 0..threads {
        let (alloc_stream, free_stream) = shape.streams(t);
        let a = pool
            .alloc_on_stream(AllocRequest::new(LARGE_SWEEP_SIZE), alloc_stream)
            .unwrap();
        pool.free_on_stream(a.id, free_stream).unwrap();
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = pool.clone();
            s.spawn(move || {
                let (alloc_stream, free_stream) = shape.streams(t);
                for _ in 0..OPS_PER_THREAD {
                    let a = pool
                        .alloc_on_stream(AllocRequest::new(LARGE_SWEEP_SIZE), alloc_stream)
                        .unwrap();
                    pool.free_on_stream(a.id, free_stream).unwrap();
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads * OPS_PER_THREAD * 2) as f64 / secs
}

struct SweepPoint {
    threads: usize,
    mutex_ops_per_sec: f64,
    large_route_ops_per_sec: f64,
    cross_stream_ops_per_sec: f64,
}

impl SweepPoint {
    fn large_over_mutex(&self) -> f64 {
        self.large_route_ops_per_sec / self.mutex_ops_per_sec
    }
}

fn run_sweep() -> Vec<SweepPoint> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let point = SweepPoint {
                threads,
                mutex_ops_per_sec: measure(threads, Shape::Mutex),
                large_route_ops_per_sec: measure(threads, Shape::LargeRoute),
                cross_stream_ops_per_sec: measure(threads, Shape::CrossStream),
            };
            eprintln!(
                "  {threads} thread(s): mutex {:>12.0} ops/s, large-route {:>12.0} ops/s \
                 ({:.1}x), cross-stream {:>12.0} ops/s",
                point.mutex_ops_per_sec,
                point.large_route_ops_per_sec,
                point.large_over_mutex(),
                point.cross_stream_ops_per_sec,
            );
            point
        })
        .collect()
}

fn render_json(sweep: &[SweepPoint], warnings: &[String]) -> String {
    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr9/v1\",\n");
    json.push_str(&report::warnings_json(warnings));
    json.push_str("  \"large_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"mutex_ops_per_sec\": {:.0}, \
             \"large_route_ops_per_sec\": {:.0}, \"cross_stream_ops_per_sec\": {:.0}, \
             \"large_over_mutex\": {:.2}}}{}\n",
            p.threads,
            p.mutex_ops_per_sec,
            p.large_route_ops_per_sec,
            p.cross_stream_ops_per_sec,
            p.large_over_mutex(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let eight = sweep.last().expect("sweep is non-empty");
    json.push_str(&format!(
        "  \"large_over_mutex_8t\": {:.2},\n",
        eight.large_over_mutex()
    ));
    json.push_str(
        "  \"notes\": \"warm 4 MiB (above-stitch-threshold) alloc+free cycles through a \
         shared GMLake pool on a zero-cost device; mutex = large banks disabled \
         (max_cached_large_per_bank 0, the pre-PR 9 single-mutex layout); large_route = 8 \
         per-stream large banks, thread t on StreamId(t); cross_stream = alloc on \
         StreamId(t) / free on StreamId(t+1), every free taking the large-path event \
         guard\"\n}\n",
    );
    json
}

/// Compares a freshly measured sweep against the committed snapshot;
/// returns `(hard failures, warnings)`.
fn check_against(committed: &str, sweep: &[SweepPoint]) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let eight = sweep.last().expect("sweep is non-empty");
    // Same-process acceptance: at 8 threads the per-stream large banks
    // must beat the single mutex they replace.
    if eight.large_over_mutex() < MIN_LARGE_OVER_MUTEX_8T {
        failures.push(format!(
            "8-thread large-route throughput fell below the mutex baseline ({:.2}x, floor \
             {MIN_LARGE_OVER_MUTEX_8T}x)",
            eight.large_over_mutex()
        ));
    } else if eight.large_over_mutex() < WARN_LARGE_OVER_MUTEX_8T {
        warnings.push(format!(
            "8-thread large-route/mutex ratio {:.2}x is below the {WARN_LARGE_OVER_MUTEX_8T}x \
             target (best of {REPS}: large-route {:.0} ops/s vs mutex {:.0} ops/s) — too few \
             cores for real 8-way parallelism on this runner?",
            eight.large_over_mutex(),
            eight.large_route_ops_per_sec,
            eight.mutex_ops_per_sec,
        ));
    }
    // First sweep entry in the snapshot is the 1-thread point; compare the
    // same-shape quantity: current 1-thread large-route throughput.
    failures.extend(report::throughput_guard(
        committed,
        "large_route_ops_per_sec",
        sweep[0].large_route_ops_per_sec,
        "1-thread large-route throughput",
        "ops/s",
    ));
    (failures, warnings)
}

fn main() {
    eprintln!("large-path sweep, {OPS_PER_THREAD} alloc/free cycles per thread:");
    let sweep = run_sweep();

    report::finish_with_warnings(
        "BENCH_PR9.json",
        |warnings| render_json(&sweep, warnings),
        |committed| check_against(committed, &sweep),
        || {
            let eight = sweep.last().unwrap();
            format!(
                "8-thread large-route/mutex {:.2}x, cross-stream {:.0} ops/s",
                eight.large_over_mutex(),
                eight.cross_stream_ops_per_sec
            )
        },
    );
}
