//! **Ablation** — PyTorch's own fragmentation mitigation
//! (`PYTORCH_CUDA_ALLOC_CONF=max_split_size_mb:N`) versus GMLake.
//!
//! The knob forbids splitting blocks above a threshold, trading internal
//! waste for fewer stranded remainders. The paper positions GMLake as the
//! transparent alternative; this sweep shows how far the knob gets and where
//! stitching still wins.

use gmlake_alloc_api::mib;
use gmlake_bench::{fmt_gib, fmt_pct, rule, run_with};
use gmlake_caching::{BfcConfig, CachingAllocator};
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_workload::{ModelSpec, StrategySet, TrainConfig};

fn main() {
    println!("Ablation: PyTorch max_split_size_mb vs GMLake (OPT-13B, LR, batch 8)\n");
    println!("{:<26} {:>9} {:>8}", "allocator", "RM(GiB)", "UR");
    rule(46);
    let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR).with_batch(8);

    let default = run_with(&cfg, CachingAllocator::new);
    println!(
        "{:<26} {:>9} {:>8}",
        "caching (default)",
        fmt_gib(default.peak_reserved),
        fmt_pct(default.utilization())
    );
    for max_mb in [64u64, 128, 256, 512] {
        let bfc_cfg = BfcConfig {
            max_split_size: Some(mib(max_mb)),
            ..BfcConfig::default()
        };
        let r = run_with(&cfg, |d| CachingAllocator::with_config(d, bfc_cfg));
        println!(
            "{:<26} {:>9} {:>8}",
            format!("caching (max_split {max_mb}M)"),
            fmt_gib(r.peak_reserved),
            fmt_pct(r.utilization())
        );
    }
    let gml = run_with(&cfg, |d| GmLakeAllocator::new(d, GmLakeConfig::default()));
    println!(
        "{:<26} {:>9} {:>8}",
        "gmlake",
        fmt_gib(gml.peak_reserved),
        fmt_pct(gml.utilization())
    );
    println!("\nmax_split_size trades split fragmentation for internal waste;");
    println!("stitching removes the trade-off (paper §6, related work).");
}
