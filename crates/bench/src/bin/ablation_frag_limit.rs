//! **Ablation** — the fragmentation-limit knob (§4.2.3 of the paper).
//!
//! A higher limit protects efficiency on real hardware (fewer blocks to
//! split/stitch, fewer sBlock parts for `BestFit` to scan) but increases
//! internal waste, because blocks whose remainder falls below the limit are
//! handed out whole and small leftovers are excluded from stitching. The
//! paper quotes 128 MB as an example setting; this sweep quantifies the
//! trade-off on the simulator.

use gmlake_alloc_api::mib;
use gmlake_bench::{fmt_gib, fmt_pct, rule};
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
use gmlake_workload::{ModelSpec, Replayer, StrategySet, TraceGenerator, TrainConfig};

fn main() {
    println!("Ablation: GMLake fragmentation limit (OPT-13B, LR, 4 GPUs, batch 4)\n");
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "limit", "RM(GiB)", "UR", "stitches", "splits", "sblocks", "vmm-ms"
    );
    rule(74);
    let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR).with_batch(4);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    for limit_mib in [2u64, 4, 8, 16, 32, 64, 128, 256] {
        let driver = CudaDriver::new(DeviceConfig::a100_80g());
        let mut lake = GmLakeAllocator::new(
            driver.clone(),
            GmLakeConfig::default().with_frag_limit(mib(limit_mib)),
        );
        let report = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
        let c = lake.state_counters();
        println!(
            "{:<10} {:>8} {:>8} {:>10} {:>10} {:>10} {:>12.1}",
            format!("{limit_mib} MiB"),
            fmt_gib(report.peak_reserved),
            fmt_pct(report.utilization()),
            c.stitches,
            c.splits,
            lake.sblock_count(),
            driver.stats().vmm_time_ns() as f64 / 1e6,
        );
    }
    println!("\nlower limit -> tighter packing (higher UR) but more stitch/split work;");
    println!("higher limit -> fewer operations but growing internal waste.");
}
