//! Perf snapshot for the PR 3 concurrent-first allocator API: sweeps the
//! shared-pool small-allocation path over 1/2/4/8 threads, comparing the
//! sharded `DeviceAllocator` fast path against the retired single-mutex
//! design (a `DeviceAllocator` with the fast path disabled — every call
//! funnels through the core mutex, exactly like the old `SharedAllocator`),
//! and re-samples the PR 2 `BestFit` probe so the scaling trend stays
//! monitored. Results are written as machine-readable `BENCH_PR3.json`
//! (committed to the repo, uploaded as a CI artifact).
//!
//! `bench_pr3 --check` re-runs the sweep and compares it against the
//! committed snapshot, failing on order-of-magnitude regressions in either
//! the contention throughput or the `bestfit_scaling` probe — the CI
//! perf-trajectory gate.
//!
//! Wall-clock numbers are host-dependent; the stable quantities are the
//! *ratios* (sharded vs mutex at each thread count) and the order of
//! magnitude of the absolute throughputs.

use std::time::Instant;

use gmlake_alloc_api::{AllocRequest, DeviceAllocator};
use gmlake_bench::perf::{contention_pool, contention_thread_size, sample_pool};
use gmlake_bench::report;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OPS_PER_THREAD: usize = 20_000;
/// Pool size for the re-sampled PR 2 BestFit probe.
const PROBE_POOL_BLOCKS: usize = 10_000;
/// Acceptance floor: sharded 8-thread small-alloc throughput over the
/// single-mutex baseline. Below it `--check` *warns* (wall-clock ratios on
/// shared CI runners are noisy); CI only fails when the sharded path is
/// outright slower than the mutex baseline — machine-independent evidence
/// the fast path is broken.
const MIN_SPEEDUP_8T: f64 = 3.0;

/// Runs `threads` workers, each doing `OPS_PER_THREAD` small alloc/free
/// cycles; returns aggregate operations (one alloc + one free = 2 ops) per
/// second.
fn measure(pool: &DeviceAllocator, threads: usize) -> f64 {
    // Warm every thread's size class so the sweep measures the steady
    // state, not the first-touch core misses.
    for t in 0..threads {
        let a = pool
            .allocate(AllocRequest::new(contention_thread_size(t)))
            .unwrap();
        pool.deallocate(a.id).unwrap();
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = pool.clone();
            s.spawn(move || {
                let size = contention_thread_size(t);
                for _ in 0..OPS_PER_THREAD {
                    let a = pool.allocate(AllocRequest::new(size)).unwrap();
                    pool.deallocate(a.id).unwrap();
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads * OPS_PER_THREAD * 2) as f64 / secs
}

struct SweepPoint {
    threads: usize,
    mutex_ops_per_sec: f64,
    sharded_ops_per_sec: f64,
}

impl SweepPoint {
    fn speedup(&self) -> f64 {
        self.sharded_ops_per_sec / self.mutex_ops_per_sec
    }
}

fn run_sweep() -> Vec<SweepPoint> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let mutex_ops_per_sec = measure(&contention_pool(false), threads);
            let sharded_ops_per_sec = measure(&contention_pool(true), threads);
            let point = SweepPoint {
                threads,
                mutex_ops_per_sec,
                sharded_ops_per_sec,
            };
            eprintln!(
                "  {threads} thread(s): mutex {:>12.0} ops/s, sharded {:>12.0} ops/s ({:.1}x)",
                point.mutex_ops_per_sec,
                point.sharded_ops_per_sec,
                point.speedup()
            );
            point
        })
        .collect()
}

fn render_json(sweep: &[SweepPoint], probe_indexed_ns: f64, alloc_free_ns: f64) -> String {
    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr3/v1\",\n");
    json.push_str("  \"contention_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"mutex_ops_per_sec\": {:.0}, \
             \"sharded_ops_per_sec\": {:.0}, \"sharded_over_mutex\": {:.2}}}{}\n",
            p.threads,
            p.mutex_ops_per_sec,
            p.sharded_ops_per_sec,
            p.speedup(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let eight = sweep.last().expect("sweep is non-empty");
    json.push_str(&format!(
        "  \"speedup_8t\": {:.2},\n  \"bestfit_probe\": {{\"pool_blocks\": {}, \
         \"probe_indexed_ns\": {:.1}, \"alloc_free_s1_ns\": {:.1}}},\n",
        eight.speedup(),
        PROBE_POOL_BLOCKS,
        probe_indexed_ns,
        alloc_free_ns
    ));
    json.push_str(
        "  \"notes\": \"small-alloc (8 KiB..1 MiB, one size class per thread) \
         alloc+free cycles through a shared pool; mutex = DeviceAllocator with \
         the fast path disabled (the retired SharedAllocator design); sharded \
         = default DeviceAllocator; bestfit_probe re-samples the PR 2 S3 \
         classification on a converged pool\"\n}\n",
    );
    json
}

/// Compares a freshly measured sweep against the committed snapshot.
/// Returns the hard failures (empty = pass); sub-floor but still-faster
/// speedups only warn, since cross-machine wall-clock ratios are noisy.
fn check_against(committed: &str, sweep: &[SweepPoint], probe_indexed_ns: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let eight = sweep.last().expect("sweep is non-empty");
    if eight.speedup() < 1.0 {
        // Machine-independent: the sharded fast path must never lose to
        // the single mutex it replaced.
        failures.push(format!(
            "8-thread sharded path is SLOWER than the single-mutex baseline ({:.2}x)",
            eight.speedup()
        ));
    } else if eight.speedup() < MIN_SPEEDUP_8T {
        eprintln!(
            "warning: 8-thread sharded speedup {:.2}x is below the {MIN_SPEEDUP_8T}x floor \
             recorded in the snapshot (noisy runner?)",
            eight.speedup()
        );
    }
    // First sweep entry in the snapshot is the 1-thread point; compare
    // the same-shape quantity: current 1-thread sharded throughput.
    failures.extend(report::throughput_guard(
        committed,
        "sharded_ops_per_sec",
        sweep[0].sharded_ops_per_sec,
        "1-thread sharded throughput",
        "ops/s",
    ));
    failures.extend(report::latency_guard(
        committed,
        "probe_indexed_ns",
        probe_indexed_ns,
        "bestfit_scaling probe",
    ));
    failures
}

fn main() {
    eprintln!("contention sweep, {OPS_PER_THREAD} alloc/free cycles per thread:");
    let sweep = run_sweep();
    eprintln!("re-sampling BestFit probe at {PROBE_POOL_BLOCKS} blocks...");
    let probe = sample_pool(PROBE_POOL_BLOCKS, 200);

    report::finish(
        "BENCH_PR3.json",
        || render_json(&sweep, probe.probe_indexed_ns, probe.alloc_free_s1_ns),
        |committed| check_against(committed, &sweep, probe.probe_indexed_ns),
        || {
            let eight = sweep.last().unwrap();
            format!(
                "8-thread sharded speedup {:.2}x, probe {:.1} ns",
                eight.speedup(),
                probe.probe_indexed_ns
            )
        },
    );
}
