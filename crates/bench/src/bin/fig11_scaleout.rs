//! **Figure 11** — GPU scale-out (1/2/4/8/16 GPUs) with the LR strategy:
//! reserved memory + utilization (a–c) and throughput (d–f) for OPT-13B,
//! Vicuna-13B and GPT-NeoX-20B, with and without GMLake.
//!
//! Paper: GMLake keeps utilization ≈90% as the baseline degrades with GPU
//! count (up to 23% / 17 GB on GPT-NeoX-20B), at indistinguishable
//! throughput.
//!
//! This reproduction runs the ranks *concurrently* through the
//! `gmlake-runtime` pool service — one OS thread per simulated device (up
//! to 4 replayed ranks; data-parallel ranks beyond that are statistical
//! mirrors) — and adds the runtime's contribution on top of the paper's
//! figure: a periodic `DefragScheduler` supervising the baseline fleet,
//! whose proactive compaction hands back the idle caches a plain caching
//! fleet keeps reserved to the end.

//! `fig11_scaleout --profile <out.json>` skips the full sweep and instead
//! replays a small profiled fleet (OPT-1.3B, 2 ranks) with the whole
//! telemetry stack attached, writing the memory-timeline snapshot to
//! `<out.json>` and the chrome://tracing export next to it
//! (`<out>.trace.json`); the snapshot is self-validated against the
//! `gmlake-snapshot/v1` schema before the binary exits 0.

use gmlake_bench::{fmt_gib, fmt_pct, rule, run_scaleout, run_scaleout_profiled, Allocator};
use gmlake_runtime::DefragScheduler;
use gmlake_telemetry::MemorySnapshot;
use gmlake_workload::{ModelSpec, ScaleoutReport, StrategySet, TrainConfig};

fn fmt_rm(report: &ScaleoutReport) -> String {
    if report.all_completed() {
        fmt_gib(report.max_peak_reserved())
    } else {
        "   OOM".to_owned()
    }
}

/// The `--profile <out.json>` mode: a small profiled replay whose snapshot
/// is written, exported as a chrome trace, and schema-validated.
fn run_profile(out: &str) {
    let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_batch(16)
        .with_gpus(2)
        .with_iterations(3);
    eprintln!("profiled replay: OPT-1.3B, LR, 2 ranks, 3 iterations");
    let (report, snapshot) = run_scaleout_profiled(&cfg, 2);
    if !report.all_completed() {
        eprintln!("profiled replay did not complete on every rank");
        std::process::exit(1);
    }

    let json = snapshot.to_json();
    if let Err(e) = MemorySnapshot::validate_json(&json) {
        eprintln!(
            "snapshot failed {} validation: {e}",
            gmlake_telemetry::SCHEMA
        );
        std::process::exit(1);
    }
    std::fs::write(out, &json).expect("write snapshot");
    let trace_path = format!("{}.trace.json", out.strip_suffix(".json").unwrap_or(out));
    std::fs::write(&trace_path, snapshot.to_chrome_trace()).expect("write chrome trace");

    for pool in &snapshot.pools {
        eprintln!(
            "  {}: {} timeline points, {} events, final reserved {}",
            pool.pool,
            pool.samples.len(),
            pool.events.len(),
            fmt_gib(pool.final_reserved).trim()
        );
    }
    println!(
        "wrote {out} (validated against {}) and {trace_path}",
        gmlake_telemetry::SCHEMA
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(at) = args.iter().position(|a| a == "--profile") {
        let out = args.get(at + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("usage: fig11_scaleout --profile <out.json>");
            std::process::exit(2);
        });
        run_profile(out);
        return;
    }
    println!("Figure 11: GPU scale-out under LR, w/ and w/o GMLake (batch 16)");
    println!("ranks replay concurrently through the gmlake-runtime PoolService;");
    println!("end-RM = memory still reserved per rank after the run\n");
    let models = [
        ModelSpec::opt_13b(),
        ModelSpec::vicuna_13b(),
        ModelSpec::gpt_neox_20b(),
    ];
    for model in models {
        println!("model: {}", model.name);
        println!(
            "{:<6} {:>7} {:>7} {:>9} {:>8}   {:>7} {:>7} {:>9} {:>8}   {:>8} {:>9}",
            "gpus",
            "RM-pt",
            "UR-pt",
            "thr-pt",
            "drv-pt",
            "RM-gml",
            "UR-gml",
            "thr-gml",
            "drv-gml",
            "end-pt",
            "end+defrg"
        );
        rule(102);
        for gpus in [1u32, 2, 4, 8, 16] {
            let cfg = TrainConfig::new(model.clone(), StrategySet::LR)
                .with_batch(16)
                .with_gpus(gpus);
            let ranks = gpus.min(4);
            let baseline = run_scaleout(&cfg, ranks, Allocator::Caching, None);
            let defragged = run_scaleout(
                &cfg,
                ranks,
                Allocator::Caching,
                Some(DefragScheduler::periodic(2)),
            );
            let gmlake = run_scaleout(&cfg, ranks, Allocator::GmLake, None);
            println!(
                "{gpus:<6} {:>7} {:>7} {:>9.1} {:>8.0}   {:>7} {:>7} {:>9.1} {:>8.0}   {:>8} {:>9}",
                fmt_rm(&baseline),
                fmt_pct(baseline.mean_utilization()),
                baseline.fleet_throughput(),
                baseline.mean_driver_calls(),
                fmt_rm(&gmlake),
                fmt_pct(gmlake.mean_utilization()),
                gmlake.fleet_throughput(),
                gmlake.mean_driver_calls(),
                fmt_gib(baseline.total_final_reserved() / ranks as u64),
                fmt_gib(defragged.total_final_reserved() / ranks as u64),
            );
        }
        println!();
    }
    println!("end-RM columns: the periodic DefragScheduler (every 2 iterations)");
    println!("compacts each pool at iteration boundaries, so the supervised fleet");
    println!("ends holding less reserved memory than the unsupervised one.");
    println!();
    println!("drv-* columns: mean per-rank driver calls (lock round-trips).");
    println!("GMLake's stitching traffic rides the batched VMM entry points");
    println!("(mem_create_batch / mem_map_range), so a whole multi-chunk stitch");
    println!("costs one map call per part instead of one per 2 MiB chunk.");
}
