//! **Figure 11** — GPU scale-out (1/2/4/8/16 GPUs) with the LR strategy:
//! reserved memory + utilization (a–c) and throughput (d–f) for OPT-13B,
//! Vicuna-13B and GPT-NeoX-20B, with and without GMLake.
//!
//! Paper: GMLake keeps utilization ≈90% as the baseline degrades with GPU
//! count (up to 23% / 17 GB on GPT-NeoX-20B), at indistinguishable
//! throughput.

use gmlake_bench::{fmt_pct, fmt_reserved, rule, run_pair};
use gmlake_workload::{ModelSpec, StrategySet, TrainConfig};

fn main() {
    println!("Figure 11: GPU scale-out under LR, w/ and w/o GMLake (batch 16)\n");
    let models = [
        ModelSpec::opt_13b(),
        ModelSpec::vicuna_13b(),
        ModelSpec::gpt_neox_20b(),
    ];
    for model in models {
        println!("model: {}", model.name);
        println!(
            "{:<6} {:>7} {:>7} {:>9}   {:>7} {:>7} {:>9}",
            "gpus", "RM-pt", "UR-pt", "thr-pt", "RM-gml", "UR-gml", "thr-gml"
        );
        rule(62);
        for gpus in [1u32, 2, 4, 8, 16] {
            let cfg = TrainConfig::new(model.clone(), StrategySet::LR)
                .with_batch(16)
                .with_gpus(gpus);
            let pair = run_pair(&cfg);
            println!(
                "{gpus:<6} {:>7} {:>7} {:>9.1}   {:>7} {:>7} {:>9.1}",
                fmt_reserved(&pair.baseline),
                fmt_pct(pair.baseline.utilization()),
                pair.baseline.throughput,
                fmt_reserved(&pair.gmlake),
                fmt_pct(pair.gmlake.utilization()),
                pair.gmlake.throughput,
            );
        }
        println!();
    }
}
