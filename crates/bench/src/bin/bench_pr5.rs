//! Perf snapshot for the PR 5 event-guarded cross-stream reuse path:
//! sweeps warm alloc/free throughput over 1/2/4/8 threads, all issuing ONE
//! shared 64 KiB size class, in three shapes:
//!
//! * **same_stream** — 8 stream banks, thread *t* allocating AND freeing on
//!   `StreamId(t)`: the warm-path reference every cross-stream number is
//!   measured against;
//! * **cross_guarded** — thread *t* allocates on `StreamId(t)`, frees on
//!   `StreamId(t+1)`, on a pool **without** an event source: every free
//!   takes the PR 4 conservative return-to-core guard (the ~6× gap
//!   `BENCH_PR4.json` measured);
//! * **cross_events** — the same mapping on a pool whose event source is
//!   the device driver: every free `try_record`s an event on the freeing
//!   stream; a caught-up stream (always, on the zero-cost device) re-pools
//!   the block into the owner's free list in that same driver entry, a
//!   busy one parks it in the pending ring for promotion — either way, no
//!   core-mutex round trip.
//!
//! Results are written as machine-readable `BENCH_PR5.json` (committed,
//! uploaded as a CI artifact; the committed snapshot records the
//! cross-stream event path within the 2× acceptance bound of same-stream
//! at 8 threads). `bench_pr5 --check` re-runs the sweep (best of three per
//! point) and fails when the event path *structurally* regresses: an
//! 8-thread same/cross-events slowdown above [`MAX_SLOWDOWN_8T`] fails the
//! gate, while values between the 2× acceptance bound and it only warn
//! (scheduler noise on oversubscribed single-core runners), and
//! order-of-magnitude drops against the committed snapshot fail as in
//! `bench_pr4 --check`.

use std::time::Instant;

use gmlake_alloc_api::{AllocRequest, DeviceAllocator, StreamId};
use gmlake_bench::perf::{stream_pool, stream_pool_with_events, STREAM_SWEEP_SIZE};
use gmlake_bench::report;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OPS_PER_THREAD: usize = 20_000;
/// Repetitions per measurement point; the best run is kept (strips
/// scheduler-noise downside on oversubscribed runners).
const REPS: usize = 3;
/// Stream banks of the stream-aware pools (covers the widest sweep point).
const STREAMS: usize = 8;
/// Acceptance bound: at 8 threads, cross-stream reuse through events must
/// be within this factor of same-stream. The committed snapshot meets it;
/// `--check` runs above it only warn until [`MAX_SLOWDOWN_8T`].
const ACCEPT_SLOWDOWN_8T: f64 = 2.0;
/// Hard `--check` ceiling on the 8-thread same/cross-events slowdown:
/// above this the event path has structurally regressed toward the old
/// through-the-core guard (~6×) and the gate fails.
const MAX_SLOWDOWN_8T: f64 = 3.0;

/// How each worker maps itself onto streams.
#[derive(Clone, Copy)]
enum Shape {
    /// Thread t lives entirely on StreamId(t).
    SameStream,
    /// Thread t allocates on StreamId(t), frees on StreamId(t + 1).
    CrossStream,
}

impl Shape {
    fn streams(self, t: usize) -> (StreamId, StreamId) {
        match self {
            Shape::SameStream => (StreamId(t as u32), StreamId(t as u32)),
            Shape::CrossStream => (StreamId(t as u32), StreamId(t as u32 + 1)),
        }
    }
}

/// Best of [`REPS`] runs of [`measure_once`], each on a FRESH pool: a rep
/// that falls into a bad lock-handoff regime (oversubscribed single-core
/// runners) cannot poison the others through shared mutex/cache state.
fn measure(make_pool: impl Fn() -> DeviceAllocator, threads: usize, shape: Shape) -> f64 {
    (0..REPS)
        .map(|_| measure_once(&make_pool(), threads, shape))
        .fold(0.0, f64::max)
}

/// Runs `threads` workers, each doing `OPS_PER_THREAD` warm alloc/free
/// cycles of the shared size class under `shape`'s stream mapping; returns
/// aggregate operations (one alloc + one free = 2 ops) per second.
fn measure_once(pool: &DeviceAllocator, threads: usize, shape: Shape) -> f64 {
    // Warm every thread's (stream, class) slot so the sweep measures the
    // steady state, not first-touch core misses. (On the event pool a
    // cross-stream cycle warms up too: the parked block is promoted back.)
    for t in 0..threads {
        let (alloc_stream, _) = shape.streams(t);
        let a = pool
            .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), alloc_stream)
            .unwrap();
        pool.free_on_stream(a.id, alloc_stream).unwrap();
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = pool.clone();
            s.spawn(move || {
                let (alloc_stream, free_stream) = shape.streams(t);
                for _ in 0..OPS_PER_THREAD {
                    let a = pool
                        .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), alloc_stream)
                        .unwrap();
                    pool.free_on_stream(a.id, free_stream).unwrap();
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads * OPS_PER_THREAD * 2) as f64 / secs
}

struct SweepPoint {
    threads: usize,
    same_stream_ops_per_sec: f64,
    cross_guarded_ops_per_sec: f64,
    cross_events_ops_per_sec: f64,
}

impl SweepPoint {
    /// How many times slower cross-stream reuse through events is than the
    /// same-stream warm path (1.0 = parity; PR 4's guard sat around 6).
    fn slowdown_events(&self) -> f64 {
        self.same_stream_ops_per_sec / self.cross_events_ops_per_sec
    }

    /// The PR 4 conservative guard's slowdown, measured in the same
    /// process for the before/after comparison.
    fn slowdown_guarded(&self) -> f64 {
        self.same_stream_ops_per_sec / self.cross_guarded_ops_per_sec
    }
}

fn run_sweep() -> Vec<SweepPoint> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let same_stream_ops_per_sec = measure(
                || stream_pool_with_events(STREAMS),
                threads,
                Shape::SameStream,
            );
            let cross_guarded_ops_per_sec =
                measure(|| stream_pool(STREAMS), threads, Shape::CrossStream);
            let cross_events_ops_per_sec = measure(
                || stream_pool_with_events(STREAMS),
                threads,
                Shape::CrossStream,
            );
            let point = SweepPoint {
                threads,
                same_stream_ops_per_sec,
                cross_guarded_ops_per_sec,
                cross_events_ops_per_sec,
            };
            eprintln!(
                "  {threads} thread(s): same-stream {:>12.0} ops/s, cross guarded \
                 {:>11.0} ops/s ({:.1}x slower), cross events {:>11.0} ops/s ({:.2}x slower)",
                point.same_stream_ops_per_sec,
                point.cross_guarded_ops_per_sec,
                point.slowdown_guarded(),
                point.cross_events_ops_per_sec,
                point.slowdown_events(),
            );
            point
        })
        .collect()
}

fn render_json(sweep: &[SweepPoint]) -> String {
    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr5/v1\",\n");
    json.push_str("  \"event_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"same_stream_ops_per_sec\": {:.0}, \
             \"cross_guarded_ops_per_sec\": {:.0}, \"cross_events_ops_per_sec\": {:.0}, \
             \"slowdown_guarded\": {:.2}, \"slowdown_events\": {:.2}}}{}\n",
            p.threads,
            p.same_stream_ops_per_sec,
            p.cross_guarded_ops_per_sec,
            p.cross_events_ops_per_sec,
            p.slowdown_guarded(),
            p.slowdown_events(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let eight = sweep.last().expect("sweep is non-empty");
    json.push_str(&format!(
        "  \"same_over_cross_events_8t\": {:.2},\n  \"same_over_cross_guarded_8t\": {:.2},\n",
        eight.slowdown_events(),
        eight.slowdown_guarded()
    ));
    json.push_str(
        "  \"notes\": \"warm 64 KiB alloc+free cycles of ONE shared size class; same_stream = \
         8 banks, thread t on StreamId(t); cross shapes alloc on StreamId(t) / free on \
         StreamId(t+1) — cross_guarded on a pool without events (every free round-trips the \
         core mutex, the PR 4 rule), cross_events on a pool with the driver as its event \
         source (free try_records an event on the freeing stream; the zero-cost device keeps \
         no work in flight, so the event completes at record time and the block re-pools \
         into the owner's free list in that same driver entry — the caught-up fast path; \
         busy streams would park in the pending ring instead). Acceptance: \
         same_over_cross_events_8t <= 2.0, vs ~6x for the guarded path in BENCH_PR4.json\"\n}\n",
    );
    json
}

/// Compares a freshly measured sweep against the committed snapshot;
/// returns the hard failures (empty = pass).
fn check_against(committed: &str, sweep: &[SweepPoint]) -> Vec<String> {
    let mut failures = Vec::new();
    let eight = sweep.last().expect("sweep is non-empty");
    if eight.slowdown_events() > MAX_SLOWDOWN_8T {
        failures.push(format!(
            "8-thread cross-stream event reuse fell to {:.2}x slower than same-stream \
             (hard ceiling {MAX_SLOWDOWN_8T}x; acceptance bound {ACCEPT_SLOWDOWN_8T}x)",
            eight.slowdown_events()
        ));
    } else if eight.slowdown_events() > ACCEPT_SLOWDOWN_8T {
        eprintln!(
            "warning: 8-thread same/cross-events slowdown {:.2}x exceeds the {ACCEPT_SLOWDOWN_8T}x \
             acceptance bound (scheduler noise on an oversubscribed runner?)",
            eight.slowdown_events()
        );
    }
    // First sweep entry in the snapshot is the 1-thread point; compare
    // the same-shape quantity: current 1-thread cross-events throughput.
    failures.extend(report::throughput_guard(
        committed,
        "cross_events_ops_per_sec",
        sweep[0].cross_events_ops_per_sec,
        "1-thread cross-events throughput",
        "ops/s",
    ));
    failures
}

fn main() {
    eprintln!("event-guarded cross-stream sweep, {OPS_PER_THREAD} alloc/free cycles per thread:");
    let sweep = run_sweep();

    report::finish(
        "BENCH_PR5.json",
        || render_json(&sweep),
        |committed| check_against(committed, &sweep),
        || {
            let eight = sweep.last().unwrap();
            format!(
                "8-thread cross-stream events {:.2}x slower than same-stream \
                 (guarded path: {:.2}x)",
                eight.slowdown_events(),
                eight.slowdown_guarded()
            )
        },
    );
}
