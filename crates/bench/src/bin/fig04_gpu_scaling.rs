//! **Figure 4** — PyTorch caching-allocator utilization versus GPU count
//! (OPT-13B + LR, DeepSpeed ZeRO-3).
//!
//! Paper values: 91/84/78/80/76 % at 1/2/4/8/16 GPUs — utilization degrades
//! as ZeRO-3 shards shrink and transient traffic dominates (Observation 2).

use gmlake_bench::{fmt_pct, rule, run_single, Allocator};
use gmlake_workload::{ModelSpec, ReplayOptions, StrategySet, TrainConfig};

fn main() {
    let paper = [(1u32, 0.91), (2, 0.84), (4, 0.78), (8, 0.80), (16, 0.76)];
    println!("Figure 4: baseline memory utilization vs GPU count");
    println!("model OPT-13B, LR strategies, DeepSpeed ZeRO-3, batch 16\n");
    println!("{:<6} {:>10} {:>10}", "gpus", "paper", "measured");
    rule(30);
    let mut csv = String::from("gpus,paper_util,measured_util\n");
    for (gpus, paper_util) in paper {
        let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR)
            .with_batch(16)
            .with_gpus(gpus);
        let report = run_single(&cfg, Allocator::Caching, &ReplayOptions::default());
        println!(
            "{gpus:<6} {:>10} {:>10}",
            fmt_pct(paper_util),
            fmt_pct(report.utilization())
        );
        csv.push_str(&format!(
            "{gpus},{paper_util:.3},{:.3}\n",
            report.utilization()
        ));
    }
    println!("\ncsv:\n{csv}");
}
