//! **Table 1** — VMM API execution-time breakdown for a 2 GB allocation,
//! normalized to `cuMemAlloc`, for internal chunk sizes of 2 / 128 / 1024 MB.
//!
//! Paper values (normalized):
//!
//! | chunk | 2 MB | 128 MB | 1024 MB |
//! |---|---|---|---|
//! | cuMemAddressReserve | 0.003 | 0.003 | 0.002 |
//! | cuMemCreate | 18.1 | 0.89 | 0.79 |
//! | cuMemMap | 0.70 | 0.01 | 0.002 |
//! | cuMemSetAccess | 96.8 | 8.2 | 0.7 |
//! | total | 115.4 | 9.1 | 1.5 |
//!
//! Measured values come from *executing* the sequence against the simulated
//! driver and reading per-API telemetry back, not from the closed-form model.

use gmlake_alloc_api::{gib, mib};
use gmlake_gpu_sim::{CostModel, CudaDriver, DeviceConfig, DriverStats};

fn run_breakdown(chunk: u64) -> DriverStats {
    let driver = CudaDriver::new(DeviceConfig::a100_80g().with_cost(CostModel::calibrated()));
    let block = gib(2);
    let va = driver.mem_address_reserve(block).unwrap();
    for i in 0..(block / chunk) {
        let h = driver.mem_create(chunk).unwrap();
        driver.mem_map(va.offset(i * chunk), chunk, 0, h).unwrap();
    }
    driver.mem_set_access(va, block, true).unwrap();
    driver.stats()
}

fn main() {
    const ANCHOR: f64 = 1_000_000.0; // ns per normalized unit
    let chunks = [mib(2), mib(128), mib(1024)];
    let paper: [(&str, [f64; 3]); 5] = [
        ("cuMemAddressReserve", [0.003, 0.003, 0.002]),
        ("cuMemCreate", [18.1, 0.89, 0.79]),
        ("cuMemMap", [0.70, 0.01, 0.002]),
        ("cuMemSetAccess", [96.8, 8.2, 0.7]),
        ("total", [115.4, 9.1, 1.5]),
    ];

    let stats: Vec<DriverStats> = chunks.iter().map(|&c| run_breakdown(c)).collect();
    let measured = |api: &str, s: &DriverStats| -> f64 {
        let ns = match api {
            "cuMemAddressReserve" => s.address_reserve.time_ns,
            "cuMemCreate" => s.create.time_ns,
            "cuMemMap" => s.map.time_ns,
            "cuMemSetAccess" => s.set_access.time_ns,
            "total" => s.vmm_time_ns(),
            _ => unreachable!(),
        };
        ns as f64 / ANCHOR
    };

    println!("Table 1: VMM API time breakdown, 2 GiB allocation (normalized to cuMemAlloc)\n");
    println!(
        "{:<22} {:>9} {:>9}   {:>9} {:>9}   {:>9} {:>9}",
        "API", "2MB(p)", "2MB(m)", "128MB(p)", "128MB(m)", "1GB(p)", "1GB(m)"
    );
    println!("{}", "-".repeat(84));
    for (api, p) in paper {
        println!(
            "{api:<22} {:>9.3} {:>9.3}   {:>9.3} {:>9.3}   {:>9.3} {:>9.3}",
            p[0],
            measured(api, &stats[0]),
            p[1],
            measured(api, &stats[1]),
            p[2],
            measured(api, &stats[2]),
        );
    }
    println!("\n(p) = paper, (m) = measured on the simulated driver");
}
