//! **Figure 12** — platform scalability: FSDP-GLM-10B, DeepSpeed-OPT-13B and
//! Colossal-AI-GPT-2, fine-tuned with LoRA + recomputation on 4×A100, with
//! and without GMLake.
//!
//! Paper: fragmentation/reserved reductions of ~9–33% (7–25 GB) across the
//! three platforms.

use gmlake_bench::{print_compare_header, print_compare_row, run_pair};
use gmlake_workload::{ModelSpec, Platform, StrategySet, TrainConfig};

fn main() {
    println!("Figure 12: platform scalability (LR, 4 GPUs), w/ and w/o GMLake\n");
    let rows = [
        (Platform::Fsdp, ModelSpec::glm_10b(), 16u32),
        (Platform::DeepSpeedZero3, ModelSpec::opt_13b(), 8),
        (Platform::ColossalAi, ModelSpec::gpt2(), 64),
    ];
    print_compare_header("platform-model");
    for (platform, model, batch) in rows {
        let cfg = TrainConfig::new(model, StrategySet::LR)
            .with_platform(platform)
            .with_batch(batch);
        let pair = run_pair(&cfg);
        print_compare_row(&cfg.label(), &pair);
    }
}
