//! Perf snapshot for the PR 4 stream-aware allocator front-end: sweeps warm
//! small-allocation throughput over 1/2/4/8 threads in three shapes, all
//! issuing ONE shared size class (the case pure size-class sharding cannot
//! spread — every thread hashes to the same shard):
//!
//! * **single_pool** — the PR 3 layout (1 stream bank): all threads
//!   contend on the shared class's single shard lock;
//! * **same_stream** — 8 stream banks, thread *t* allocating and freeing on
//!   `StreamId(t)`: every thread owns its bank, zero lock sharing;
//! * **cross_stream** — 8 stream banks, thread *t* allocating on
//!   `StreamId(t)` but freeing on `StreamId(t+1)`: every free triggers the
//!   conservative return-to-core guard, quantifying what the event-guard
//!   rule costs when a workload actually migrates blocks across streams.
//!
//! Results are written as machine-readable `BENCH_PR4.json` (committed,
//! uploaded as a CI artifact; the committed snapshot records same-stream
//! at or above single-pool at 8 threads). `bench_pr4 --check` re-runs the
//! sweep (best of three per point) and fails when the stream path
//! *structurally* regresses: a same-stream/single-pool 8-thread ratio
//! below [`MIN_SAME_OVER_SINGLE_8T`] fails the gate, while ratios between
//! it and 1.0 only warn — on an oversubscribed single-core runner the two
//! shapes are separated by scheduler noise, not structure. The warning is
//! emitted once with the measured best-of-three values of both shapes and
//! folded into the working-directory JSON report (`"warnings"` array) so
//! the CI artifact records it even when stderr is discarded.
//! Order-of-magnitude drops against the committed snapshot fail as in
//! `bench_pr3 --check`.

use std::time::Instant;

use gmlake_alloc_api::{AllocRequest, DeviceAllocator, StreamId};
use gmlake_bench::perf::{stream_pool, STREAM_SWEEP_SIZE};
use gmlake_bench::report;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OPS_PER_THREAD: usize = 20_000;
/// Repetitions per measurement point; the best run is kept. Contended-lock
/// throughput on oversubscribed runners (threads > cores) swings with
/// scheduler timing, and the best-of filter strips that downside noise.
const REPS: usize = 3;
/// Stream banks of the stream-aware pools (covers the widest sweep point).
const STREAMS: usize = 8;
/// Same-process same-stream/single-pool floor for `--check`: below 1.0x
/// only warns (on a single-core runner the two shapes are separated by
/// scheduler noise, not structure), below this the stream path is
/// structurally slower than the layout it extends and the gate fails.
const MIN_SAME_OVER_SINGLE_8T: f64 = 0.5;

/// How each worker maps itself onto streams.
#[derive(Clone, Copy)]
enum Shape {
    /// PR 3 baseline: everything on the default stream of a 1-bank pool.
    SinglePool,
    /// Thread t lives entirely on StreamId(t).
    SameStream,
    /// Thread t allocates on StreamId(t), frees on StreamId(t + 1).
    CrossStream,
}

impl Shape {
    fn streams(self, t: usize) -> (StreamId, StreamId) {
        match self {
            Shape::SinglePool => (StreamId::DEFAULT, StreamId::DEFAULT),
            Shape::SameStream => (StreamId(t as u32), StreamId(t as u32)),
            Shape::CrossStream => (StreamId(t as u32), StreamId(t as u32 + 1)),
        }
    }
}

/// Best of [`REPS`] runs of [`measure_once`].
fn measure(pool: &DeviceAllocator, threads: usize, shape: Shape) -> f64 {
    (0..REPS)
        .map(|_| measure_once(pool, threads, shape))
        .fold(0.0, f64::max)
}

/// Runs `threads` workers, each doing `OPS_PER_THREAD` warm alloc/free
/// cycles of the shared size class under `shape`'s stream mapping; returns
/// aggregate operations (one alloc + one free = 2 ops) per second.
fn measure_once(pool: &DeviceAllocator, threads: usize, shape: Shape) -> f64 {
    // Warm every thread's (stream, class) slot so the sweep measures the
    // steady state, not first-touch core misses. (Cross-stream cycles never
    // warm up by design — each free evicts to the core.)
    for t in 0..threads {
        let (alloc_stream, _) = shape.streams(t);
        let a = pool
            .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), alloc_stream)
            .unwrap();
        pool.free_on_stream(a.id, alloc_stream).unwrap();
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = pool.clone();
            s.spawn(move || {
                let (alloc_stream, free_stream) = shape.streams(t);
                for _ in 0..OPS_PER_THREAD {
                    let a = pool
                        .alloc_on_stream(AllocRequest::new(STREAM_SWEEP_SIZE), alloc_stream)
                        .unwrap();
                    pool.free_on_stream(a.id, free_stream).unwrap();
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads * OPS_PER_THREAD * 2) as f64 / secs
}

struct SweepPoint {
    threads: usize,
    single_pool_ops_per_sec: f64,
    same_stream_ops_per_sec: f64,
    cross_stream_ops_per_sec: f64,
}

impl SweepPoint {
    fn same_over_single(&self) -> f64 {
        self.same_stream_ops_per_sec / self.single_pool_ops_per_sec
    }
}

fn run_sweep() -> Vec<SweepPoint> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let single_pool_ops_per_sec = measure(&stream_pool(1), threads, Shape::SinglePool);
            let same_stream_ops_per_sec =
                measure(&stream_pool(STREAMS), threads, Shape::SameStream);
            let cross_stream_ops_per_sec =
                measure(&stream_pool(STREAMS), threads, Shape::CrossStream);
            let point = SweepPoint {
                threads,
                single_pool_ops_per_sec,
                same_stream_ops_per_sec,
                cross_stream_ops_per_sec,
            };
            eprintln!(
                "  {threads} thread(s): single-pool {:>12.0} ops/s, same-stream {:>12.0} ops/s \
                 ({:.1}x), cross-stream {:>12.0} ops/s",
                point.single_pool_ops_per_sec,
                point.same_stream_ops_per_sec,
                point.same_over_single(),
                point.cross_stream_ops_per_sec,
            );
            point
        })
        .collect()
}

fn render_json(sweep: &[SweepPoint], warnings: &[String]) -> String {
    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr4/v1\",\n");
    json.push_str(&report::warnings_json(warnings));
    json.push_str("  \"stream_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"single_pool_ops_per_sec\": {:.0}, \
             \"same_stream_ops_per_sec\": {:.0}, \"cross_stream_ops_per_sec\": {:.0}, \
             \"same_over_single\": {:.2}}}{}\n",
            p.threads,
            p.single_pool_ops_per_sec,
            p.same_stream_ops_per_sec,
            p.cross_stream_ops_per_sec,
            p.same_over_single(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let eight = sweep.last().expect("sweep is non-empty");
    json.push_str(&format!(
        "  \"same_over_single_8t\": {:.2},\n",
        eight.same_over_single()
    ));
    json.push_str(
        "  \"notes\": \"warm 64 KiB alloc+free cycles of ONE shared size class through a \
         shared pool; single_pool = 1 stream bank (the PR 3 DeviceAllocator layout, all \
         threads on one shard lock); same_stream = 8 banks, thread t on StreamId(t); \
         cross_stream = 8 banks, alloc on StreamId(t) / free on StreamId(t+1), every free \
         taking the conservative return-to-core guard\"\n}\n",
    );
    json
}

/// Compares a freshly measured sweep against the committed snapshot;
/// returns `(hard failures, warnings)` (both empty = clean pass). A
/// sub-1.0x (but above-floor) 8-thread ratio is a warning carrying the
/// measured best-of-{[`REPS`]} values of both shapes, emitted once and —
/// via [`report::finish_with_warnings`] — folded into the JSON report so
/// the CI artifact records it even when stderr is discarded.
fn check_against(committed: &str, sweep: &[SweepPoint]) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let eight = sweep.last().expect("sweep is non-empty");
    // Same-process acceptance: at 8 threads the per-stream banks must not
    // be structurally slower than the single-pool layout they extend.
    if eight.same_over_single() < MIN_SAME_OVER_SINGLE_8T {
        failures.push(format!(
            "8-thread same-stream throughput fell below the single-pool baseline \
             ({:.2}x, floor {MIN_SAME_OVER_SINGLE_8T}x)",
            eight.same_over_single()
        ));
    } else if eight.same_over_single() < 1.0 {
        warnings.push(format!(
            "8-thread same-stream/single-pool ratio {:.2}x is below 1.0 (best of {REPS}: \
             same-stream {:.0} ops/s vs single-pool {:.0} ops/s) — scheduler noise on an \
             oversubscribed runner?",
            eight.same_over_single(),
            eight.same_stream_ops_per_sec,
            eight.single_pool_ops_per_sec,
        ));
    }
    // First sweep entry in the snapshot is the 1-thread point; compare
    // the same-shape quantity: current 1-thread same-stream throughput.
    failures.extend(report::throughput_guard(
        committed,
        "same_stream_ops_per_sec",
        sweep[0].same_stream_ops_per_sec,
        "1-thread same-stream throughput",
        "ops/s",
    ));
    (failures, warnings)
}

fn main() {
    eprintln!("stream sweep, {OPS_PER_THREAD} alloc/free cycles per thread:");
    let sweep = run_sweep();

    report::finish_with_warnings(
        "BENCH_PR4.json",
        |warnings| render_json(&sweep, warnings),
        |committed| check_against(committed, &sweep),
        || {
            let eight = sweep.last().unwrap();
            format!(
                "8-thread same-stream/single-pool {:.2}x, cross-stream {:.0} ops/s",
                eight.same_over_single(),
                eight.cross_stream_ops_per_sec
            )
        },
    );
}
