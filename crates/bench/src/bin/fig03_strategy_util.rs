//! **Figure 3** — memory utilization of the PyTorch caching allocator under
//! five strategy combinations (OPT-1.3B, DeepSpeed ZeRO-3, 4×A100).
//!
//! Paper values: P 97%, PR 80%, PLR 76%, PRO 70%, PLRO 73%. This is a
//! characterization of the *baseline* (GMLake is not involved): the more
//! complex the strategy mix, the lower the utilization (Observation 1).

use gmlake_bench::{fmt_pct, rule, run_single, Allocator};
use gmlake_workload::{ModelSpec, ReplayOptions, StrategySet, TrainConfig};

fn main() {
    // The paper labels PyTorch-only as "P" and prefixes the strategies.
    let paper = [
        ("P", StrategySet::N, 0.97),
        ("PR", StrategySet::R, 0.80),
        ("PLR", StrategySet::LR, 0.76),
        ("PRO", StrategySet::RO, 0.70),
        ("PLRO", StrategySet::LRO, 0.73),
    ];
    println!("Figure 3: memory utilization by strategy combination");
    println!("model OPT-1.3B, DeepSpeed ZeRO-3, 4 GPUs, batch 8\n");
    println!("{:<6} {:>10} {:>10}", "combo", "paper", "measured");
    rule(30);
    let mut csv = String::from("combo,paper_util,measured_util\n");
    for (label, strategies, paper_util) in paper {
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), strategies);
        let report = run_single(&cfg, Allocator::Caching, &ReplayOptions::default());
        println!(
            "{label:<6} {:>10} {:>10}",
            fmt_pct(paper_util),
            fmt_pct(report.utilization())
        );
        csv.push_str(&format!(
            "{label},{paper_util:.3},{:.3}\n",
            report.utilization()
        ));
    }
    println!("\ncsv:\n{csv}");
}
