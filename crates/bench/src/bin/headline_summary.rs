//! **§5 headline numbers** — the 76-workload sweep behind the paper's
//! summary claims: GMLake reduces reserved GPU memory by 9.2 GB on average
//! (up to 25 GB) and fragmentation by 15% on average (up to 33%).
//!
//! Runs every workload of the suite against both allocators; workloads where
//! the *baseline* OOMs are reported but excluded from the averages (there is
//! no baseline reserved number to compare against), matching the paper's
//! methodology of aggregating completed runs.

use gmlake_bench::{fmt_pct, print_compare_header, print_compare_row, run_pair};
use gmlake_workload::{headline_suite, mem_reduction_ratio, to_gib};

fn main() {
    let suite = headline_suite();
    println!(
        "Headline sweep: {} workloads across 6 models (paper: 76 workloads)\n",
        suite.len()
    );
    print_compare_header("workload");

    let mut base_reserved = Vec::new();
    let mut gml_reserved = Vec::new();
    let mut frag_drops = Vec::new();
    let mut gml_rescues = 0u32;
    let mut both_oom = 0u32;

    for cfg in &suite {
        let pair = run_pair(cfg);
        print_compare_row(&cfg.label(), &pair);
        match (
            pair.baseline.outcome.is_completed(),
            pair.gmlake.outcome.is_completed(),
        ) {
            (true, true) => {
                base_reserved.push(pair.baseline.peak_reserved);
                gml_reserved.push(pair.gmlake.peak_reserved);
                frag_drops.push(pair.baseline.fragmentation() - pair.gmlake.fragmentation());
            }
            (false, true) => gml_rescues += 1,
            (false, false) => both_oom += 1,
            (true, false) => println!("  !! GMLake OOM where baseline survived: {}", cfg.label()),
        }
    }

    let saved: Vec<f64> = base_reserved
        .iter()
        .zip(&gml_reserved)
        .map(|(&b, &g)| to_gib(b.saturating_sub(g)))
        .collect();
    let avg_saved = gmlake_workload::mean(&saved);
    let max_saved = saved.iter().cloned().fold(0.0, f64::max);
    let avg_frag_drop = gmlake_workload::mean(&frag_drops);
    let max_frag_drop = frag_drops.iter().cloned().fold(0.0, f64::max);
    let reduction = mem_reduction_ratio(&base_reserved, &gml_reserved);

    println!("\nsummary over {} completed pairs:", base_reserved.len());
    println!(
        "  reserved-memory saving: avg {avg_saved:.1} GiB, max {max_saved:.1} GiB (paper: avg 9.2, max 25)"
    );
    println!(
        "  fragmentation reduction: avg {}, max {} (paper: avg 15%, max 33%)",
        fmt_pct(avg_frag_drop),
        fmt_pct(max_frag_drop)
    );
    println!("  aggregate MemReductionRatio: {}", fmt_pct(reduction));
    println!(
        "  workloads only GMLake completed (baseline OOM): {gml_rescues}; both OOM: {both_oom}"
    );
}
