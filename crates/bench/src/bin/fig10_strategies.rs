//! **Figure 10** — reserved memory (RM) and utilization ratio (UR) with and
//! without GMLake across strategy combinations N/R/LR/RO/LRO, for
//! OPT-13B (a), Vicuna-13B (b) and GPT-NeoX-20B (c); DeepSpeed ZeRO-3,
//! 4×A100, common batch size.
//!
//! Paper: utilization gains of ~5–24% (up to 17 GB of reserved memory)
//! with GMLake holding fragmentation to 5–10%.

use gmlake_bench::{print_compare_header, print_compare_row, run_pair};
use gmlake_workload::{ModelSpec, StrategySet, TrainConfig};

fn main() {
    println!("Figure 10: RM + UR by strategy combination, w/ and w/o GMLake");
    println!("DeepSpeed ZeRO-3, 4 GPUs, common batch per model\n");
    // Common batch size per model, with sequence length chosen so the N
    // (no-strategy) configuration fits 80 GB where the model's full state
    // allows it at all (GPT-NeoX-20B's fp32 optimizer shard alone exceeds a
    // device, so its N/R rows OOM — as full fine-tuning of a 20B model on
    // 4x80 GB does in reality).
    let models = [
        (ModelSpec::opt_13b(), 4u32, 1024u32),
        (ModelSpec::vicuna_13b(), 4, 1024),
        (ModelSpec::gpt_neox_20b(), 4, 1024),
    ];
    for (model, batch, seq) in models {
        println!("({}) batch {batch}, seq {seq}", model.name);
        print_compare_header("strategy");
        for s in StrategySet::FIG10_SWEEP {
            let cfg = TrainConfig::new(model.clone(), s)
                .with_batch(batch)
                .with_seq_len(seq);
            let pair = run_pair(&cfg);
            print_compare_row(s.label(), &pair);
        }
        println!();
    }
}
