//! Perf snapshot for the PR 10 spatio-temporal planning core: steady-state
//! allocation latency of `PlannedCore` (serve-from-plan, zero driver
//! calls) vs the reactive `GmLakeAllocator` path, over the same LR
//! fine-tuning trace on the same device model.
//!
//! Both allocators replay the full trace; only allocations issued in
//! iterations ≥ [`MEASURE_FROM`] are timed (the planned core records
//! during iteration 0 and installs its plan at the first boundary, so the
//! measured window is pure steady state on both sides). The quantities
//! that matter:
//!
//! * **`planned_alloc_p50_ns` / `reactive_alloc_p50_ns`** — median
//!   steady-state wall time of one `alloc_on_stream` call;
//! * **`plan_hit_rate`** — fraction of measured-window allocations the
//!   plan served in O(1); the PR 10 acceptance pins ≥ [`MIN_HIT_RATE`] on
//!   LR traces and `--check` hard-fails below it;
//! * order-of-magnitude drift of the planned p50 against the committed
//!   snapshot hard-fails like every other gate; a planned p50 slower than
//!   the reactive p50 warns (scheduler noise) but does not fail.
//!
//! Results are written as machine-readable `BENCH_PR10.json` (committed,
//! uploaded as a CI artifact).

use std::collections::HashMap;
use std::time::Instant;

use gmlake_alloc_api::{AllocRequest, AllocatorCore};
use gmlake_bench::report;
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
use gmlake_planning::{PlannedConfig, PlannedCore};
use gmlake_workload::{ModelSpec, StrategySet, Trace, TraceEvent, TraceGenerator, TrainConfig};

/// Repetitions per side; the best (lowest) p50 is kept, as in the other
/// wall-clock gates.
const REPS: usize = 3;
/// First iteration whose allocations are timed: the planned core records
/// iteration 0 and serves from iteration 1, so from here both sides are
/// in their steady state.
const MEASURE_FROM: u32 = 2;
/// Hard `--check` floor for the measured-window plan hit rate on the LR
/// trace (the PR 10 acceptance criterion).
const MIN_HIT_RATE: f64 = 0.95;

fn workload() -> TrainConfig {
    TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_seq_len(256)
        .with_batch(2)
        .with_iterations(8)
}

/// Replays `trace`, timing every alloc issued in iterations ≥
/// [`MEASURE_FROM`]; returns the collected per-alloc wall latencies.
fn replay_timed(core: &mut dyn AllocatorCore, trace: &Trace) -> Vec<u64> {
    let mut live: HashMap<u64, gmlake_alloc_api::AllocationId> = HashMap::new();
    let mut latencies = Vec::with_capacity(trace.events.len() / 2);
    let mut iter = None;
    for ev in &trace.events {
        match *ev {
            TraceEvent::Alloc {
                key, size, stream, ..
            } => {
                let timed = iter.is_some_and(|i| i >= MEASURE_FROM);
                let start = timed.then(Instant::now);
                let a = core
                    .alloc_on_stream(AllocRequest::new(size), stream)
                    .expect("80 GiB device never OOMs on this trace");
                if let Some(start) = start {
                    latencies.push(start.elapsed().as_nanos() as u64);
                }
                live.insert(key, a.id);
            }
            TraceEvent::Free { key, stream } => {
                let id = live.remove(&key).expect("trace frees only live keys");
                core.free_on_stream(id, stream).expect("free");
            }
            TraceEvent::Compute { .. } => {}
            TraceEvent::IterBegin { index } => iter = Some(index),
            TraceEvent::IterEnd { .. } => {
                core.iteration_boundary();
                core.process_events();
            }
        }
    }
    latencies
}

fn p50(latencies: &mut [u64]) -> f64 {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    latencies[latencies.len() / 2] as f64
}

struct Measurement {
    planned_p50_ns: f64,
    reactive_p50_ns: f64,
    hit_rate: f64,
    residue_allocs: u64,
    plans_built: u64,
    timed_allocs: usize,
}

fn measure(trace: &Trace) -> Measurement {
    let mut planned_p50_ns = f64::INFINITY;
    let mut reactive_p50_ns = f64::INFINITY;
    let mut hit_rate = 0.0;
    let mut residue_allocs = 0;
    let mut plans_built = 0;
    let mut timed_allocs = 0;
    for _ in 0..REPS {
        let driver = CudaDriver::new(DeviceConfig::a100_80g());
        let mut planned = PlannedCore::new(driver, PlannedConfig::default());
        // Counter snapshot at the measured window's start is unavailable
        // mid-replay, so measure the whole serving phase: iteration 1 is
        // the only pre-window serving iteration and it matches the
        // steady state on this deterministic trace.
        let mut lat = replay_timed(&mut planned, trace);
        timed_allocs = lat.len();
        let p = p50(&mut lat);
        if p < planned_p50_ns {
            planned_p50_ns = p;
            hit_rate = planned.counters().hit_rate();
            residue_allocs = planned.counters().residue_allocs;
            plans_built = planned.counters().plans_built;
        }

        let driver = CudaDriver::new(DeviceConfig::a100_80g());
        let mut reactive = GmLakeAllocator::new(driver, GmLakeConfig::default());
        let mut lat = replay_timed(&mut reactive, trace);
        reactive_p50_ns = reactive_p50_ns.min(p50(&mut lat));
    }
    Measurement {
        planned_p50_ns,
        reactive_p50_ns,
        hit_rate,
        residue_allocs,
        plans_built,
        timed_allocs,
    }
}

fn render_json(m: &Measurement, warnings: &[String]) -> String {
    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr10/v1\",\n");
    json.push_str(&report::warnings_json(warnings));
    json.push_str(&format!(
        "  \"planned_alloc_p50_ns\": {:.0},\n  \"reactive_alloc_p50_ns\": {:.0},\n  \
         \"reactive_over_planned\": {:.2},\n  \"plan_hit_rate\": {:.4},\n  \
         \"residue_allocs\": {},\n  \"plans_built\": {},\n  \"timed_allocs\": {},\n",
        m.planned_p50_ns,
        m.reactive_p50_ns,
        m.reactive_p50_ns / m.planned_p50_ns,
        m.hit_rate,
        m.residue_allocs,
        m.plans_built,
        m.timed_allocs,
    ));
    json.push_str(
        "  \"notes\": \"opt-1.3b LR fine-tuning trace (seq 256, batch 2, 8 iterations) on the \
         a100-80g device model; p50 wall time of one alloc_on_stream call over iterations >= 2 \
         (pure steady state: the planned core records iteration 0 and serves from its plan \
         afterwards), best of 3 runs per side; plan_hit_rate is the serving-phase fraction of \
         allocs answered from the plan in O(1) with zero driver calls\"\n}\n",
    );
    json
}

fn check_against(committed: &str, m: &Measurement) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    if m.hit_rate < MIN_HIT_RATE {
        failures.push(format!(
            "plan hit rate {:.4} fell below the {MIN_HIT_RATE} floor on the LR trace \
             ({} residue allocs, {} plans built)",
            m.hit_rate, m.residue_allocs, m.plans_built
        ));
    }
    failures.extend(report::latency_guard(
        committed,
        "planned_alloc_p50_ns",
        m.planned_p50_ns,
        "steady-state planned alloc p50",
    ));
    if m.planned_p50_ns > m.reactive_p50_ns {
        warnings.push(format!(
            "planned alloc p50 {:.0} ns slower than reactive {:.0} ns (best of {REPS}) — \
             scheduler noise on this runner?",
            m.planned_p50_ns, m.reactive_p50_ns
        ));
    }
    (failures, warnings)
}

fn main() {
    let cfg = workload();
    let trace = TraceGenerator::new(cfg).generate();
    eprintln!(
        "planned-vs-reactive steady-state alloc latency, {} events:",
        trace.events.len()
    );
    let m = measure(&trace);
    eprintln!(
        "  planned p50 {:.0} ns, reactive p50 {:.0} ns ({:.2}x), hit rate {:.4}",
        m.planned_p50_ns,
        m.reactive_p50_ns,
        m.reactive_p50_ns / m.planned_p50_ns,
        m.hit_rate
    );

    report::finish_with_warnings(
        "BENCH_PR10.json",
        |warnings| render_json(&m, warnings),
        |committed| check_against(committed, &m),
        || {
            format!(
                "planned p50 {:.0} ns vs reactive {:.0} ns, hit rate {:.4}",
                m.planned_p50_ns, m.reactive_p50_ns, m.hit_rate
            )
        },
    );
}
