//! Perf snapshot for the PR 7 fault-recovery layer: what riding out a
//! realistic transient driver-fault rate costs on a stitch-heavy pool.
//!
//! Two sweeps over the same single-thread mixed-size alloc/free churn
//! (live window of 8 tensors, 2–12 MiB, 2 MiB frag limit, so the large
//! path splits and stitches, with a `release_cached` defrag burst every
//! [`RELEASE_EVERY`] ops keeping pBlock teardown/rebuild driver traffic
//! in play) through a `PoolService` pool:
//!
//! * **fault-free** — no fault plan installed;
//! * **degraded** — a seeded probabilistic [`FaultPlan`] failing 1 in
//!   1000 driver calls; the service's retry/rescue pipeline absorbs the
//!   faults (the transactional core rolls each one back).
//!
//! Plus a direct **recovery latency** probe: the wall time of one
//! stitching allocation whose first `mem_map` is failed and retried,
//! against the identical fault-free allocation.
//!
//! Results are written as machine-readable `BENCH_PR7.json` (committed,
//! uploaded as a CI artifact). `bench_pr7 --check` re-runs the sweeps and
//! fails when recovery *structurally* regresses: degraded throughput
//! below [`MIN_RATIO_HARD`]× fault-free fails the gate, values between
//! [`MIN_RATIO_ACCEPT`] and the floor only warn (scheduler noise), and
//! order-of-magnitude drops against the committed snapshot fail as in
//! the other `bench_prN --check` gates.

use std::time::Instant;

use gmlake_alloc_api::{mib, AllocRequest};
use gmlake_bench::report;
use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig, FaultOp, FaultPlan};
use gmlake_runtime::{DeviceId, PoolHandle, PoolService};

/// Alloc/free pairs per throughput rep.
const OPS: usize = 12_000;
/// Live tensors kept in flight (oldest freed per new alloc).
const WINDOW: usize = 8;
/// Repetitions per throughput point; the best run is kept.
const REPS: usize = 5;
/// Probes of the single-fault recovery latency (median reported).
const RECOVERY_REPS: usize = 32;
/// A `release_cached` defrag burst every this many churn ops: without it
/// the steady state is pure cache reuse and never touches the driver, so
/// there would be nothing for the fault plan to fail. The bursts keep
/// pBlock teardown/rebuild (the fault-prone driver traffic) in play.
const RELEASE_EVERY: usize = 64;
/// Fault rate of the degraded sweep: 1 in this many driver calls.
const FAULT_ONE_IN: u64 = 1000;
/// Seed of the degraded sweep's xorshift fault schedule.
const FAULT_SEED: u64 = 0x7A57_FA57;
/// Acceptance bound: degraded throughput at least 0.8× fault-free. The
/// committed snapshot meets it; `--check` runs below it only warn until
/// [`MIN_RATIO_HARD`].
const MIN_RATIO_ACCEPT: f64 = 0.8;
/// Hard `--check` floor: below this the recovery path has structurally
/// regressed (e.g. a rollback started thrashing the pool) and CI fails.
const MIN_RATIO_HARD: f64 = 0.5;

/// The churn sizes; with a 2 MiB frag limit every one takes the large
/// (split/stitch) path.
const SIZES: [u64; 6] = [2, 6, 3, 12, 4, 8];

fn new_pool() -> (PoolService, PoolHandle, CudaDriver) {
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    let service = PoolService::new();
    let pool = service
        .register(
            DeviceId(0),
            Box::new(GmLakeAllocator::new(
                driver.clone(),
                GmLakeConfig::default().with_frag_limit(mib(2)),
            )),
        )
        .expect("fresh service");
    (service, pool, driver)
}

struct ChurnRun {
    ops_per_sec: f64,
    alloc_p50_ns: f64,
    alloc_p99_ns: f64,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

/// One churn rep on a fresh pool; `plan` arms the driver before the
/// timed region. Frees are retried (the service retries allocations, not
/// frees; the core rolls a faulted free back, so a retry is exact).
fn churn_once(plan: Option<&FaultPlan>) -> (ChurnRun, u64, u64) {
    let (_service, pool, driver) = new_pool();
    // Warm the pool's block caches so both sweeps measure the steady
    // state (first-touch pBlock creation is the same either way).
    let mut live = Vec::new();
    for i in 0..WINDOW {
        live.push(
            pool.allocate(AllocRequest::new(mib(SIZES[i % SIZES.len()])))
                .unwrap(),
        );
    }
    for a in live.drain(..) {
        pool.deallocate(a.id).unwrap();
    }
    if let Some(plan) = plan {
        driver.set_fault_plan(plan.clone());
    }

    let mut lat = Vec::with_capacity(OPS);
    let start = Instant::now();
    for i in 0..OPS {
        if i % RELEASE_EVERY == 0 {
            pool.release_cached();
        }
        let size = mib(SIZES[i % SIZES.len()]);
        let t0 = Instant::now();
        let a = pool
            .allocate(AllocRequest::new(size))
            .expect("retry pipeline absorbs transient faults");
        lat.push(t0.elapsed().as_nanos() as u64);
        live.push(a);
        if live.len() > WINDOW {
            let victim = live.remove(0);
            for attempt in 0.. {
                match pool.deallocate(victim.id) {
                    Ok(()) => break,
                    Err(_) if attempt < 3 => continue,
                    Err(e) => panic!("free kept faulting: {e}"),
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    for victim in live.drain(..) {
        let _ = pool.deallocate(victim.id);
    }
    driver.clear_fault_plan();
    lat.sort_unstable();
    let run = ChurnRun {
        ops_per_sec: (OPS * 2) as f64 / secs,
        alloc_p50_ns: percentile(&lat, 0.50),
        alloc_p99_ns: percentile(&lat, 0.99),
    };
    let retries = pool.fault_stats().retries;
    (run, driver.stats().injected_faults, retries)
}

/// Best of [`REPS`] churn reps (by throughput), keeping that rep's
/// latency percentiles and fault counters.
fn churn(plan: Option<&FaultPlan>) -> (ChurnRun, u64, u64) {
    (0..REPS)
        .map(|_| churn_once(plan))
        .max_by(|a, b| a.0.ops_per_sec.total_cmp(&b.0.ops_per_sec))
        .expect("REPS > 0")
}

/// Median wall time of one 10 MiB stitching allocation over cached 4+6
/// MiB pBlocks, with and without its first `mem_map` call failing.
fn recovery_probe() -> (f64, f64) {
    let sample = |faulted: bool| -> f64 {
        let mut times: Vec<u64> = (0..RECOVERY_REPS)
            .map(|_| {
                let (_service, pool, driver) = new_pool();
                let a = pool.allocate(AllocRequest::new(mib(4))).unwrap();
                let b = pool.allocate(AllocRequest::new(mib(6))).unwrap();
                pool.deallocate(a.id).unwrap();
                pool.deallocate(b.id).unwrap();
                if faulted {
                    driver.set_fault_plan(FaultPlan::new().fail_nth(FaultOp::Map, 1));
                }
                let t0 = Instant::now();
                let c = pool.allocate(AllocRequest::new(mib(10))).unwrap();
                let dt = t0.elapsed().as_nanos() as u64;
                if faulted {
                    assert_eq!(driver.stats().injected_faults, 1, "probe missed the map");
                }
                pool.deallocate(c.id).unwrap();
                dt
            })
            .collect();
        times.sort_unstable();
        times[times.len() / 2] as f64 / 1_000.0
    };
    (sample(false), sample(true))
}

fn render_json(
    clean: &ChurnRun,
    degraded: &ChurnRun,
    injected: u64,
    retries: u64,
    clean_us: f64,
    recovery_us: f64,
) -> String {
    let ratio = degraded.ops_per_sec / clean.ops_per_sec;
    let mut json = String::from("{\n  \"schema\": \"gmlake-bench-pr7/v1\",\n");
    json.push_str(&format!(
        "  \"fault_free_ops_per_sec\": {:.0},\n  \"fault_free_alloc_p50_ns\": {:.0},\n  \
         \"fault_free_alloc_p99_ns\": {:.0},\n",
        clean.ops_per_sec, clean.alloc_p50_ns, clean.alloc_p99_ns
    ));
    json.push_str(&format!(
        "  \"degraded_ops_per_sec\": {:.0},\n  \"degraded_alloc_p50_ns\": {:.0},\n  \
         \"degraded_alloc_p99_ns\": {:.0},\n  \"degraded_ratio\": {ratio:.3},\n",
        degraded.ops_per_sec, degraded.alloc_p50_ns, degraded.alloc_p99_ns
    ));
    json.push_str(&format!(
        "  \"injected_faults\": {injected},\n  \"service_retries\": {retries},\n  \
         \"recovery_clean_alloc_us\": {clean_us:.1},\n  \
         \"recovery_faulted_alloc_us\": {recovery_us:.1},\n"
    ));
    json.push_str(&format!(
        "  \"notes\": \"single-thread mixed 2-12 MiB alloc/free churn (live window {WINDOW}, \
         2 MiB frag limit, split/stitch path, release_cached defrag burst every \
         {RELEASE_EVERY} ops so pBlock teardown/rebuild driver traffic stays in play) \
         through a PoolService pool on the simulated device; degraded run injects \
         1-in-{FAULT_ONE_IN} transient faults across every driver entry point (seed \
         {FAULT_SEED:#x}) and the service retry pipeline absorbs them. Recovery probe: median wall time of one 10 MiB stitch over cached 4+6 MiB \
         pBlocks with its first mem_map failed+rolled back+retried vs fault-free. \
         Acceptance: degraded_ratio >= {MIN_RATIO_ACCEPT}\"\n}}\n"
    ));
    json
}

fn check_against(committed: &str, clean: &ChurnRun, degraded: &ChurnRun) -> Vec<String> {
    let mut failures = Vec::new();
    let ratio = degraded.ops_per_sec / clean.ops_per_sec;
    if ratio < MIN_RATIO_HARD {
        failures.push(format!(
            "degraded throughput fell to {ratio:.3}x of fault-free (hard floor \
             {MIN_RATIO_HARD}x; acceptance bound {MIN_RATIO_ACCEPT}x)"
        ));
    } else if ratio < MIN_RATIO_ACCEPT {
        eprintln!(
            "warning: degraded throughput {ratio:.3}x of fault-free is below the \
             {MIN_RATIO_ACCEPT}x acceptance bound (scheduler noise on an oversubscribed \
             runner?)"
        );
    }
    failures.extend(report::throughput_guard(
        committed,
        "fault_free_ops_per_sec",
        clean.ops_per_sec,
        "fault-free churn throughput",
        "ops/s",
    ));
    failures.extend(report::latency_guard(
        committed,
        "degraded_alloc_p99_ns",
        degraded.alloc_p99_ns,
        "degraded alloc p99",
    ));
    failures
}

fn main() {
    eprintln!("fault-recovery churn sweep, {OPS} alloc/free pairs per rep:");
    let (clean, _, _) = churn(None);
    eprintln!(
        "  fault-free: {:>10.0} ops/s, alloc p50 {:>7.0} ns, p99 {:>8.0} ns",
        clean.ops_per_sec, clean.alloc_p50_ns, clean.alloc_p99_ns
    );
    let plan = FaultPlan::new().with_probabilistic(FAULT_SEED, FAULT_ONE_IN);
    let (degraded, injected, retries) = churn(Some(&plan));
    eprintln!(
        "  degraded:   {:>10.0} ops/s, alloc p50 {:>7.0} ns, p99 {:>8.0} ns \
         ({:.3}x, {injected} faults injected, {retries} retried)",
        degraded.ops_per_sec,
        degraded.alloc_p50_ns,
        degraded.alloc_p99_ns,
        degraded.ops_per_sec / clean.ops_per_sec,
    );
    let (clean_us, recovery_us) = recovery_probe();
    eprintln!(
        "  recovery:   one faulted+retried 10 MiB stitch {recovery_us:.1} us \
         (fault-free {clean_us:.1} us)"
    );

    report::finish(
        "BENCH_PR7.json",
        || render_json(&clean, &degraded, injected, retries, clean_us, recovery_us),
        |committed| check_against(committed, &clean, &degraded),
        || {
            format!(
                "degraded throughput {:.3}x of fault-free, recovery alloc {recovery_us:.1} us",
                degraded.ops_per_sec / clean.ops_per_sec
            )
        },
    );
}
