//! Diagnostic: per-workload GMLake state counters and convergence flag.
//! Not a paper figure — used to verify that the S1-only steady state
//! (§4.2.2) is reached on each evaluation workload.

use gmlake_core::{GmLakeAllocator, GmLakeConfig};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
use gmlake_workload::{ModelSpec, Replayer, StrategySet, TraceGenerator, TrainConfig};

fn probe(model: ModelSpec, s: StrategySet) {
    let cfg = TrainConfig::new(model, s).with_iterations(6);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    let report = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
    let c = lake.state_counters();
    println!(
        "{:<28} conv={:<5} S1={:<6} S2={:<4} S3={:<5} S4={:<4} stitch={:<5} split={:<5} evict={:<5} alloc_ms={:<8.1} {}",
        cfg.label(),
        lake.is_converged(),
        c.exact,
        c.single,
        c.multi,
        c.insufficient,
        c.stitches,
        c.splits,
        c.evictions,
        report.allocator_ns as f64 / 1e6,
        if report.outcome.is_completed() { "ok" } else { "OOM" },
    );
    println!(
        "    non-exact per iteration: {:?}",
        lake.non_exact_history()
    );
}

fn main() {
    for s in StrategySet::FIG10_SWEEP {
        probe(ModelSpec::opt_1_3b(), s);
    }
    probe(ModelSpec::opt_13b(), StrategySet::LR);
    probe(ModelSpec::opt_13b(), StrategySet::R);
}
