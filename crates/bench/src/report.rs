//! Shared scaffolding for the `bench_prN` perf-snapshot binaries.
//!
//! Every `bench_prN` binary follows one protocol:
//!
//! * **snapshot mode** (no args) — run the sweep, render a hand-rolled
//!   JSON document, write it to `BENCH_PRN.json` (committed to the repo,
//!   uploaded as a CI artifact), and echo it to stdout;
//! * **`--check` mode** — re-run the sweep, compare it against the
//!   committed snapshot, print `PERF REGRESSION: …` lines and exit
//!   non-zero on hard failures, or a one-line pass summary on success.
//!
//! [`finish`] implements that tail end once; the binaries keep only what
//! is genuinely theirs (the sweep, the JSON body, the acceptance bounds).
//! [`throughput_guard`] and [`latency_guard`] implement the shared
//! order-of-magnitude drift checks against a committed snapshot field.

pub use crate::perf::extract_field;

/// Order-of-magnitude guard used by every `--check` against its snapshot:
/// wall-clock numbers are host-dependent, so only a ≥ 10× drift against
/// the committed value is treated as a hard structural regression.
pub const MAX_REGRESSION: f64 = 10.0;

/// True when the binary was invoked with `--check`.
pub fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// Guards a throughput-like snapshot field (bigger is better): returns a
/// failure line when `current` fell more than [`MAX_REGRESSION`]× below
/// the first `field` occurrence in `committed`. `what` names the quantity
/// (e.g. `"1-thread sharded throughput"`); `unit` its unit (e.g.
/// `"ops/s"`).
pub fn throughput_guard(
    committed: &str,
    field: &str,
    current: f64,
    what: &str,
    unit: &str,
) -> Option<String> {
    let baseline = extract_field(committed, field)?;
    if current * MAX_REGRESSION < baseline {
        Some(format!(
            "{what} regressed {:.1}x (snapshot {baseline:.0} {unit}, now {current:.0} {unit})",
            baseline / current
        ))
    } else {
        None
    }
}

/// Guards a latency-like snapshot field (smaller is better): returns a
/// failure line when `current` rose more than [`MAX_REGRESSION`]× above
/// the first `field` occurrence in `committed`.
pub fn latency_guard(committed: &str, field: &str, current: f64, what: &str) -> Option<String> {
    let baseline = extract_field(committed, field)?;
    if current > baseline * MAX_REGRESSION {
        Some(format!(
            "{what} regressed {:.1}x (snapshot {baseline:.1} ns, now {current:.1} ns)",
            current / baseline
        ))
    } else {
        None
    }
}

/// The shared tail of every `bench_prN` `main`.
///
/// In `--check` mode, reads the committed `snapshot` file (its absence is
/// fatal — the gate needs a baseline), evaluates `check` against it, and
/// either prints `perf check passed: {pass_summary}` or one
/// `PERF REGRESSION:` line per failure followed by `exit(1)`. Otherwise
/// renders the JSON, writes it to `snapshot`, and echoes it to stdout.
pub fn finish(
    snapshot: &str,
    render_json: impl FnOnce() -> String,
    check: impl FnOnce(&str) -> Vec<String>,
    pass_summary: impl FnOnce() -> String,
) {
    if check_mode() {
        let committed = std::fs::read_to_string(snapshot).unwrap_or_else(|e| {
            panic!("--check needs the committed {snapshot} in the working directory: {e}")
        });
        let failures = check(&committed);
        if failures.is_empty() {
            println!("perf check passed: {}", pass_summary());
            return;
        }
        for f in &failures {
            eprintln!("PERF REGRESSION: {f}");
        }
        std::process::exit(1);
    }

    let json = render_json();
    std::fs::write(snapshot, &json).unwrap_or_else(|e| panic!("write {snapshot}: {e}"));
    println!("{json}");
    eprintln!("wrote {snapshot}");
}

/// Like [`finish`], but the check step also reports *warnings*: non-fatal
/// observations (typically scheduler noise on an oversubscribed runner)
/// that must survive a discarded stderr. Each warning prints exactly once,
/// and in `--check` mode a non-empty warning set re-renders the report —
/// the freshly measured sweep plus a `"warnings"` array — over the
/// snapshot file in the working directory, so the uploaded CI artifact
/// records both the measured values and why they were tolerated. The
/// committed snapshot in git is never touched by `--check`; only the
/// working-directory copy that CI uploads is.
///
/// `render_json` receives the warnings to embed (empty in snapshot mode —
/// a committed baseline never starts life with a warning).
pub fn finish_with_warnings(
    snapshot: &str,
    render_json: impl FnOnce(&[String]) -> String,
    check: impl FnOnce(&str) -> (Vec<String>, Vec<String>),
    pass_summary: impl FnOnce() -> String,
) {
    if check_mode() {
        let committed = std::fs::read_to_string(snapshot).unwrap_or_else(|e| {
            panic!("--check needs the committed {snapshot} in the working directory: {e}")
        });
        let (failures, warnings) = check(&committed);
        for w in &warnings {
            eprintln!("warning: {w}");
        }
        if failures.is_empty() {
            if !warnings.is_empty() {
                let json = render_json(&warnings);
                std::fs::write(snapshot, &json).unwrap_or_else(|e| panic!("write {snapshot}: {e}"));
                eprintln!("recorded {} warning(s) into {snapshot}", warnings.len());
            }
            println!("perf check passed: {}", pass_summary());
            return;
        }
        for f in &failures {
            eprintln!("PERF REGRESSION: {f}");
        }
        std::process::exit(1);
    }

    let json = render_json(&[]);
    std::fs::write(snapshot, &json).unwrap_or_else(|e| panic!("write {snapshot}: {e}"));
    println!("{json}");
    eprintln!("wrote {snapshot}");
}

/// Renders a `"warnings": [...]` JSON array line (with trailing comma and
/// newline) from plain-text warnings, escaping quotes and backslashes.
pub fn warnings_json(warnings: &[String]) -> String {
    let items: Vec<String> = warnings
        .iter()
        .map(|w| format!("\"{}\"", w.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("  \"warnings\": [{}],\n", items.join(", "))
}
