//! The defragmentation scheduler: pluggable policies deciding *when* a pool
//! should run its [`compact`](gmlake_alloc_api::AllocatorCore::compact) or
//! [`release_cached`](gmlake_alloc_api::AllocatorCore::release_cached) hook.
//!
//! The design mirrors the step-driven defrag managers of production training
//! stacks (e.g. torchtitan's `MemoryDefragManager`): instead of waiting for
//! an out-of-memory failure to trigger the allocator's reactive fallback,
//! the runtime observes each pool at iteration boundaries (and, optionally,
//! from a background sweep thread) and fires a defrag pass proactively.
//!
//! Three policies cover the spectrum:
//!
//! * [`PeriodicPolicy`] — every N training iterations, unconditionally;
//! * [`FragThresholdPolicy`] — when instantaneous fragmentation crosses a
//!   threshold (with a reserved-bytes floor so empty pools are left alone);
//! * [`OomPressurePolicy`] — never proactively; only rescues failed
//!   allocations.
//!
//! Custom policies implement [`DefragPolicy`].

use std::collections::HashMap;

use parking_lot::Mutex;

use gmlake_alloc_api::{DeviceAllocator, MemStats};

use crate::service::DeviceId;

/// What a policy asks the runtime to do to a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefragAction {
    /// Leave the pool alone.
    None,
    /// Run the allocator's proactive defrag/GC pass
    /// ([`AllocatorCore::compact`](gmlake_alloc_api::AllocatorCore::compact)).
    Compact,
    /// Surrender every cached structure
    /// ([`AllocatorCore::release_cached`](gmlake_alloc_api::AllocatorCore::release_cached)), like
    /// `torch.cuda.empty_cache()`.
    ReleaseCached,
}

/// A point-in-time view of one pool, handed to policies.
#[derive(Debug, Clone, Copy)]
pub struct PoolObservation {
    /// Which device the pool manages.
    pub device: DeviceId,
    /// Process-unique id of the pool's *registration*. Re-registering a
    /// device yields a new epoch, so per-pool policy state keyed on
    /// `(device, pool_epoch)` cannot leak from a dead pool to its
    /// successor — and a stale observation of the old pool cannot be
    /// mistaken for the new one.
    pub pool_epoch: u64,
    /// Training iterations completed through this pool's handles.
    pub iteration: u64,
    /// The pool's memory counters.
    pub stats: MemStats,
    /// Instantaneous fragmentation ratio (`1 − active/reserved`), as
    /// reported by [`AllocatorCore::fragmentation`](gmlake_alloc_api::AllocatorCore::fragmentation).
    pub fragmentation: f64,
}

/// Decides when pools defragment. Implementations may keep per-device state
/// (they are called under the scheduler's policy lock).
pub trait DefragPolicy: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Called once per completed training iteration of each pool, and by
    /// background sweeps. Must be idempotent per `(device, iteration)`:
    /// sweeps may observe the same iteration repeatedly.
    fn on_iteration(&mut self, obs: &PoolObservation) -> DefragAction;

    /// Called when an allocation on the pool fails with out-of-memory,
    /// before the failure is surfaced to the caller. Returning an action
    /// other than [`DefragAction::None`] makes the handle apply it and
    /// retry the allocation once.
    fn on_oom(&mut self, obs: &PoolObservation) -> DefragAction {
        let _ = obs;
        DefragAction::ReleaseCached
    }
}

/// Fires [`DefragAction::Compact`] every `every` iterations of each device.
#[derive(Debug)]
pub struct PeriodicPolicy {
    every: u64,
    action: DefragAction,
    /// Per device: the pool epoch the mark belongs to, and the iteration
    /// the policy last fired at.
    last_fired: HashMap<DeviceId, (u64, u64)>,
}

impl PeriodicPolicy {
    /// Compacts each pool every `every` iterations (`every` ≥ 1).
    pub fn new(every: u64) -> Self {
        assert!(every > 0, "period must be at least one iteration");
        PeriodicPolicy {
            every,
            action: DefragAction::Compact,
            last_fired: HashMap::new(),
        }
    }

    /// Replaces the fired action (e.g. [`DefragAction::ReleaseCached`] for
    /// a full `empty_cache`-style trim).
    #[must_use]
    pub fn with_action(mut self, action: DefragAction) -> Self {
        self.action = action;
        self
    }
}

impl DefragPolicy for PeriodicPolicy {
    fn name(&self) -> &'static str {
        "periodic"
    }

    fn on_iteration(&mut self, obs: &PoolObservation) -> DefragAction {
        if obs.iteration == 0 {
            return DefragAction::None;
        }
        // A mark from a different pool epoch belongs to a dead pool that
        // was registered under the same DeviceId: start the new pool's
        // cadence from zero. (Keying on the epoch — rather than inferring
        // re-registration from a backwards iteration — keeps concurrent
        // stale observations of the *same* pool harmless: they see
        // `iteration < last + every` and decline.)
        let last = match self.last_fired.get(&obs.device) {
            Some(&(epoch, iteration)) if epoch == obs.pool_epoch => iteration,
            _ => 0,
        };
        if obs.iteration >= last + self.every {
            self.last_fired
                .insert(obs.device, (obs.pool_epoch, obs.iteration));
            self.action
        } else {
            DefragAction::None
        }
    }
}

/// Fires [`DefragAction::Compact`] when a pool's instantaneous
/// fragmentation exceeds a threshold (and the pool is big enough to be
/// worth the trouble).
#[derive(Debug, Clone)]
pub struct FragThresholdPolicy {
    max_frag: f64,
    min_reserved: u64,
}

impl FragThresholdPolicy {
    /// Compacts pools whose fragmentation exceeds `max_frag` (a ratio in
    /// `[0, 1]`) while holding at least `min_reserved` bytes.
    pub fn new(max_frag: f64, min_reserved: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&max_frag),
            "fragmentation threshold must be a ratio"
        );
        FragThresholdPolicy {
            max_frag,
            min_reserved,
        }
    }
}

impl DefragPolicy for FragThresholdPolicy {
    fn name(&self) -> &'static str {
        "frag-threshold"
    }

    fn on_iteration(&mut self, obs: &PoolObservation) -> DefragAction {
        if obs.fragmentation > self.max_frag && obs.stats.reserved_bytes >= self.min_reserved {
            DefragAction::Compact
        } else {
            DefragAction::None
        }
    }
}

/// Never defragments proactively; rescues OOM-failing allocations with a
/// full cache release. This is the PyTorch/GMLake built-in behaviour lifted
/// to the service level — useful as the control arm in experiments.
#[derive(Debug, Clone, Default)]
pub struct OomPressurePolicy;

impl DefragPolicy for OomPressurePolicy {
    fn name(&self) -> &'static str {
        "oom-pressure"
    }

    fn on_iteration(&mut self, _obs: &PoolObservation) -> DefragAction {
        DefragAction::None
    }
}

/// Cumulative counters of scheduler activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragStats {
    /// Policy evaluations (iteration boundaries + sweeps + OOM rescues).
    pub evaluations: u64,
    /// `Compact` actions applied.
    pub compactions: u64,
    /// `ReleaseCached` actions applied.
    pub releases: u64,
    /// Physical bytes reclaimed by applied actions.
    pub bytes_reclaimed: u64,
    /// OOM rescues attempted (an action applied on the allocation path).
    pub oom_rescues: u64,
}

/// Evaluates a [`DefragPolicy`] over pools and records what it did.
///
/// One scheduler is shared by every handle of a
/// [`PoolService`](crate::PoolService); its internal locks are held only
/// while *deciding*, never while *acting* on an allocator, so policy
/// evaluation cannot deadlock against pool mutexes.
pub struct DefragScheduler {
    policy: Mutex<Box<dyn DefragPolicy>>,
    name: &'static str,
    stats: Mutex<DefragStats>,
}

impl std::fmt::Debug for DefragScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefragScheduler")
            .field("policy", &self.name)
            .field("stats", &self.stats())
            .finish()
    }
}

impl DefragScheduler {
    /// Wraps a policy.
    pub fn new(policy: impl DefragPolicy + 'static) -> Self {
        let name = policy.name();
        DefragScheduler {
            policy: Mutex::new(Box::new(policy)),
            name,
            stats: Mutex::new(DefragStats::default()),
        }
    }

    /// Shorthand for [`PeriodicPolicy`].
    pub fn periodic(every: u64) -> Self {
        DefragScheduler::new(PeriodicPolicy::new(every))
    }

    /// Shorthand for [`FragThresholdPolicy`].
    pub fn frag_threshold(max_frag: f64, min_reserved: u64) -> Self {
        DefragScheduler::new(FragThresholdPolicy::new(max_frag, min_reserved))
    }

    /// Shorthand for [`OomPressurePolicy`].
    pub fn oom_pressure() -> Self {
        DefragScheduler::new(OomPressurePolicy)
    }

    /// The wrapped policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.name
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> DefragStats {
        *self.stats.lock()
    }

    /// Asks the policy what to do after an iteration (or during a sweep).
    pub(crate) fn decide_iteration(&self, obs: &PoolObservation) -> DefragAction {
        self.stats.lock().evaluations += 1;
        self.policy.lock().on_iteration(obs)
    }

    /// Asks the policy what to do about an OOM-failing allocation.
    pub(crate) fn decide_oom(&self, obs: &PoolObservation) -> DefragAction {
        self.stats.lock().evaluations += 1;
        self.policy.lock().on_oom(obs)
    }

    /// Records an applied action and the bytes it reclaimed.
    pub(crate) fn record(&self, action: DefragAction, bytes: u64) {
        let mut stats = self.stats.lock();
        match action {
            DefragAction::None => {}
            DefragAction::Compact => stats.compactions += 1,
            DefragAction::ReleaseCached => stats.releases += 1,
        }
        stats.bytes_reclaimed += bytes;
    }

    /// Records an applied OOM rescue (an action actually taken on the
    /// allocation path, as opposed to a policy that declined to act).
    pub(crate) fn record_oom_rescue(&self, action: DefragAction, bytes: u64) {
        self.stats.lock().oom_rescues += 1;
        self.record(action, bytes);
    }
}

/// Applies an action to a pool's allocator front-end, returning the bytes
/// reclaimed. Both actions flush the front-end's shard caches first, so a
/// defrag pass always sees every cached byte.
pub(crate) fn apply_action(action: DefragAction, alloc: &DeviceAllocator) -> u64 {
    match action {
        DefragAction::None => 0,
        DefragAction::Compact => alloc.compact(),
        DefragAction::ReleaseCached => alloc.release_cached(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_epoch(
        device: u32,
        pool_epoch: u64,
        iteration: u64,
        active: u64,
        reserved: u64,
    ) -> PoolObservation {
        let mut stats = MemStats::default();
        stats.on_alloc(active, active);
        stats.set_reserved(reserved);
        PoolObservation {
            device: DeviceId(device),
            pool_epoch,
            iteration,
            stats,
            fragmentation: if reserved == 0 {
                0.0
            } else {
                1.0 - active as f64 / reserved as f64
            },
        }
    }

    fn obs(device: u32, iteration: u64, active: u64, reserved: u64) -> PoolObservation {
        obs_epoch(device, 1, iteration, active, reserved)
    }

    #[test]
    fn periodic_fires_on_cadence_per_device() {
        let mut p = PeriodicPolicy::new(3);
        assert_eq!(p.on_iteration(&obs(0, 0, 0, 0)), DefragAction::None);
        assert_eq!(p.on_iteration(&obs(0, 1, 0, 0)), DefragAction::None);
        assert_eq!(p.on_iteration(&obs(0, 2, 0, 0)), DefragAction::None);
        assert_eq!(p.on_iteration(&obs(0, 3, 0, 0)), DefragAction::Compact);
        // Idempotent per iteration: a sweep re-observing iteration 3 must
        // not fire again.
        assert_eq!(p.on_iteration(&obs(0, 3, 0, 0)), DefragAction::None);
        assert_eq!(p.on_iteration(&obs(0, 5, 0, 0)), DefragAction::None);
        assert_eq!(p.on_iteration(&obs(0, 6, 0, 0)), DefragAction::Compact);
        // Devices have independent cadences.
        assert_eq!(p.on_iteration(&obs(1, 2, 0, 0)), DefragAction::None);
        assert_eq!(p.on_iteration(&obs(1, 3, 0, 0)), DefragAction::Compact);
    }

    #[test]
    fn periodic_action_is_configurable() {
        let mut p = PeriodicPolicy::new(1).with_action(DefragAction::ReleaseCached);
        assert_eq!(
            p.on_iteration(&obs(0, 1, 0, 0)),
            DefragAction::ReleaseCached
        );
    }

    #[test]
    #[should_panic(expected = "period")]
    fn periodic_rejects_zero_period() {
        let _ = PeriodicPolicy::new(0);
    }

    #[test]
    fn periodic_restarts_cadence_for_a_reregistered_device() {
        let mut p = PeriodicPolicy::new(3);
        assert_eq!(
            p.on_iteration(&obs_epoch(0, 1, 3, 0, 0)),
            DefragAction::Compact
        );
        // The device was re-registered with a fresh pool (new epoch): its
        // iteration counter restarted, and the stale mark from the dead
        // pool must not suppress the new cadence.
        assert_eq!(
            p.on_iteration(&obs_epoch(0, 2, 1, 0, 0)),
            DefragAction::None
        );
        assert_eq!(
            p.on_iteration(&obs_epoch(0, 2, 3, 0, 0)),
            DefragAction::Compact
        );
    }

    #[test]
    fn periodic_ignores_stale_observation_of_the_same_pool() {
        // A background sweep may capture an observation just before a
        // boundary thread advances the counter and fires. The stale,
        // lower-iteration observation of the SAME pool must be a no-op —
        // not be mistaken for a re-registration (which would clear the
        // mark and double-fire).
        let mut p = PeriodicPolicy::new(100);
        assert_eq!(
            p.on_iteration(&obs_epoch(0, 1, 100, 0, 0)),
            DefragAction::Compact
        );
        assert_eq!(
            p.on_iteration(&obs_epoch(0, 1, 99, 0, 0)),
            DefragAction::None
        );
        assert_eq!(
            p.on_iteration(&obs_epoch(0, 1, 101, 0, 0)),
            DefragAction::None,
            "cadence unbroken: next fire is at 200"
        );
        assert_eq!(
            p.on_iteration(&obs_epoch(0, 1, 200, 0, 0)),
            DefragAction::Compact
        );
    }

    #[test]
    fn declined_oom_rescue_is_not_counted_as_a_rescue() {
        struct Decline;
        impl DefragPolicy for Decline {
            fn name(&self) -> &'static str {
                "decline"
            }
            fn on_iteration(&mut self, _obs: &PoolObservation) -> DefragAction {
                DefragAction::None
            }
            fn on_oom(&mut self, _obs: &PoolObservation) -> DefragAction {
                DefragAction::None
            }
        }
        let s = DefragScheduler::new(Decline);
        assert_eq!(s.decide_oom(&obs(0, 1, 0, 1000)), DefragAction::None);
        let st = s.stats();
        assert_eq!(st.evaluations, 1);
        assert_eq!(st.oom_rescues, 0, "no action applied, no rescue counted");
        // An applied rescue counts once, through record_oom_rescue.
        s.record_oom_rescue(DefragAction::ReleaseCached, 512);
        let st = s.stats();
        assert_eq!(st.oom_rescues, 1);
        assert_eq!(st.releases, 1);
        assert_eq!(st.bytes_reclaimed, 512);
    }

    #[test]
    fn threshold_fires_only_above_threshold_and_floor() {
        let mut p = FragThresholdPolicy::new(0.3, 1000);
        // 50% fragmented and big enough: fire.
        assert_eq!(p.on_iteration(&obs(0, 1, 500, 1000)), DefragAction::Compact);
        // 10% fragmented: leave alone.
        assert_eq!(p.on_iteration(&obs(0, 2, 900, 1000)), DefragAction::None);
        // 50% fragmented but tiny: leave alone.
        assert_eq!(p.on_iteration(&obs(0, 3, 400, 800)), DefragAction::None);
        // Empty pool: leave alone.
        assert_eq!(p.on_iteration(&obs(0, 4, 0, 0)), DefragAction::None);
    }

    #[test]
    fn oom_pressure_only_acts_on_oom() {
        let mut p = OomPressurePolicy;
        assert_eq!(p.on_iteration(&obs(0, 1, 0, 1000)), DefragAction::None);
        assert_eq!(p.on_oom(&obs(0, 1, 0, 1000)), DefragAction::ReleaseCached);
    }

    #[test]
    fn scheduler_counts_decisions_and_actions() {
        let s = DefragScheduler::periodic(2);
        assert_eq!(s.policy_name(), "periodic");
        assert_eq!(s.decide_iteration(&obs(0, 1, 0, 0)), DefragAction::None);
        assert_eq!(s.decide_iteration(&obs(0, 2, 0, 0)), DefragAction::Compact);
        s.record(DefragAction::Compact, 4096);
        s.record(DefragAction::ReleaseCached, 1024);
        s.record(DefragAction::None, 0);
        let st = s.stats();
        assert_eq!(st.evaluations, 2);
        assert_eq!(st.compactions, 1);
        assert_eq!(st.releases, 1);
        assert_eq!(st.bytes_reclaimed, 5120);
        assert_eq!(st.oom_rescues, 0);
    }
}
