//! Fault-recovery policy for the pool service: bounded retries with
//! backoff for rolled-back driver faults, the staged OOM rescue pipeline,
//! and the stitch circuit breaker.
//!
//! The allocator cores below the service are *transactional*: a driver
//! call that fails mid-operation is unwound and surfaces as
//! [`AllocError::DriverFault`](gmlake_alloc_api::AllocError::DriverFault)
//! with the pool exactly as it was. That makes a retry legitimate — and
//! the service is the right place to decide how hard to try:
//!
//! * **transient faults** are retried up to [`FaultPolicy::max_retries`]
//!   times with exponential backoff;
//! * **repeated stitch-path faults** trip a circuit breaker that disables
//!   virtual-memory stitching on the pool
//!   ([`AllocatorCore::set_stitch_enabled`](gmlake_alloc_api::AllocatorCore::set_stitch_enabled))
//!   for a cooldown measured in allocation attempts, after which stitching
//!   is re-probed (half-open: one more fault re-opens immediately, one
//!   success closes fully);
//! * **out-of-memory** runs a staged rescue pipeline — flush the shard
//!   caches, drain the pending event rings, compact, run the
//!   owner-installed tenant [`RescueHook`] (if any), then the cross-pool
//!   policy rescue — retrying after every stage that reclaimed anything.

/// Tuning knobs for the pool service's fault recovery (one per
/// [`PoolService`](crate::PoolService), shared by all its pools).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Retries of an allocation that failed with a rolled-back
    /// [`DriverFault`](gmlake_alloc_api::AllocError::DriverFault).
    pub max_retries: u32,
    /// Base backoff before the first retry, in microseconds; doubles per
    /// attempt (capped at 64×). `0` disables sleeping between retries.
    pub backoff_us: u64,
    /// Consecutive driver faults that trip the stitch circuit breaker.
    pub breaker_threshold: u32,
    /// Allocation attempts the breaker stays open before stitching is
    /// re-probed.
    pub breaker_cooldown: u64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: 3,
            backoff_us: 20,
            breaker_threshold: 3,
            breaker_cooldown: 32,
        }
    }
}

impl FaultPolicy {
    /// A policy that never retries, never sleeps and never trips the
    /// breaker — the pre-recovery behavior, for A/B measurements.
    pub fn disabled() -> Self {
        FaultPolicy {
            max_retries: 0,
            backoff_us: 0,
            breaker_threshold: u32::MAX,
            breaker_cooldown: 0,
        }
    }

    /// Backoff before retry number `attempt` (1-based), in microseconds.
    pub(crate) fn backoff_for(&self, attempt: u32) -> u64 {
        self.backoff_us << attempt.saturating_sub(1).min(6)
    }
}

/// A pool-owner-supplied reclamation stage in the staged OOM rescue
/// pipeline (installed via
/// [`PoolHandle::set_rescue_hook`](crate::PoolHandle::set_rescue_hook)).
///
/// The service's built-in stages (flush, drain, compact) only see
/// *memory*; layers above the pool — the serving subsystem's tenant
/// registry in particular — know which cached bytes belong to *whom* and
/// can release idle tenants' working sets before an out-of-memory error
/// reaches an active one. The hook runs as stage 4, after the pool-local
/// stages and before the cross-pool scheduler rescue.
///
/// `needed` is the size of the failing request in bytes. Return the
/// number of bytes the hook released (an estimate is fine — any non-zero
/// return triggers a retry of the allocation). Must not allocate on the
/// pool it rescues and must not block: the failing caller is waiting.
pub trait RescueHook: Send + Sync + std::fmt::Debug {
    /// Tries to release at least `needed` bytes; returns bytes released.
    fn rescue(&self, needed: u64) -> u64;
}

/// Per-pool circuit-breaker and recovery bookkeeping (behind the pool
/// entry's mutex; all paths touching it are failure paths or one lock per
/// allocation attempt).
#[derive(Debug, Default)]
pub(crate) struct BreakerState {
    /// Consecutive allocation attempts that ended in a driver fault.
    pub consecutive: u32,
    /// Whether the breaker is open (stitching disabled on the pool).
    pub open: bool,
    /// Allocation attempts left until the open breaker re-probes.
    pub cooldown_left: u64,
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Total allocation attempts that ended in a driver fault.
    pub faults: u64,
    /// Retries issued for faulted allocations.
    pub retries: u64,
    /// Allocations saved by the staged OOM rescue pipeline.
    pub rescues: u64,
}

/// Snapshot of one pool's fault-recovery counters
/// (see [`PoolHandle::fault_stats`](crate::PoolHandle::fault_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRecoveryStats {
    /// Allocation attempts that ended in a rolled-back driver fault.
    pub faults: u64,
    /// Retries issued for faulted allocations.
    pub retries: u64,
    /// Times the stitch circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Whether the breaker is currently open (stitching disabled).
    pub breaker_open: bool,
    /// Allocations saved by the staged OOM rescue pipeline.
    pub rescues: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FaultPolicy {
            backoff_us: 10,
            ..FaultPolicy::default()
        };
        assert_eq!(p.backoff_for(1), 10);
        assert_eq!(p.backoff_for(2), 20);
        assert_eq!(p.backoff_for(3), 40);
        assert_eq!(p.backoff_for(100), 10 << 6, "shift is capped");
        assert_eq!(FaultPolicy::disabled().backoff_for(5), 0);
    }
}
