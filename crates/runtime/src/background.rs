//! Background defragmentation: a thread that periodically sweeps every pool
//! of a service.
//!
//! Iteration-boundary hooks cover the common training loop, but a serving
//! deployment has no iteration boundaries — pools fragment silently between
//! requests. The [`BackgroundDefragger`] closes that gap: it wakes on a
//! fixed wall-clock interval and runs
//! [`PoolService::defrag_sweep`](crate::PoolService::defrag_sweep), letting
//! the service's policy decide per pool.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::PoolService;

#[derive(Default)]
struct Signal {
    stopped: Mutex<bool>,
    condvar: Condvar,
}

/// A background thread sweeping a [`PoolService`] on an interval.
///
/// The thread stops (and is joined) when the defragger is dropped or
/// [`BackgroundDefragger::stop`] is called; both are prompt — the sleep is
/// interruptible, so shutdown does not wait out the interval.
#[derive(Debug)]
pub struct BackgroundDefragger {
    signal: Arc<Signal>,
    thread: Option<JoinHandle<u64>>,
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal").finish_non_exhaustive()
    }
}

impl BackgroundDefragger {
    /// Spawns the sweep thread. Sweeps are no-ops unless `service` was
    /// built with a scheduler
    /// ([`PoolService::with_scheduler`](crate::PoolService::with_scheduler)).
    pub fn spawn(service: PoolService, interval: Duration) -> Self {
        let signal = Arc::new(Signal::default());
        let thread_signal = Arc::clone(&signal);
        let thread = std::thread::Builder::new()
            .name("gmlake-defrag".to_owned())
            .spawn(move || {
                let mut sweeps = 0u64;
                loop {
                    let guard = thread_signal
                        .stopped
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    let (guard, _timeout) = thread_signal
                        .condvar
                        .wait_timeout_while(guard, interval, |stopped| !*stopped)
                        .unwrap_or_else(PoisonError::into_inner);
                    if *guard {
                        return sweeps;
                    }
                    drop(guard);
                    service.defrag_sweep();
                    sweeps += 1;
                }
            })
            .expect("spawning the defrag thread");
        BackgroundDefragger {
            signal,
            thread: Some(thread),
        }
    }

    /// Stops and joins the sweep thread, returning how many sweeps ran.
    pub fn stop(mut self) -> u64 {
        self.shutdown().unwrap_or(0)
    }

    fn shutdown(&mut self) -> Option<u64> {
        let thread = self.thread.take()?;
        *self
            .signal
            .stopped
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.signal.condvar.notify_all();
        thread.join().ok()
    }
}

impl Drop for BackgroundDefragger {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::DefragScheduler;
    use crate::service::DeviceId;
    use gmlake_alloc_api::{mib, AllocRequest};
    use gmlake_caching::CachingAllocator;
    use gmlake_gpu_sim::{CudaDriver, DeviceConfig};

    #[test]
    fn sweeps_reclaim_fragmented_pools_while_running() {
        let service = PoolService::with_scheduler(DefragScheduler::frag_threshold(0.5, 1));
        let pool = service
            .register(
                DeviceId(0),
                Box::new(CachingAllocator::new(CudaDriver::new(
                    DeviceConfig::small_test().with_backing(false),
                ))),
            )
            .unwrap();
        let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        pool.deallocate(a.id).unwrap();
        assert!(pool.stats().reserved_bytes > 0);

        let defragger = BackgroundDefragger::spawn(service.clone(), Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().reserved_bytes > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.stats().reserved_bytes, 0, "sweep reclaimed the cache");
        let sweeps = defragger.stop();
        assert!(sweeps >= 1);
    }

    #[test]
    fn stop_is_prompt_even_with_long_interval() {
        let service = PoolService::new();
        let defragger = BackgroundDefragger::spawn(service, Duration::from_secs(3600));
        let t = std::time::Instant::now();
        defragger.stop();
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "stop must not wait out the interval"
        );
    }

    #[test]
    fn drop_joins_without_hanging() {
        let service = PoolService::new();
        let t = std::time::Instant::now();
        drop(BackgroundDefragger::spawn(
            service,
            Duration::from_secs(3600),
        ));
        assert!(t.elapsed() < Duration::from_secs(5));
    }
}
