//! `gmlake-runtime` — a thread-safe, multi-device memory-pool service with
//! a pluggable defragmentation scheduler.
//!
//! The allocator crates below this one (`gmlake-core`, `gmlake-caching`,
//! `gmlake-gpu-sim`) are single-owner: every call takes `&mut self`. Real
//! multi-GPU fine-tuning — the paper's Figure 11 scale-out evaluation —
//! runs many ranks concurrently, each hammering its own device's pool. This
//! crate provides that runtime layer:
//!
//! * [`PoolService`] — a registry mapping [`DeviceId`] → shared allocator.
//!   Any [`GpuAllocator`] implementation can be registered; the service is
//!   deliberately ignorant of which allocator (GMLake, caching baseline,
//!   native) manages each device.
//! * [`PoolHandle`] — a cheap, cloneable front end to one pool.
//!   `PoolHandle` itself implements [`GpuAllocator`], so existing
//!   trait-generic code (like `gmlake-workload`'s `Replayer`) drives a
//!   shared pool unmodified, from as many threads as desired.
//! * [`DefragScheduler`] — evaluates a [`DefragPolicy`] ([`PeriodicPolicy`],
//!   [`FragThresholdPolicy`], [`OomPressurePolicy`], or your own) at every
//!   pool's iteration boundaries, on explicit
//!   [`PoolService::defrag_sweep`] calls, and on the allocation OOM path
//!   (apply-and-retry-once). Proactive defrag calls the allocators' new
//!   [`GpuAllocator::compact`] hook; the nuclear option is
//!   [`GpuAllocator::release_cached`].
//! * [`BackgroundDefragger`] — a sweep thread for deployments with no
//!   natural iteration boundary.
//!
//! # One pool, many threads
//!
//! ```
//! use gmlake_runtime::{DeviceId, PoolService};
//! use gmlake_caching::CachingAllocator;
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_alloc_api::{mib, AllocRequest, GpuAllocator};
//!
//! let service = PoolService::new();
//! let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
//! let pool = service.register(DeviceId(0), Box::new(CachingAllocator::new(driver)))?;
//!
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let mut pool = pool.clone();
//!         s.spawn(move || {
//!             for _ in 0..32 {
//!                 let a = pool.allocate(AllocRequest::new(mib(2))).unwrap();
//!                 pool.deallocate(a.id).unwrap();
//!             }
//!         });
//!     }
//! });
//! let stats = service.stats(DeviceId(0))?;
//! assert_eq!(stats.alloc_count, 4 * 32);
//! assert_eq!(stats.active_bytes, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Proactive defragmentation
//!
//! A periodic policy trims each pool's idle cache every N iterations —
//! memory a no-defrag run would keep reserved until an OOM forced its hand:
//!
//! ```
//! use gmlake_runtime::{DefragScheduler, DeviceId, PoolService};
//! use gmlake_caching::CachingAllocator;
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_alloc_api::{mib, AllocRequest, GpuAllocator};
//!
//! let service = PoolService::with_scheduler(DefragScheduler::periodic(1));
//! let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
//! let mut pool = service.register(DeviceId(0), Box::new(CachingAllocator::new(driver)))?;
//!
//! let a = pool.allocate(AllocRequest::new(mib(16)))?;
//! pool.deallocate(a.id)?;
//! assert_eq!(pool.stats().reserved_bytes, mib(16), "cache retained");
//!
//! pool.iteration_boundary(); // scheduler fires here
//! assert_eq!(pool.stats().reserved_bytes, 0, "idle cache reclaimed");
//! assert_eq!(service.scheduler().unwrap().stats().compactions, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Scale-out
//!
//! One service owns all ranks' pools; each rank thread grabs its device's
//! handle. (`gmlake-workload`'s `ConcurrentReplayer` wraps exactly this
//! pattern around full fine-tuning traces.)
//!
//! ```
//! use gmlake_runtime::{DeviceId, PoolService};
//! use gmlake_core::{GmLakeAllocator, GmLakeConfig};
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_alloc_api::{mib, AllocRequest, GpuAllocator};
//!
//! let service = PoolService::new();
//! for rank in 0..4 {
//!     let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
//!     service.register(
//!         DeviceId(rank),
//!         Box::new(GmLakeAllocator::new(driver, GmLakeConfig::default())),
//!     )?;
//! }
//! std::thread::scope(|s| {
//!     for device in service.devices() {
//!         let mut pool = service.handle(device).unwrap();
//!         s.spawn(move || {
//!             let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
//!             pool.deallocate(a.id).unwrap();
//!             pool.iteration_boundary();
//!         });
//!     }
//! });
//! assert_eq!(service.aggregate_stats().alloc_count, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`GpuAllocator`]: gmlake_alloc_api::GpuAllocator
//! [`GpuAllocator::compact`]: gmlake_alloc_api::GpuAllocator::compact
//! [`GpuAllocator::release_cached`]: gmlake_alloc_api::GpuAllocator::release_cached

mod background;
mod error;
mod scheduler;
mod service;

pub use background::BackgroundDefragger;
pub use error::RuntimeError;
pub use scheduler::{
    DefragAction, DefragPolicy, DefragScheduler, DefragStats, FragThresholdPolicy,
    OomPressurePolicy, PeriodicPolicy, PoolObservation,
};
pub use service::{DeviceId, PoolHandle, PoolService, SweepOutcome};
