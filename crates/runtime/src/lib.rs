//! `gmlake-runtime` — a thread-safe, multi-device memory-pool service with
//! a pluggable defragmentation scheduler.
//!
//! The allocator crates below this one (`gmlake-core`, `gmlake-caching`,
//! `gmlake-gpu-sim`) are single-owner backends: every call takes
//! `&mut self` ([`AllocatorCore`]). Real multi-GPU fine-tuning — the
//! paper's Figure 11 scale-out evaluation — runs many ranks concurrently,
//! each hammering its own device's pool. This crate provides that runtime
//! layer on top of the concurrent
//! [`DeviceAllocator`](gmlake_alloc_api::DeviceAllocator) front-end:
//!
//! * [`PoolService`] — a registry mapping [`DeviceId`] → pool. Any
//!   [`AllocatorCore`] implementation can be registered (it is wrapped in a
//!   `DeviceAllocator`); the service is deliberately ignorant of which
//!   allocator (GMLake, caching baseline, native) manages each device.
//! * [`PoolHandle`] — a cheap, cloneable front end to one pool, `&self` on
//!   every call. Small allocations ride the front-end's sharded
//!   per-size-class caches without touching the pool mutex; large/stitch
//!   traffic runs through per-stream large banks whose misses take a
//!   commit-time lock on the wrapped core. `PoolHandle` also implements
//!   [`AllocatorCore`], so trait-generic code (like `gmlake-workload`'s
//!   `Replayer`) drives a shared pool unmodified.
//! * [`DefragScheduler`] — evaluates a [`DefragPolicy`] ([`PeriodicPolicy`],
//!   [`FragThresholdPolicy`], [`OomPressurePolicy`], or your own) at every
//!   pool's iteration boundaries, on explicit
//!   [`PoolService::defrag_sweep`] calls, and on the allocation OOM path
//!   (apply-and-retry-once). Proactive defrag calls the allocators'
//!   [`AllocatorCore::compact`] hook; the nuclear option is
//!   [`AllocatorCore::release_cached`]. Either way the front-end's shard
//!   caches *and* per-stream large banks are flushed first, so defrag
//!   always sees every cached byte.
//! * [`BackgroundDefragger`] — a sweep thread for deployments with no
//!   natural iteration boundary.
//!
//! # One pool, many threads
//!
//! ```
//! use gmlake_runtime::{DeviceId, PoolService};
//! use gmlake_caching::CachingAllocator;
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_alloc_api::{kib, AllocRequest};
//!
//! let service = PoolService::new();
//! let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
//! let pool = service.register(DeviceId(0), Box::new(CachingAllocator::new(driver)))?;
//!
//! std::thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let pool = pool.clone();
//!         s.spawn(move || {
//!             for _ in 0..32 {
//!                 // Small tensors: the sharded fast path, no pool mutex.
//!                 let a = pool.allocate(AllocRequest::new(kib(64 + t))).unwrap();
//!                 pool.deallocate(a.id).unwrap();
//!             }
//!         });
//!     }
//! });
//! let stats = service.stats(DeviceId(0))?;
//! assert_eq!(stats.alloc_count, 4 * 32);
//! assert_eq!(stats.active_bytes, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Proactive defragmentation
//!
//! A periodic policy trims each pool's idle cache every N iterations —
//! memory a no-defrag run would keep reserved until an OOM forced its hand:
//!
//! ```
//! use gmlake_runtime::{DefragScheduler, DeviceId, PoolService};
//! use gmlake_caching::CachingAllocator;
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_alloc_api::{mib, AllocRequest};
//!
//! let service = PoolService::with_scheduler(DefragScheduler::periodic(1));
//! let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
//! let pool = service.register(DeviceId(0), Box::new(CachingAllocator::new(driver)))?;
//!
//! let a = pool.allocate(AllocRequest::new(mib(16)))?;
//! pool.deallocate(a.id)?;
//! assert_eq!(pool.stats().reserved_bytes, mib(16), "cache retained");
//!
//! pool.iteration_boundary(); // scheduler fires here
//! assert_eq!(pool.stats().reserved_bytes, 0, "idle cache reclaimed");
//! assert_eq!(service.scheduler().unwrap().stats().compactions, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Scale-out
//!
//! One service owns all ranks' pools; each rank thread grabs its device's
//! handle. (`gmlake-workload`'s `ConcurrentReplayer` wraps exactly this
//! pattern around full fine-tuning traces.)
//!
//! ```
//! use gmlake_runtime::{DeviceId, PoolService};
//! use gmlake_core::{GmLakeAllocator, GmLakeConfig};
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_alloc_api::{mib, AllocRequest};
//!
//! let service = PoolService::new();
//! for rank in 0..4 {
//!     let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
//!     service.register(
//!         DeviceId(rank),
//!         Box::new(GmLakeAllocator::new(driver, GmLakeConfig::default())),
//!     )?;
//! }
//! std::thread::scope(|s| {
//!     for device in service.devices() {
//!         let pool = service.handle(device).unwrap();
//!         s.spawn(move || {
//!             let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
//!             pool.deallocate(a.id).unwrap();
//!             pool.iteration_boundary();
//!         });
//!     }
//! });
//! assert_eq!(service.aggregate_stats().alloc_count, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`AllocatorCore`]: gmlake_alloc_api::AllocatorCore
//! [`AllocatorCore::compact`]: gmlake_alloc_api::AllocatorCore::compact
//! [`AllocatorCore::release_cached`]: gmlake_alloc_api::AllocatorCore::release_cached

mod background;
mod error;
mod profiler;
mod recovery;
mod scheduler;
mod service;

pub use background::BackgroundDefragger;
pub use error::RuntimeError;
pub use profiler::MemoryProfiler;
pub use recovery::{FaultPolicy, FaultRecoveryStats, RescueHook};
pub use scheduler::{
    DefragAction, DefragPolicy, DefragScheduler, DefragStats, FragThresholdPolicy,
    OomPressurePolicy, PeriodicPolicy, PoolObservation,
};
pub use service::{DeviceId, PoolHandle, PoolService, SweepOutcome};
