//! Errors of the pool service registry.

use std::fmt;

use crate::service::DeviceId;

/// Errors returned by [`PoolService`](crate::PoolService) registry
/// operations. Allocation errors are *not* wrapped — [`PoolHandle`]
/// methods surface [`gmlake_alloc_api::AllocError`] unchanged so callers
/// keep the exact allocator semantics.
///
/// [`PoolHandle`]: crate::PoolHandle
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// A pool is already registered for this device.
    DuplicateDevice(DeviceId),
    /// No pool is registered for this device.
    UnknownDevice(DeviceId),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DuplicateDevice(d) => {
                write!(f, "a memory pool is already registered for {d}")
            }
            RuntimeError::UnknownDevice(d) => {
                write!(f, "no memory pool is registered for {d}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_device() {
        assert!(RuntimeError::DuplicateDevice(DeviceId(3))
            .to_string()
            .contains("gpu3"));
        assert!(RuntimeError::UnknownDevice(DeviceId(7))
            .to_string()
            .contains("gpu7"));
    }
}
