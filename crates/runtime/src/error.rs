//! Errors of the pool service registry.

use std::error::Error;
use std::fmt;

use gmlake_alloc_api::AllocError;

use crate::service::DeviceId;

/// Errors returned by [`PoolService`](crate::PoolService) registry
/// operations. [`PoolHandle`] allocation methods surface
/// [`gmlake_alloc_api::AllocError`] unchanged so callers keep the exact
/// allocator semantics; the [`RuntimeError::Allocation`] variant exists for
/// service-level call sites that mix registry and allocation failures into
/// one error path (it preserves the full [`Error::source`] chain down to
/// the original driver error for `DriverFault`s).
///
/// [`PoolHandle`]: crate::PoolHandle
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A pool is already registered for this device.
    DuplicateDevice(DeviceId),
    /// No pool is registered for this device.
    UnknownDevice(DeviceId),
    /// An allocation failed after the service exhausted its rescue and
    /// retry pipeline. Recoverable driver faults keep their source chain:
    /// `err.source()` is the [`AllocError`], whose own source is the
    /// driver error that was rolled back.
    Allocation(AllocError),
}

impl From<AllocError> for RuntimeError {
    fn from(e: AllocError) -> Self {
        RuntimeError::Allocation(e)
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DuplicateDevice(d) => {
                write!(f, "a memory pool is already registered for {d}")
            }
            RuntimeError::UnknownDevice(d) => {
                write!(f, "no memory pool is registered for {d}")
            }
            RuntimeError::Allocation(e) => write!(f, "allocation failed: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Allocation(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_device() {
        assert!(RuntimeError::DuplicateDevice(DeviceId(3))
            .to_string()
            .contains("gpu3"));
        assert!(RuntimeError::UnknownDevice(DeviceId(7))
            .to_string()
            .contains("gpu7"));
    }

    #[test]
    fn allocation_variant_chains_to_the_driver_fault() {
        #[derive(Debug)]
        struct Fake;
        impl fmt::Display for Fake {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "injected fault at mem_map")
            }
        }
        impl Error for Fake {}

        let e: RuntimeError = AllocError::driver_fault("stitch", Fake).into();
        assert!(e.to_string().contains("stitch"));
        let alloc_err = e.source().expect("allocation source");
        let driver_err = alloc_err.source().expect("driver source");
        assert_eq!(driver_err.to_string(), "injected fault at mem_map");
    }
}
