//! The [`MemoryProfiler`] facade: start/stop/dump memory-timeline
//! profiling over a [`PoolService`]'s pools.

use gmlake_telemetry::{FaultSnapshot, MemorySnapshot, PoolTelemetry};

use crate::service::{fragmentation_of, DeviceId, PoolHandle, PoolService};

/// Captures memory timelines, event traces, and latency histograms from a
/// [`PoolService`]'s pools.
///
/// Every pool the service registers carries a [`PoolTelemetry`] sink that
/// starts disabled (one relaxed atomic load of overhead per allocator
/// call). The profiler is the switch: [`start`](MemoryProfiler::start)
/// enables the sink on every pool in scope, [`stop`](MemoryProfiler::stop)
/// disables it again, and [`dump`](MemoryProfiler::dump) assembles a
/// [`MemorySnapshot`] — the reserved/active/pending/fragmentation series,
/// the structured event trace, and the latency histograms — ready for
/// [`MemorySnapshot::to_json`] or
/// [`MemorySnapshot::to_chrome_trace`].
///
/// Timeline points accumulate automatically at every
/// [`PoolHandle::iteration_boundary`]; call
/// [`sample`](MemoryProfiler::sample) for extra points between
/// boundaries. `dump` records one final point per pool so the timeline
/// always reconciles with the pool's closing [`MemStats`].
///
/// ```
/// use gmlake_runtime::{DeviceId, MemoryProfiler, PoolService};
/// use gmlake_caching::CachingAllocator;
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
/// use gmlake_alloc_api::{mib, AllocRequest};
///
/// let service = PoolService::new();
/// let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
/// let pool = service.register(DeviceId(0), Box::new(CachingAllocator::new(driver)))?;
///
/// let profiler = MemoryProfiler::new(&service);
/// profiler.start();
/// let a = pool.allocate(AllocRequest::new(mib(4)))?;
/// pool.iteration_boundary(); // timeline point
/// pool.deallocate(a.id)?;
/// profiler.stop();
///
/// let snapshot = profiler.dump();
/// assert_eq!(snapshot.pools.len(), 1);
/// gmlake_telemetry::MemorySnapshot::validate_json(&snapshot.to_json())?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// [`MemStats`]: gmlake_alloc_api::MemStats
#[derive(Debug, Clone)]
pub struct MemoryProfiler {
    service: PoolService,
    scope: Option<Vec<DeviceId>>,
}

impl MemoryProfiler {
    /// A profiler over every pool currently (and subsequently) registered
    /// in `service`.
    pub fn new(service: &PoolService) -> Self {
        MemoryProfiler {
            service: service.clone(),
            scope: None,
        }
    }

    /// A profiler restricted to `devices`. Devices without a registered
    /// pool are skipped (not an error), so a scope can be declared before
    /// registration.
    pub fn scoped(service: &PoolService, devices: Vec<DeviceId>) -> Self {
        MemoryProfiler {
            service: service.clone(),
            scope: Some(devices),
        }
    }

    /// The pools currently in scope.
    fn pools(&self) -> Vec<(DeviceId, PoolHandle)> {
        let devices = match &self.scope {
            Some(scope) => scope.clone(),
            None => self.service.devices(),
        };
        devices
            .into_iter()
            .filter_map(|d| self.service.handle(d).ok().map(|h| (d, h)))
            .collect()
    }

    /// Enables telemetry on every pool in scope and records an initial
    /// timeline point per pool (the baseline the series starts from).
    pub fn start(&self) {
        for (_, handle) in self.pools() {
            if let Some(tel) = handle.allocator().telemetry() {
                tel.enable();
                Self::sample_pool(&handle, tel);
            }
        }
    }

    /// Disables telemetry on every pool in scope. Buffered events,
    /// timeline points, and histograms are retained for a later
    /// [`dump`](MemoryProfiler::dump).
    pub fn stop(&self) {
        for (_, handle) in self.pools() {
            if let Some(tel) = handle.allocator().telemetry() {
                tel.disable();
            }
        }
    }

    /// Records one timeline point on every enabled pool in scope, in
    /// addition to the automatic per-iteration samples.
    pub fn sample(&self) {
        for (_, handle) in self.pools() {
            if let Some(tel) = handle.allocator().telemetry() {
                if tel.is_enabled() {
                    Self::sample_pool(&handle, tel);
                }
            }
        }
    }

    /// Drains every in-scope pool's telemetry into a [`MemorySnapshot`].
    ///
    /// Each pool contributes one [`PoolSnapshot`] labelled
    /// `"<device> (<allocator name>)"` (e.g. `"gpu0 (gmlake)"`). A final
    /// timeline point is recorded first — briefly re-enabling a stopped
    /// sink — so the last sample always matches the pool's final
    /// reserved/active gauges ([`MemorySnapshot::validate_json`] asserts
    /// exactly that reconciliation).
    ///
    /// Draining is destructive for the event trace (each event is
    /// reported once) but histograms and timeline points accumulate
    /// across dumps.
    ///
    /// [`PoolSnapshot`]: gmlake_telemetry::PoolSnapshot
    pub fn dump(&self) -> MemorySnapshot {
        let mut pools = Vec::new();
        for (device, handle) in self.pools() {
            let Some(tel) = handle.allocator().telemetry() else {
                continue;
            };
            let was_enabled = tel.is_enabled();
            if !was_enabled {
                tel.enable();
            }
            Self::sample_pool(&handle, tel);
            let stats = handle.stats();
            if !was_enabled {
                tel.disable();
            }
            let label = format!("{} ({})", device, handle.name());
            let mut snap = tel.snapshot(&label, stats.reserved_bytes, stats.active_bytes);
            // Fault-recovery counters live in the service (breaker) and the
            // allocator core (transaction journal), not in the telemetry
            // sink — attach them here so chaos and serving artifacts carry
            // orphan accounting alongside the timeline.
            let recovery = handle.fault_stats();
            let journal = handle.allocator().fault_journal_stats();
            snap.fault = Some(FaultSnapshot {
                faults: recovery.faults,
                retries: recovery.retries,
                breaker_trips: recovery.breaker_trips,
                breaker_open: recovery.breaker_open,
                rescues: recovery.rescues,
                journal_failed_ops: journal.failed_ops,
                orphan_vas: journal.orphan_vas,
                orphan_va_bytes: journal.orphan_va_bytes,
                orphan_chunks: journal.orphan_chunks,
            });
            pools.push(snap);
        }
        MemorySnapshot { pools }
    }

    fn sample_pool(handle: &PoolHandle, tel: &PoolTelemetry) {
        let stats = handle.stats();
        let cache = handle.allocator().cache_stats();
        tel.record_sample(
            stats.reserved_bytes,
            stats.active_bytes,
            cache.pending_bytes,
            fragmentation_of(&stats),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::{mib, AllocRequest};
    use gmlake_core::{GmLakeAllocator, GmLakeConfig};
    use gmlake_gpu_sim::{CudaDriver, DeviceConfig, FaultOp, FaultPlan};

    #[test]
    fn dump_attaches_fault_recovery_and_journal_counters() {
        let service = PoolService::new();
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let pool = service
            .register(
                DeviceId(0),
                Box::new(GmLakeAllocator::new(
                    driver.clone(),
                    GmLakeConfig::default(),
                )),
            )
            .unwrap();
        let profiler = MemoryProfiler::new(&service);
        profiler.start();
        // One injected map fault, absorbed by the service's bounded retry:
        // the snapshot must carry it even though the caller never saw it.
        driver.set_fault_plan(FaultPlan::new().fail_nth(FaultOp::Map, 1));
        let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        pool.deallocate(a.id).unwrap();
        profiler.stop();
        let snap = profiler.dump();
        let fault = snap.pools[0].fault.expect("fault section attached");
        assert_eq!(fault.faults, 1);
        assert_eq!(fault.retries, 1);
        assert!(!fault.breaker_open);
        assert_eq!(fault.journal_failed_ops, 1, "journal reached the dump");
        assert_eq!(fault.orphan_vas + fault.orphan_chunks, 0, "leak-free");
        // The enriched snapshot still validates and round-trips.
        let json = snap.to_json();
        MemorySnapshot::validate_json(&json).unwrap();
        assert_eq!(MemorySnapshot::from_json(&json).unwrap(), snap);
    }
}
