//! The multi-device pool service: a registry of per-device
//! [`DeviceAllocator`] front-ends behind cheap, cloneable, thread-safe
//! [`PoolHandle`]s.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use gmlake_alloc_api::{
    AllocError, AllocRequest, Allocation, AllocationId, AllocatorCore, DeviceAllocator,
    DeviceAllocatorConfig, MemStats, StreamId,
};
use gmlake_telemetry::{EventKind, PoolTelemetry};

use crate::error::RuntimeError;
use crate::recovery::{BreakerState, FaultPolicy, FaultRecoveryStats, RescueHook};
use crate::scheduler::{apply_action, DefragAction, DefragScheduler, PoolObservation};

/// Identifies one device (one memory pool) within a [`PoolService`].
///
/// A plain rank-style index: `DeviceId(0)` is the first GPU, matching how
/// data-parallel training frameworks number ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Distinguishes successive pools registered under the same [`DeviceId`]
/// (policies key per-pool state on it; see
/// [`PoolObservation::pool_epoch`](crate::PoolObservation::pool_epoch)).
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// One registered pool: the concurrent allocator front-end plus per-pool
/// telemetry.
#[derive(Debug)]
struct PoolEntry {
    alloc: DeviceAllocator,
    /// Training iterations completed through this pool's handles.
    iterations: AtomicU64,
    /// Process-unique id of this registration (see [`NEXT_EPOCH`]).
    epoch: u64,
    /// Physical-device key: pools sharing a physical device should be
    /// registered with the same affinity so an OOM rescue on one can
    /// release the others' caches. `None` = the pool's device is its own.
    affinity: Option<u64>,
    /// Stitch circuit breaker and fault-recovery counters.
    breaker: Mutex<BreakerState>,
    /// Owner-supplied tenant-level reclamation stage of the OOM rescue
    /// pipeline (see [`RescueHook`]). `None` until installed.
    rescue_hook: Mutex<Option<Arc<dyn RescueHook>>>,
}

/// What one [`PoolService::defrag_sweep`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Pools the policy was evaluated on.
    pub pools_evaluated: usize,
    /// Pools on which an action was applied.
    pub actions_applied: usize,
    /// Physical bytes reclaimed across all applied actions.
    pub bytes_reclaimed: u64,
}

#[derive(Debug)]
struct ServiceInner {
    pools: Mutex<BTreeMap<DeviceId, Arc<PoolEntry>>>,
    scheduler: Option<Arc<DefragScheduler>>,
    policy: FaultPolicy,
}

/// A thread-safe registry mapping [`DeviceId`]s to memory pools.
///
/// The service is a cheap handle (`Clone` shares the registry). Worker
/// threads obtain a [`PoolHandle`] per device and allocate through it
/// concurrently; an optional [`DefragScheduler`] observes every pool at
/// iteration boundaries and triggers proactive defragmentation.
///
/// ```
/// use gmlake_runtime::{DeviceId, PoolService};
/// use gmlake_caching::CachingAllocator;
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
/// use gmlake_alloc_api::{mib, AllocRequest};
///
/// let service = PoolService::new();
/// let driver = CudaDriver::new(DeviceConfig::small_test());
/// let pool = service.register(DeviceId(0), Box::new(CachingAllocator::new(driver)))?;
///
/// let a = pool.allocate(AllocRequest::new(mib(4)))?;
/// assert_eq!(service.stats(DeviceId(0))?.active_bytes, a.size);
/// pool.deallocate(a.id)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PoolService {
    inner: Arc<ServiceInner>,
}

impl Default for PoolService {
    fn default() -> Self {
        PoolService::new()
    }
}

impl PoolService {
    /// Creates an empty service without a defrag scheduler.
    pub fn new() -> Self {
        Self::build(None, FaultPolicy::default())
    }

    /// Creates an empty service whose pools are supervised by `scheduler`.
    pub fn with_scheduler(scheduler: DefragScheduler) -> Self {
        Self::build(Some(scheduler), FaultPolicy::default())
    }

    /// Creates an empty service with a custom [`FaultPolicy`] and no
    /// defrag scheduler.
    pub fn with_fault_policy(policy: FaultPolicy) -> Self {
        Self::build(None, policy)
    }

    /// Creates an empty service with both a supervising scheduler and a
    /// custom [`FaultPolicy`].
    pub fn with_scheduler_and_policy(scheduler: DefragScheduler, policy: FaultPolicy) -> Self {
        Self::build(Some(scheduler), policy)
    }

    fn build(scheduler: Option<DefragScheduler>, policy: FaultPolicy) -> Self {
        PoolService {
            inner: Arc::new(ServiceInner {
                pools: Mutex::new(BTreeMap::new()),
                scheduler: scheduler.map(Arc::new),
                policy,
            }),
        }
    }

    /// The supervising scheduler, if any.
    pub fn scheduler(&self) -> Option<&DefragScheduler> {
        self.inner.scheduler.as_deref()
    }

    /// The fault-recovery policy shared by every pool of this service.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.inner.policy
    }

    /// Registers an allocator core as the pool for `device` and returns a
    /// handle. The core is wrapped in a [`DeviceAllocator`] front-end with
    /// the default configuration and a disabled
    /// [`PoolTelemetry`] sink (one relaxed atomic load per call until a
    /// [`MemoryProfiler`](crate::MemoryProfiler) enables it); use
    /// [`PoolService::register_device`] to supply a pre-configured
    /// front-end.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DuplicateDevice`] if `device` already has a pool.
    pub fn register(
        &self,
        device: DeviceId,
        alloc: Box<dyn AllocatorCore + Send>,
    ) -> Result<PoolHandle, RuntimeError> {
        self.register_device(
            device,
            DeviceAllocator::from_boxed_with_telemetry(
                alloc,
                DeviceAllocatorConfig::default(),
                Arc::new(PoolTelemetry::new()),
            ),
        )
    }

    /// Registers an existing [`DeviceAllocator`] (e.g. one with a custom
    /// shard configuration, or one also driven outside the service) as the
    /// pool for `device`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DuplicateDevice`] if `device` already has a pool.
    pub fn register_device(
        &self,
        device: DeviceId,
        alloc: DeviceAllocator,
    ) -> Result<PoolHandle, RuntimeError> {
        self.insert_entry(device, alloc, None)
    }

    /// Registers a deprecated [`SharedAllocator`] shim as the pool for
    /// `device`, preserving the old single-mutex semantics (the front-end
    /// fast path is disabled, so clones of the shim driven outside the
    /// service keep seeing every allocation).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DuplicateDevice`] if `device` already has a pool.
    ///
    /// [`SharedAllocator`]: gmlake_alloc_api::SharedAllocator
    #[deprecated(
        since = "0.2.0",
        note = "wrap the core in a `DeviceAllocator` and use `register_device` instead"
    )]
    #[allow(deprecated)]
    pub fn register_shared(
        &self,
        device: DeviceId,
        alloc: gmlake_alloc_api::SharedAllocator,
    ) -> Result<PoolHandle, RuntimeError> {
        self.register_device(
            device,
            DeviceAllocator::with_config(
                alloc,
                DeviceAllocatorConfig::default().with_small_threshold(0),
            ),
        )
    }

    /// Like [`PoolService::register`], additionally declaring which
    /// *physical* device the pool lives on. Pools registered with the same
    /// `affinity` are treated as cohabitants of one device: an OOM-failing
    /// allocation on one may trigger a defrag action on the others (their
    /// caches occupy the memory the failing pool needs). Pools registered
    /// without an affinity are never touched by another pool's rescue.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DuplicateDevice`] if `device` already has a pool.
    pub fn register_with_affinity(
        &self,
        device: DeviceId,
        alloc: Box<dyn AllocatorCore + Send>,
        affinity: u64,
    ) -> Result<PoolHandle, RuntimeError> {
        self.insert_entry(
            device,
            DeviceAllocator::from_boxed_with_telemetry(
                alloc,
                DeviceAllocatorConfig::default(),
                Arc::new(PoolTelemetry::new()),
            ),
            Some(affinity),
        )
    }

    fn insert_entry(
        &self,
        device: DeviceId,
        alloc: DeviceAllocator,
        affinity: Option<u64>,
    ) -> Result<PoolHandle, RuntimeError> {
        let mut pools = self.inner.pools.lock();
        if pools.contains_key(&device) {
            return Err(RuntimeError::DuplicateDevice(device));
        }
        let entry = Arc::new(PoolEntry {
            alloc,
            iterations: AtomicU64::new(0),
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            affinity,
            breaker: Mutex::new(BreakerState::default()),
            rescue_hook: Mutex::new(None),
        });
        pools.insert(device, Arc::clone(&entry));
        Ok(self.make_handle(device, entry))
    }

    /// Removes the pool for `device`. Outstanding handles keep working (the
    /// pool itself is refcounted); it only disappears from the registry.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownDevice`] if `device` has no pool.
    pub fn unregister(&self, device: DeviceId) -> Result<(), RuntimeError> {
        self.inner
            .pools
            .lock()
            .remove(&device)
            .map(|_| ())
            .ok_or(RuntimeError::UnknownDevice(device))
    }

    /// Returns a fresh handle to the pool for `device`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownDevice`] if `device` has no pool.
    pub fn handle(&self, device: DeviceId) -> Result<PoolHandle, RuntimeError> {
        let entry = self
            .inner
            .pools
            .lock()
            .get(&device)
            .cloned()
            .ok_or(RuntimeError::UnknownDevice(device))?;
        Ok(self.make_handle(device, entry))
    }

    /// The registered devices, in ascending order.
    pub fn devices(&self) -> Vec<DeviceId> {
        self.inner.pools.lock().keys().copied().collect()
    }

    /// Number of registered pools.
    pub fn len(&self) -> usize {
        self.inner.pools.lock().len()
    }

    /// `true` when no pool is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory statistics of one pool.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownDevice`] if `device` has no pool.
    pub fn stats(&self, device: DeviceId) -> Result<MemStats, RuntimeError> {
        Ok(self.handle(device)?.stats())
    }

    /// Sums the memory statistics of every pool — the service-wide footprint
    /// (peaks are summed too, so the aggregate peak is an upper bound: the
    /// per-pool peaks need not have coincided in time).
    pub fn aggregate_stats(&self) -> MemStats {
        let entries: Vec<Arc<PoolEntry>> = self.inner.pools.lock().values().cloned().collect();
        let mut total = MemStats::default();
        for entry in entries {
            let s = entry.alloc.stats();
            total.active_bytes += s.active_bytes;
            total.reserved_bytes += s.reserved_bytes;
            total.peak_active_bytes += s.peak_active_bytes;
            total.peak_reserved_bytes += s.peak_reserved_bytes;
            total.alloc_count += s.alloc_count;
            total.free_count += s.free_count;
            total.oom_count += s.oom_count;
            total.requested_bytes_total += s.requested_bytes_total;
        }
        total
    }

    /// Evaluates the defrag policy on every pool and applies the resulting
    /// actions. A no-op (all-zero outcome) without a scheduler.
    ///
    /// This is the entry point of the background defrag thread
    /// ([`BackgroundDefragger`](crate::BackgroundDefragger)), and can be
    /// called inline at convenient synchronization points.
    pub fn defrag_sweep(&self) -> SweepOutcome {
        let Some(scheduler) = self.inner.scheduler.as_ref() else {
            return SweepOutcome::default();
        };
        let entries: Vec<(DeviceId, Arc<PoolEntry>)> = self
            .inner
            .pools
            .lock()
            .iter()
            .map(|(d, e)| (*d, Arc::clone(e)))
            .collect();
        let mut outcome = SweepOutcome::default();
        for (device, entry) in entries {
            outcome.pools_evaluated += 1;
            let obs = observe(device, &entry);
            let action = scheduler.decide_iteration(&obs);
            if action != DefragAction::None {
                let bytes = apply_action(action, &entry.alloc);
                scheduler.record(action, bytes);
                outcome.actions_applied += 1;
                outcome.bytes_reclaimed += bytes;
            }
        }
        outcome
    }

    fn make_handle(&self, device: DeviceId, entry: Arc<PoolEntry>) -> PoolHandle {
        PoolHandle {
            device,
            entry,
            service: Arc::clone(&self.inner),
        }
    }
}

/// Instantaneous fragmentation of a stats snapshot (same formula as
/// [`DeviceAllocator::fragmentation`], computed here so one observation
/// aggregates the pool's shard counters once, not twice).
pub(crate) fn fragmentation_of(stats: &MemStats) -> f64 {
    if stats.reserved_bytes == 0 {
        0.0
    } else {
        1.0 - stats.active_bytes as f64 / stats.reserved_bytes as f64
    }
}

/// Captures a [`PoolObservation`] of one pool.
fn observe(device: DeviceId, entry: &PoolEntry) -> PoolObservation {
    let stats = entry.alloc.stats();
    PoolObservation {
        device,
        pool_epoch: entry.epoch,
        iteration: entry.iterations.load(Ordering::Relaxed),
        fragmentation: fragmentation_of(&stats),
        stats,
    }
}

/// A cheap, cloneable, thread-safe front end to one registered pool: the
/// pool's [`DeviceAllocator`] plus the [`DefragScheduler`] hooks.
///
/// Every allocation method takes `&self` — clone a handle into each worker
/// thread and allocate away. Small requests ride the front-end's sharded
/// fast path without ever touching the pool mutex; large/stitch traffic
/// falls back to the wrapped core. `PoolHandle` also implements
/// [`AllocatorCore`], so trait-generic code — including the sequential
/// [`Replayer`](../gmlake_workload/struct.Replayer.html) — can drive a
/// shared pool unmodified.
///
/// Beyond delegation, the handle is where the [`DefragScheduler`] hooks in:
///
/// * [`PoolHandle::iteration_boundary`] advances the pool's iteration
///   counter and lets the policy trigger a proactive defrag pass;
/// * [`PoolHandle::allocate`] gives the policy a chance to rescue an
///   out-of-memory failure (apply an action, retry once) before the error
///   reaches the caller.
#[derive(Debug, Clone)]
pub struct PoolHandle {
    device: DeviceId,
    entry: Arc<PoolEntry>,
    service: Arc<ServiceInner>,
}

impl PoolHandle {
    /// The device this handle allocates on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Training iterations completed on this pool.
    pub fn iterations(&self) -> u64 {
        self.entry.iterations.load(Ordering::Relaxed)
    }

    /// The pool's concurrent allocator front-end.
    pub fn allocator(&self) -> &DeviceAllocator {
        &self.entry.alloc
    }

    /// Runs `f` with exclusive access to the underlying allocator core — an
    /// escape hatch for implementation-specific calls (e.g.
    /// `GmLakeAllocator::state_counters`). Do not block inside `f`: every
    /// core-path caller of this pool waits. The front-end's shard caches
    /// are not flushed first (see [`DeviceAllocator::flush`]).
    pub fn with_allocator<R>(&self, f: impl FnOnce(&mut dyn AllocatorCore) -> R) -> R {
        self.entry.alloc.with_core(f)
    }

    fn observation(&self) -> PoolObservation {
        observe(self.device, &self.entry)
    }

    fn scheduler(&self) -> Option<&Arc<DefragScheduler>> {
        self.service.scheduler.as_ref()
    }

    /// Applies `action` to this pool and to every pool registered with the
    /// same physical-device affinity (see
    /// [`PoolService::register_with_affinity`]): when several pools cohabit
    /// one device, the memory starving this pool may be cached by a sibling
    /// that the failing allocator's own fallback cannot touch. Pools on
    /// other (or undeclared) devices are left alone — flushing their warm
    /// caches could not relieve this device's pressure. Returns the bytes
    /// reclaimed across the touched pools.
    fn rescue_same_device(&self, action: DefragAction) -> u64 {
        let mut bytes = apply_action(action, &self.entry.alloc);
        if self.entry.affinity.is_none() {
            return bytes;
        }
        let cohabitants: Vec<Arc<PoolEntry>> = self
            .service
            .pools
            .lock()
            .values()
            .filter(|e| !Arc::ptr_eq(e, &self.entry) && e.affinity == self.entry.affinity)
            .cloned()
            .collect();
        for entry in cohabitants {
            bytes += apply_action(action, &entry.alloc);
        }
        bytes
    }

    /// Allocates memory for `req` through the pool's [`DeviceAllocator`] on
    /// the default stream (see [`PoolHandle::alloc_on_stream`]).
    ///
    /// # Errors
    ///
    /// See [`AllocatorCore::allocate`].
    pub fn allocate(&self, req: AllocRequest) -> Result<Allocation, AllocError> {
        self.alloc_on_stream(req, StreamId::DEFAULT)
    }

    /// Allocates memory for `req` on behalf of logical GPU stream `stream`:
    /// small requests ride the stream's own cache bank in the pool's
    /// [`DeviceAllocator`], so ranks driving different streams never
    /// serialize on a lock.
    ///
    /// Failures are recovered in two ways, both bounded by the service's
    /// [`FaultPolicy`]:
    ///
    /// * a rolled-back [`AllocError::DriverFault`] is retried with
    ///   exponential backoff; repeated consecutive faults trip a circuit
    ///   breaker that disables stitching on the pool for a cooldown and
    ///   re-probes it afterwards (the pool degrades to split/native
    ///   allocation meanwhile);
    /// * out-of-memory — after the front-end's own flush-and-retry, which
    ///   drains **every** stream's cache — runs the staged rescue
    ///   pipeline: flush shard caches, drain pending event rings, compact,
    ///   the owner-installed tenant [`RescueHook`] (if any), then the
    ///   defrag policy's cross-pool rescue spanning the pools cohabiting
    ///   this pool's physical device, retrying after every stage that
    ///   reclaimed anything.
    ///
    /// # Errors
    ///
    /// See [`AllocatorCore::allocate`].
    pub fn alloc_on_stream(
        &self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        self.breaker_tick();
        let policy = self.service.policy;
        let mut attempt = 0u32;
        loop {
            match self.entry.alloc.alloc_on_stream(req, stream) {
                Ok(a) => {
                    self.note_alloc_success();
                    return Ok(a);
                }
                Err(e @ AllocError::DriverFault { .. }) => {
                    self.note_fault();
                    if attempt >= policy.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.entry.breaker.lock().retries += 1;
                    let backoff = policy.backoff_for(attempt);
                    if backoff > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(backoff));
                    }
                }
                Err(e @ AllocError::OutOfMemory { .. }) => {
                    return self.rescue_oom(req, stream, e);
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// The staged OOM rescue pipeline: each stage tries to reclaim memory
    /// with a progressively wider hammer, and the allocation is retried
    /// after every stage that actually freed something. Stages 1–3 are
    /// local to this pool; stage 4 is the owner-installed tenant
    /// [`RescueHook`] (skipped when none is installed); stage 5 spans the
    /// pools cohabiting this pool's physical device via the defrag policy
    /// (see [`PoolHandle::rescue_same_device`]'s affinity rule). No pool
    /// lock is held between stages. Every stage that runs emits an
    /// [`EventKind::RescueStage`] trace record when telemetry is enabled.
    fn rescue_oom(
        &self,
        req: AllocRequest,
        stream: StreamId,
        original: AllocError,
    ) -> Result<Allocation, AllocError> {
        let mut last = original;
        for stage in 1u64..=5 {
            let bytes = match stage {
                // Flush every stream's shard cache into the core and
                // release the core's cached structures.
                1 => {
                    self.entry.alloc.flush();
                    self.entry.alloc.release_cached()
                }
                // Drain the pending cross-stream event rings (returns
                // blocks promoted, not bytes — any progress counts).
                2 => self.entry.alloc.process_events(),
                // Proactive compaction: sPool GC + dead-fragment release.
                3 => self.entry.alloc.compact(),
                // Tenant-level reclamation by the owner-installed hook.
                4 => {
                    let hook = self.entry.rescue_hook.lock().clone();
                    match hook {
                        Some(hook) => hook.rescue(req.size),
                        None => continue,
                    }
                }
                // Cross-pool policy rescue on the cohabiting pools.
                5 => {
                    let Some(scheduler) = self.scheduler() else {
                        break;
                    };
                    let scheduler = Arc::clone(scheduler);
                    let action = scheduler.decide_oom(&self.observation());
                    if action == DefragAction::None {
                        break;
                    }
                    let bytes = self.rescue_same_device(action);
                    scheduler.record_oom_rescue(action, bytes);
                    bytes
                }
                _ => unreachable!(),
            };
            if bytes == 0 {
                self.emit(EventKind::RescueStage, 0, stage, 0);
                continue;
            }
            match self.entry.alloc.alloc_on_stream(req, stream) {
                Ok(a) => {
                    self.emit(EventKind::RescueStage, bytes, stage, 1);
                    self.note_alloc_success();
                    self.entry.breaker.lock().rescues += 1;
                    return Ok(a);
                }
                Err(e) => {
                    self.emit(EventKind::RescueStage, bytes, stage, 0);
                    if matches!(e, AllocError::DriverFault { .. }) {
                        self.note_fault();
                    }
                    last = e;
                }
            }
        }
        Err(last)
    }

    /// Records a pool trace event when telemetry is attached and enabled.
    fn emit(&self, kind: EventKind, bytes: u64, a: u64, b: u64) {
        if let Some(t) = self.entry.alloc.telemetry() {
            if t.is_enabled() {
                t.record(kind, bytes, a, b);
            }
        }
    }

    /// Per-attempt breaker bookkeeping: while open, counts the cooldown
    /// down and — at zero — re-probes stitching (half-open: the breaker
    /// closes, but one more fault re-opens it immediately; one success
    /// closes it fully).
    fn breaker_tick(&self) {
        let threshold = self.service.policy.breaker_threshold;
        let mut b = self.entry.breaker.lock();
        if !b.open {
            return;
        }
        b.cooldown_left = b.cooldown_left.saturating_sub(1);
        if b.cooldown_left == 0 {
            b.open = false;
            b.consecutive = threshold.saturating_sub(1);
            drop(b);
            self.entry.alloc.set_stitch_enabled(true);
            self.emit(EventKind::BreakerTrip, 0, 0, 0);
        }
    }

    /// Counts a driver-faulted allocation attempt; trips the breaker open
    /// (disabling stitching on the pool) after
    /// [`FaultPolicy::breaker_threshold`] consecutive faults.
    fn note_fault(&self) {
        let policy = self.service.policy;
        let mut b = self.entry.breaker.lock();
        b.faults += 1;
        b.consecutive += 1;
        if !b.open && b.consecutive >= policy.breaker_threshold {
            b.open = true;
            b.cooldown_left = policy.breaker_cooldown.max(1);
            b.trips += 1;
            let consecutive = b.consecutive;
            drop(b);
            self.entry.alloc.set_stitch_enabled(false);
            self.emit(EventKind::BreakerTrip, 0, 1, consecutive as u64);
        }
    }

    fn note_alloc_success(&self) {
        self.entry.breaker.lock().consecutive = 0;
    }

    /// Installs `hook` as the pool's tenant-level OOM rescue stage
    /// (stage 4 of the pipeline documented on
    /// [`PoolHandle::alloc_on_stream`]), replacing any previous hook.
    /// Every handle to the pool shares the installed hook.
    pub fn set_rescue_hook(&self, hook: Arc<dyn RescueHook>) {
        *self.entry.rescue_hook.lock() = Some(hook);
    }

    /// Removes the pool's tenant-level rescue hook, returning it.
    pub fn clear_rescue_hook(&self) -> Option<Arc<dyn RescueHook>> {
        self.entry.rescue_hook.lock().take()
    }

    /// Snapshot of this pool's fault-recovery counters: faults survived,
    /// retries issued, breaker trips and state, allocations saved by the
    /// staged rescue pipeline.
    pub fn fault_stats(&self) -> FaultRecoveryStats {
        let b = self.entry.breaker.lock();
        FaultRecoveryStats {
            faults: b.faults,
            retries: b.retries,
            breaker_trips: b.trips,
            breaker_open: b.open,
            rescues: b.rescues,
        }
    }

    /// Releases the allocation identified by `id` from the default stream.
    ///
    /// # Errors
    ///
    /// See [`AllocatorCore::deallocate`].
    pub fn deallocate(&self, id: AllocationId) -> Result<(), AllocError> {
        self.entry.alloc.deallocate(id)
    }

    /// Releases the allocation identified by `id`, where the free is issued
    /// from `stream` (see [`DeviceAllocator::free_on_stream`] for the
    /// cross-stream reuse rule).
    ///
    /// # Errors
    ///
    /// See [`AllocatorCore::deallocate`].
    pub fn free_on_stream(&self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        self.entry.alloc.free_on_stream(id, stream)
    }

    /// Memory statistics of the pool (see [`DeviceAllocator::stats`]).
    pub fn stats(&self) -> MemStats {
        self.entry.alloc.stats()
    }

    /// Backend name (cached at construction; never takes a lock).
    pub fn name(&self) -> &'static str {
        self.entry.alloc.name()
    }

    /// Signals the end of one training iteration: forwards the hint to the
    /// allocator, advances the pool's iteration counter, pushes a
    /// memory-timeline sample when the pool's telemetry is enabled, and
    /// gives the defrag policy its per-iteration decision point.
    pub fn iteration_boundary(&self) {
        self.entry.alloc.iteration_boundary();
        let iteration = self.entry.iterations.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(tel) = self.entry.alloc.telemetry() {
            if tel.is_enabled() {
                let stats = self.entry.alloc.stats();
                let cache = self.entry.alloc.cache_stats();
                tel.record_sample(
                    stats.reserved_bytes,
                    stats.active_bytes,
                    cache.pending_bytes,
                    fragmentation_of(&stats),
                );
            }
        }
        let Some(scheduler) = self.scheduler() else {
            return;
        };
        let scheduler = Arc::clone(scheduler);
        let stats = self.entry.alloc.stats();
        let obs = PoolObservation {
            device: self.device,
            pool_epoch: self.entry.epoch,
            iteration,
            fragmentation: fragmentation_of(&stats),
            stats,
        };
        let action = scheduler.decide_iteration(&obs);
        if action != DefragAction::None {
            let bytes = apply_action(action, &self.entry.alloc);
            scheduler.record(action, bytes);
        }
    }

    /// Sweeps the pool's pending event rings, promoting cross-stream-freed
    /// blocks whose events have completed back into their owning streams'
    /// free lists (see [`DeviceAllocator::process_events`]). Worker threads
    /// need not call this — the allocation path promotes opportunistically —
    /// but schedulers and iteration loops can tick it at synchronization
    /// points to keep rings short.
    pub fn process_events(&self) -> u64 {
        self.entry.alloc.process_events()
    }

    /// Releases the pool's cached memory (see
    /// [`DeviceAllocator::release_cached`]).
    pub fn release_cached(&self) -> u64 {
        self.entry.alloc.release_cached()
    }

    /// Runs the pool's proactive defrag pass (see
    /// [`DeviceAllocator::compact`]).
    pub fn compact(&self) -> u64 {
        self.entry.alloc.compact()
    }

    /// Instantaneous fragmentation ratio (see
    /// [`DeviceAllocator::fragmentation`]).
    pub fn fragmentation(&self) -> f64 {
        self.entry.alloc.fragmentation()
    }
}

/// Trait-compat layer: lets trait-generic code (the sequential replayer,
/// ablation harnesses) drive a pool handle; every method delegates to the
/// concurrent `&self` inherent API.
impl AllocatorCore for PoolHandle {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        PoolHandle::allocate(self, req)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        PoolHandle::deallocate(self, id)
    }

    fn alloc_on_stream(
        &mut self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        PoolHandle::alloc_on_stream(self, req, stream)
    }

    fn free_on_stream(&mut self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        PoolHandle::free_on_stream(self, id, stream)
    }

    fn stats(&self) -> MemStats {
        PoolHandle::stats(self)
    }

    fn name(&self) -> &'static str {
        PoolHandle::name(self)
    }

    fn iteration_boundary(&mut self) {
        PoolHandle::iteration_boundary(self)
    }

    fn process_events(&mut self) -> u64 {
        PoolHandle::process_events(self)
    }

    fn release_cached(&mut self) -> u64 {
        PoolHandle::release_cached(self)
    }

    fn compact(&mut self) -> u64 {
        PoolHandle::compact(self)
    }

    fn fragmentation(&self) -> f64 {
        PoolHandle::fragmentation(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::mib;
    use gmlake_caching::CachingAllocator;
    use gmlake_core::{GmLakeAllocator, GmLakeConfig};
    use gmlake_gpu_sim::{CudaDriver, DeviceConfig};

    fn caching_pool() -> Box<dyn AllocatorCore + Send> {
        Box::new(CachingAllocator::new(CudaDriver::new(
            DeviceConfig::small_test().with_backing(false),
        )))
    }

    #[test]
    fn register_handle_unregister_lifecycle() {
        let service = PoolService::new();
        assert!(service.is_empty());
        let h = service.register(DeviceId(0), caching_pool()).unwrap();
        assert_eq!(h.device(), DeviceId(0));
        assert_eq!(service.len(), 1);
        assert_eq!(
            service.register(DeviceId(0), caching_pool()).unwrap_err(),
            RuntimeError::DuplicateDevice(DeviceId(0))
        );
        service.register(DeviceId(2), caching_pool()).unwrap();
        service.register(DeviceId(1), caching_pool()).unwrap();
        assert_eq!(
            service.devices(),
            vec![DeviceId(0), DeviceId(1), DeviceId(2)],
            "ordered listing"
        );
        service.unregister(DeviceId(1)).unwrap();
        assert_eq!(
            service.unregister(DeviceId(1)).unwrap_err(),
            RuntimeError::UnknownDevice(DeviceId(1))
        );
        assert_eq!(
            service.handle(DeviceId(1)).unwrap_err(),
            RuntimeError::UnknownDevice(DeviceId(1))
        );
        assert_eq!(service.len(), 2);
    }

    #[test]
    fn handles_share_one_pool() {
        let service = PoolService::new();
        let a = service.register(DeviceId(0), caching_pool()).unwrap();
        let b = service.handle(DeviceId(0)).unwrap();
        let alloc = a.allocate(AllocRequest::new(mib(4))).unwrap();
        assert_eq!(b.stats().active_bytes, alloc.size);
        b.deallocate(alloc.id).unwrap();
        assert_eq!(a.stats().active_bytes, 0);
        assert_eq!(a.name(), "pytorch-caching");
    }

    #[test]
    fn preconfigured_device_allocator_can_be_registered() {
        let service = PoolService::new();
        let front = DeviceAllocator::with_config(
            CachingAllocator::new(CudaDriver::new(
                DeviceConfig::small_test().with_backing(false),
            )),
            DeviceAllocatorConfig::default().with_shards(4),
        );
        let pool = service.register_device(DeviceId(0), front).unwrap();
        let a = pool.allocate(AllocRequest::new(1024)).unwrap();
        pool.deallocate(a.id).unwrap();
        assert_eq!(pool.allocator().cache_stats().shards, 4);
        assert_eq!(pool.stats().active_bytes, 0);
    }

    #[test]
    fn service_clones_share_the_registry() {
        let service = PoolService::new();
        let clone = service.clone();
        service.register(DeviceId(4), caching_pool()).unwrap();
        assert_eq!(clone.devices(), vec![DeviceId(4)]);
    }

    #[test]
    fn aggregate_stats_sum_pools() {
        let service = PoolService::new();
        let a = service.register(DeviceId(0), caching_pool()).unwrap();
        let b = service.register(DeviceId(1), caching_pool()).unwrap();
        let x = a.allocate(AllocRequest::new(mib(2))).unwrap();
        let y = b.allocate(AllocRequest::new(mib(6))).unwrap();
        let total = service.aggregate_stats();
        assert_eq!(total.active_bytes, x.size + y.size);
        assert_eq!(total.alloc_count, 2);
        a.deallocate(x.id).unwrap();
        b.deallocate(y.id).unwrap();
    }

    #[test]
    fn iteration_boundary_counts_and_triggers_periodic_defrag() {
        let service = PoolService::with_scheduler(DefragScheduler::periodic(2));
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let pool = service
            .register(DeviceId(0), Box::new(CachingAllocator::new(driver.clone())))
            .unwrap();
        // Populate the cache, then free: reserved stays high.
        let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        pool.deallocate(a.id).unwrap();
        assert!(pool.stats().reserved_bytes > 0);
        pool.iteration_boundary();
        assert_eq!(pool.iterations(), 1);
        assert!(
            pool.stats().reserved_bytes > 0,
            "period 2: nothing happens after iteration 1"
        );
        pool.iteration_boundary();
        assert_eq!(pool.iterations(), 2);
        assert_eq!(
            pool.stats().reserved_bytes,
            0,
            "periodic compact released the idle cache"
        );
        let sched = service.scheduler().unwrap().stats();
        assert_eq!(sched.compactions, 1);
        assert!(sched.bytes_reclaimed >= mib(8));
        assert_eq!(driver.phys_in_use(), 0);
    }

    #[test]
    fn oom_rescue_frees_sibling_pool_cache_and_retries() {
        // Two pools sharing ONE 256 MiB device (as two frameworks sharing a
        // GPU would). The sibling pool hoards 160 MiB of idle cache; the
        // failing pool's own internal OOM fallback cannot touch it — only
        // the service-level rescue can.
        let service = PoolService::with_scheduler(DefragScheduler::oom_pressure());
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let hoarder = service
            .register_with_affinity(
                DeviceId(0),
                Box::new(CachingAllocator::new(driver.clone())),
                0,
            )
            .unwrap();
        let pool = service
            .register_with_affinity(
                DeviceId(1),
                Box::new(GmLakeAllocator::new(
                    driver.clone(),
                    GmLakeConfig::default(),
                )),
                0,
            )
            .unwrap();
        let ids: Vec<_> = (0..4)
            .map(|_| hoarder.allocate(AllocRequest::new(mib(40))).unwrap().id)
            .collect();
        for id in ids {
            hoarder.deallocate(id).unwrap();
        }
        assert!(driver.phys_in_use() >= mib(160), "sibling cache retained");
        // 200 MiB cannot coexist with the sibling's 160 MiB of cache on a
        // 256 MiB device; the OOM-pressure policy must rescue it.
        let big = pool.allocate(AllocRequest::new(mib(200))).unwrap();
        assert_eq!(big.size, mib(200));
        let sched = service.scheduler().unwrap().stats();
        assert_eq!(sched.oom_rescues, 1);
        assert_eq!(sched.releases, 1);
        assert!(sched.bytes_reclaimed >= mib(160));
        assert_eq!(hoarder.stats().reserved_bytes, 0, "sibling cache released");
        pool.deallocate(big.id).unwrap();
    }

    #[test]
    fn oom_rescue_leaves_other_devices_caches_alone() {
        // The hoarder sits on a DIFFERENT physical device (its own driver,
        // no shared affinity): flushing its warm cache could not relieve
        // the failing pool's pressure, so the rescue must not touch it.
        let service = PoolService::with_scheduler(DefragScheduler::oom_pressure());
        let other_driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let hoarder = service
            .register(
                DeviceId(0),
                Box::new(CachingAllocator::new(other_driver.clone())),
            )
            .unwrap();
        let pool = service.register(DeviceId(1), caching_pool()).unwrap();
        let a = hoarder.allocate(AllocRequest::new(mib(40))).unwrap();
        hoarder.deallocate(a.id).unwrap();
        assert!(hoarder.stats().reserved_bytes >= mib(40), "cache warm");
        // Exhaust the failing pool's own device for real.
        let err = pool.allocate(AllocRequest::new(mib(400))).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        assert!(
            hoarder.stats().reserved_bytes >= mib(40),
            "unrelated device's cache survived the rescue"
        );
    }

    #[test]
    fn oom_still_surfaces_when_rescue_cannot_help() {
        let service = PoolService::with_scheduler(DefragScheduler::oom_pressure());
        let pool = service.register(DeviceId(0), caching_pool()).unwrap();
        let hold = pool.allocate(AllocRequest::new(mib(200))).unwrap();
        let err = pool.allocate(AllocRequest::new(mib(200))).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        pool.deallocate(hold.id).unwrap();
    }

    #[test]
    fn defrag_sweep_covers_every_pool() {
        let service = PoolService::with_scheduler(DefragScheduler::frag_threshold(0.5, 1));
        let handles: Vec<PoolHandle> = (0..3)
            .map(|i| service.register(DeviceId(i), caching_pool()).unwrap())
            .collect();
        // Fragment pools 0 and 2 (idle cache, zero active), keep pool 1 empty.
        for i in [0usize, 2] {
            let a = handles[i].allocate(AllocRequest::new(mib(8))).unwrap();
            handles[i].deallocate(a.id).unwrap();
        }
        let outcome = service.defrag_sweep();
        assert_eq!(outcome.pools_evaluated, 3);
        assert_eq!(outcome.actions_applied, 2);
        assert!(outcome.bytes_reclaimed >= 2 * mib(8));
        assert_eq!(handles[0].stats().reserved_bytes, 0);
        assert_eq!(handles[2].stats().reserved_bytes, 0);
        // A second sweep finds nothing fragmented.
        let outcome2 = service.defrag_sweep();
        assert_eq!(outcome2.actions_applied, 0);
    }

    #[test]
    fn sweep_without_scheduler_is_a_noop() {
        let service = PoolService::new();
        service.register(DeviceId(0), caching_pool()).unwrap();
        assert_eq!(service.defrag_sweep(), SweepOutcome::default());
        assert!(service.scheduler().is_none());
    }

    #[test]
    fn gmlake_pool_through_handle_stitches() {
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let service = PoolService::new();
        let pool = service
            .register(
                DeviceId(0),
                Box::new(GmLakeAllocator::new(
                    driver.clone(),
                    GmLakeConfig::default().with_frag_limit(mib(2)),
                )),
            )
            .unwrap();
        let a = pool.allocate(AllocRequest::new(mib(4))).unwrap();
        let b = pool.allocate(AllocRequest::new(mib(6))).unwrap();
        pool.deallocate(a.id).unwrap();
        pool.deallocate(b.id).unwrap();
        // Freed large blocks park in the front-end's per-stream banks;
        // flushing hands them to the core's stitcher (what every defrag
        // sweep does before compacting).
        pool.allocator().flush();
        let before = driver.phys_in_use();
        let c = pool.allocate(AllocRequest::new(mib(10))).unwrap();
        assert_eq!(driver.phys_in_use(), before, "stitched, no new physical");
        let stitches = pool.with_allocator(|alloc| {
            // Downcast-free escape hatch: name proves which allocator runs.
            assert_eq!(alloc.name(), "gmlake");
            alloc.stats().alloc_count
        });
        assert_eq!(stitches, 3);
        pool.deallocate(c.id).unwrap();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shared_allocator_still_registers() {
        // Migration window: the SharedAllocator shim must keep working at
        // the service boundary for one release, with its old single-mutex
        // semantics (no front-end caching that outside clones cannot see).
        let service = PoolService::new();
        let shared = gmlake_alloc_api::share(CachingAllocator::new(CudaDriver::new(
            DeviceConfig::small_test().with_backing(false),
        )));
        let mut outside = shared.clone();
        let pool = service.register_shared(DeviceId(0), shared).unwrap();
        let a = pool.allocate(AllocRequest::new(1024)).unwrap();
        assert_eq!(
            outside.stats().active_bytes,
            a.size,
            "outside clone sees the allocation (fast path disabled)"
        );
        outside.deallocate(a.id).unwrap();
        assert_eq!(pool.stats().active_bytes, 0);
        assert_eq!(pool.name(), "pytorch-caching");
    }

    #[test]
    fn small_traffic_through_the_handle_rides_the_shards() {
        let service = PoolService::new();
        let pool = service.register(DeviceId(0), caching_pool()).unwrap();
        let warm = pool.allocate(AllocRequest::new(1024)).unwrap();
        pool.deallocate(warm.id).unwrap();
        let before = pool.allocator().cache_stats();
        let a = pool.allocate(AllocRequest::new(1024)).unwrap();
        pool.deallocate(a.id).unwrap();
        let after = pool.allocator().cache_stats();
        assert_eq!(after.hits, before.hits + 1, "served from the shard cache");
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn stream_routing_through_the_handle_uses_per_stream_banks() {
        use gmlake_alloc_api::StreamId;
        let service = PoolService::new();
        let front = DeviceAllocator::with_config(
            CachingAllocator::new(CudaDriver::new(
                DeviceConfig::small_test().with_backing(false),
            )),
            DeviceAllocatorConfig::default().with_streams(2),
        );
        let pool = service.register_device(DeviceId(0), front).unwrap();
        assert_eq!(pool.allocator().cache_stats().streams, 2);
        // Warm the same size class on both streams: two distinct blocks,
        // each parked in its own stream's bank.
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(0))
            .unwrap();
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        assert_ne!(a.va, b.va);
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
        let alloc = pool.allocator();
        assert_eq!(alloc.stream_cache_stats(StreamId(0)).cached_blocks, 1);
        assert_eq!(alloc.stream_cache_stats(StreamId(1)).cached_blocks, 1);
        // Warm reuse stays within the stream.
        let a2 = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(0))
            .unwrap();
        assert_eq!(a2.va, a.va);
        // Cross-stream free through the handle: no event source on this
        // pool, so it takes the conservative fallback through the core.
        pool.free_on_stream(a2.id, StreamId(1)).unwrap();
        assert_eq!(alloc.cache_stats().cross_stream_fallback, 1);
        assert_eq!(alloc.cache_stats().cross_stream_parked, 0);
        let s = pool.stats();
        assert_eq!(s.alloc_count, 3);
        assert_eq!(s.free_count, 3);
        assert_eq!(s.active_bytes, 0);
    }

    #[test]
    fn event_guarded_cross_stream_reuse_through_the_handle() {
        use gmlake_alloc_api::StreamId;
        use std::sync::Arc;
        // A pool whose front-end shares the device's driver as its event
        // source: cross-stream frees park in pending rings; the handle's
        // process_events tick promotes them once their event completes (the
        // zero-cost test device completes events at record time).
        let service = PoolService::new();
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let front = DeviceAllocator::with_config_and_events(
            CachingAllocator::new(driver.clone()),
            DeviceAllocatorConfig::default().with_streams(2),
            Arc::new(driver.clone()),
        );
        let pool = service.register_device(DeviceId(0), front).unwrap();
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        // In-flight work on the freeing stream keeps the event pending, so
        // the free must park the block in the ring, not re-pool it.
        driver.stream_launch(StreamId(0), 1_000);
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        let c = pool.allocator().cache_stats();
        assert_eq!(c.cross_stream_parked, 1, "event recorded, block parked");
        assert_eq!(c.cross_stream_fallback, 0, "no core round trip");
        assert_eq!(c.pending_blocks, 1);
        assert_eq!(pool.process_events(), 0, "stream work still in flight");
        // The host catches up with the stream; the handle tick promotes.
        driver.advance_clock(2_000);
        assert_eq!(pool.process_events(), 1, "handle tick promoted the block");
        // The owning stream reuses the promoted block without core traffic.
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        assert_eq!(b.va, a.va);
        assert_eq!(pool.allocator().cache_stats().hits, 1);
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (2, 2, 0));
        assert_eq!(driver.outstanding_events(), 0, "no event leaked");
    }

    #[test]
    fn oom_rescue_covers_the_stream_alloc_path() {
        // Same sibling-hoarder setup as the default-stream rescue test, but
        // the failing allocation arrives via alloc_on_stream: the policy
        // rescue must kick in on that path too.
        use gmlake_alloc_api::StreamId;
        let service = PoolService::with_scheduler(DefragScheduler::oom_pressure());
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let hoarder = service
            .register_with_affinity(
                DeviceId(0),
                Box::new(CachingAllocator::new(driver.clone())),
                0,
            )
            .unwrap();
        let pool = service
            .register_with_affinity(
                DeviceId(1),
                Box::new(CachingAllocator::new(driver.clone())),
                0,
            )
            .unwrap();
        let ids: Vec<_> = (0..4)
            .map(|_| hoarder.allocate(AllocRequest::new(mib(40))).unwrap().id)
            .collect();
        for id in ids {
            hoarder.deallocate(id).unwrap();
        }
        assert!(driver.phys_in_use() >= mib(160), "sibling cache retained");
        let big = pool
            .alloc_on_stream(AllocRequest::new(mib(200)), StreamId(1))
            .unwrap();
        assert_eq!(big.size, mib(200));
        assert_eq!(service.scheduler().unwrap().stats().oom_rescues, 1);
        pool.free_on_stream(big.id, StreamId(1)).unwrap();
    }

    /// A [`RescueHook`] that releases a sibling pool's idle cache — memory
    /// the failing pool's own flush/drain/compact stages cannot reach.
    #[derive(Debug)]
    struct FlushSibling(PoolHandle);

    impl RescueHook for FlushSibling {
        fn rescue(&self, _needed: u64) -> u64 {
            self.0.release_cached()
        }
    }

    #[test]
    fn rescue_hook_runs_as_stage_four_and_saves_the_allocation() {
        // No scheduler and no affinity: stages 1–3 find nothing (the
        // failing pool is empty) and stage 5 cannot run, so only the
        // installed hook can save the 200 MiB request from the hoarder's
        // 160 MiB of idle cache on the shared 256 MiB device.
        let service = PoolService::new();
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let hoarder = service
            .register(DeviceId(0), Box::new(CachingAllocator::new(driver.clone())))
            .unwrap();
        let pool = service
            .register(DeviceId(1), Box::new(CachingAllocator::new(driver.clone())))
            .unwrap();
        let ids: Vec<_> = (0..4)
            .map(|_| hoarder.allocate(AllocRequest::new(mib(40))).unwrap().id)
            .collect();
        for id in ids {
            hoarder.deallocate(id).unwrap();
        }
        assert!(driver.phys_in_use() >= mib(160), "sibling cache retained");
        pool.set_rescue_hook(Arc::new(FlushSibling(hoarder.clone())));
        let big = pool.allocate(AllocRequest::new(mib(200))).unwrap();
        assert_eq!(big.size, mib(200));
        assert_eq!(hoarder.stats().reserved_bytes, 0, "hook flushed sibling");
        assert_eq!(pool.fault_stats().rescues, 1, "rescue pipeline saved it");
        pool.deallocate(big.id).unwrap();
        pool.release_cached();
        // Without the hook the same pressure surfaces as OOM again.
        let hook = pool.clear_rescue_hook();
        assert!(hook.is_some(), "installed hook handed back");
        let refill: Vec<_> = (0..4)
            .map(|_| hoarder.allocate(AllocRequest::new(mib(40))).unwrap().id)
            .collect();
        for id in refill {
            hoarder.deallocate(id).unwrap();
        }
        let err = pool.allocate(AllocRequest::new(mib(200))).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }

    #[test]
    fn handles_are_send_and_clone() {
        fn assert_send<T: Send + Clone>() {}
        assert_send::<PoolHandle>();
        assert_send::<PoolService>();
    }

    #[test]
    fn transient_driver_fault_is_retried_and_absorbed() {
        use gmlake_gpu_sim::{FaultOp, FaultPlan};
        let service = PoolService::with_fault_policy(FaultPolicy {
            backoff_us: 0,
            ..FaultPolicy::default()
        });
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let pool = service
            .register(
                DeviceId(0),
                Box::new(GmLakeAllocator::new(
                    driver.clone(),
                    GmLakeConfig::default().with_frag_limit(mib(2)),
                )),
            )
            .unwrap();
        // The next map-family driver call fails once; the service's bounded
        // retry must absorb it without surfacing an error.
        driver.set_fault_plan(FaultPlan::new().fail_nth(FaultOp::Map, 1));
        let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        assert_eq!(a.size, mib(8));
        let fs = pool.fault_stats();
        assert_eq!(fs.faults, 1);
        assert_eq!(fs.retries, 1);
        assert_eq!(fs.breaker_trips, 0);
        assert!(!fs.breaker_open);
        assert_eq!(driver.stats().injected_faults, 1);
        pool.deallocate(a.id).unwrap();
        pool.with_allocator(|core| {
            let lake = core
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<GmLakeAllocator>())
                .expect("gmlake core");
            assert_eq!(lake.validate(), Ok(()));
            assert!(lake.fault_journal().is_leak_free());
        });
    }

    #[test]
    fn breaker_degrades_to_unstitched_and_recovers_after_cooldown() {
        use gmlake_gpu_sim::{FaultOp, FaultPlan};
        let service = PoolService::with_fault_policy(FaultPolicy {
            max_retries: 0, // surface each fault so the breaker sees them
            backoff_us: 0,
            breaker_threshold: 2,
            breaker_cooldown: 2,
        });
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let pool = service
            .register(
                DeviceId(0),
                Box::new(GmLakeAllocator::new(
                    driver.clone(),
                    GmLakeConfig::default().with_frag_limit(mib(2)),
                )),
            )
            .unwrap();
        // Build a stitchable pool state: two freed blocks of 4 and 6 MiB,
        // flushed out of the front-end's large banks so the core's
        // stitcher sees them.
        let a = pool.allocate(AllocRequest::new(mib(4))).unwrap();
        let b = pool.allocate(AllocRequest::new(mib(6))).unwrap();
        pool.deallocate(a.id).unwrap();
        pool.deallocate(b.id).unwrap();
        pool.allocator().flush();
        // The next two map-family calls fault: two consecutive stitch
        // attempts fail and trip the breaker.
        driver.set_fault_plan(
            FaultPlan::new()
                .fail_nth(FaultOp::Map, 1)
                .fail_nth(FaultOp::Map, 2),
        );
        for _ in 0..2 {
            let err = pool.allocate(AllocRequest::new(mib(10))).unwrap_err();
            assert!(matches!(err, AllocError::DriverFault { .. }), "{err}");
        }
        assert!(pool.fault_stats().breaker_open, "breaker tripped");
        assert_eq!(pool.fault_stats().breaker_trips, 1);
        // Degraded mode: the same S3-shaped request is served by a whole
        // fresh pBlock — no stitching, new physical memory.
        let phys_before = driver.phys_in_use();
        let c = pool.allocate(AllocRequest::new(mib(10))).unwrap();
        assert!(
            driver.phys_in_use() > phys_before,
            "degraded path allocated fresh physical memory instead of stitching"
        );
        pool.deallocate(c.id).unwrap();
        // The cooldown (2 attempts) has elapsed after one more allocation:
        // the breaker re-probes and stitching comes back.
        let d = pool.allocate(AllocRequest::new(mib(4))).unwrap();
        pool.deallocate(d.id).unwrap();
        assert!(!pool.fault_stats().breaker_open, "breaker closed again");
        pool.with_allocator(|core| {
            let lake = core
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<GmLakeAllocator>())
                .expect("gmlake core");
            assert!(lake.stitch_is_enabled(), "stitching re-enabled");
            assert_eq!(lake.validate(), Ok(()));
            assert!(lake.fault_journal().is_leak_free());
        });
        // And it is actually used again: a 14 MiB request stitches cached
        // blocks without growing physical memory (flush first — the 10 and
        // 4 MiB blocks freed above are parked in the large banks).
        pool.allocator().flush();
        let phys = driver.phys_in_use();
        let e = pool.allocate(AllocRequest::new(mib(14))).unwrap();
        assert_eq!(driver.phys_in_use(), phys, "stitched from cache");
        pool.deallocate(e.id).unwrap();
    }
}
