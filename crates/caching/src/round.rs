//! Size-rounding and segment-sizing policy, mirroring PyTorch's
//! `CUDACachingAllocator` constants.

use gmlake_alloc_api::mib;

#[cfg(test)]
use gmlake_alloc_api::kib;

/// Configuration of the BFC caching allocator.
///
/// Defaults mirror PyTorch's `CUDACachingAllocator`:
/// * requests are rounded up to 512 B;
/// * requests ≤ 1 MiB are served from 2 MiB "small" segments;
/// * requests ≤ 10 MiB are served from 20 MiB "large" segments;
/// * larger requests get a dedicated segment rounded to 2 MiB;
/// * a free block is split when the remainder is ≥ 512 B (small pool) or
///   ≥ 1 MiB (large pool).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfcConfig {
    /// Granularity every request is rounded up to (512 B in PyTorch).
    pub round: u64,
    /// Requests up to this size use the small pool (1 MiB).
    pub small_size: u64,
    /// Segment size of the small pool (2 MiB).
    pub small_buffer: u64,
    /// Requests up to this size get `large_buffer`-sized segments (10 MiB).
    pub medium_size: u64,
    /// Minimum large-pool segment size (20 MiB).
    pub large_buffer: u64,
    /// Segment sizes above `medium_size` round to this multiple (2 MiB).
    pub segment_round: u64,
    /// Remainder below which a small-pool block is not split (512 B).
    pub small_split_remainder: u64,
    /// Remainder below which a large-pool block is not split (1 MiB).
    pub large_split_remainder: u64,
    /// Blocks larger than this are never split (PyTorch's
    /// `max_split_size_mb`); `None` means unlimited.
    pub max_split_size: Option<u64>,
}

impl Default for BfcConfig {
    fn default() -> Self {
        BfcConfig {
            round: 512,
            small_size: mib(1),
            small_buffer: mib(2),
            medium_size: mib(10),
            large_buffer: mib(20),
            segment_round: mib(2),
            small_split_remainder: 512,
            large_split_remainder: mib(1),
            max_split_size: None,
        }
    }
}

/// Which pool a block/segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// ≤ 1 MiB requests, 2 MiB segments.
    Small,
    /// > 1 MiB requests.
    Large,
}

impl BfcConfig {
    /// Rounds a request up to the allocation granularity.
    ///
    /// ```
    /// use gmlake_caching::BfcConfig;
    /// let c = BfcConfig::default();
    /// assert_eq!(c.round_size(1), 512);
    /// assert_eq!(c.round_size(512), 512);
    /// assert_eq!(c.round_size(513), 1024);
    /// ```
    pub fn round_size(&self, size: u64) -> u64 {
        debug_assert!(size > 0);
        size.div_ceil(self.round) * self.round
    }

    /// Pool serving a (rounded) request of `size` bytes.
    pub fn pool_for(&self, size: u64) -> PoolKind {
        if size <= self.small_size {
            PoolKind::Small
        } else {
            PoolKind::Large
        }
    }

    /// Size of the fresh segment to `cudaMalloc` for a rounded request.
    pub fn segment_size(&self, rounded: u64) -> u64 {
        if rounded <= self.small_size {
            self.small_buffer
        } else if rounded < self.medium_size {
            self.large_buffer
        } else {
            rounded.div_ceil(self.segment_round) * self.segment_round
        }
    }

    /// Whether a free block of `block_size` may be split after serving a
    /// request of `rounded` bytes from pool `pool`.
    pub fn should_split(&self, pool: PoolKind, block_size: u64, rounded: u64) -> bool {
        if let Some(max) = self.max_split_size {
            if block_size > max {
                return false;
            }
        }
        let remainder = block_size - rounded;
        match pool {
            PoolKind::Small => remainder >= self.small_split_remainder,
            PoolKind::Large => remainder >= self.large_split_remainder,
        }
    }

    /// Smallest request a cached block of `block_size` in `pool` may serve.
    ///
    /// PyTorch refuses to serve a small request from an oversized cached
    /// block when the block is marked unsplittable (`max_split_size`), since
    /// that would waste the entire remainder.
    pub fn can_serve(&self, pool: PoolKind, block_size: u64, rounded: u64) -> bool {
        if block_size < rounded {
            return false;
        }
        if let Some(max) = self.max_split_size {
            // An unsplittable block must not be grossly oversized for the
            // request (PyTorch allows up to `kLargeBuffer` of slack).
            if block_size > max && rounded <= max && block_size - rounded >= self.large_buffer {
                return false;
            }
        }
        let _ = pool;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_is_multiple_of_512() {
        let c = BfcConfig::default();
        for s in [1, 511, 512, 513, 1000, 4096, 1_000_000] {
            let r = c.round_size(s);
            assert!(r >= s);
            assert_eq!(r % 512, 0);
            assert!(r - s < 512);
        }
    }

    #[test]
    fn pool_selection_threshold() {
        let c = BfcConfig::default();
        assert_eq!(c.pool_for(kib(4)), PoolKind::Small);
        assert_eq!(c.pool_for(mib(1)), PoolKind::Small);
        assert_eq!(c.pool_for(mib(1) + 512), PoolKind::Large);
    }

    #[test]
    fn segment_sizes_match_pytorch_policy() {
        let c = BfcConfig::default();
        assert_eq!(c.segment_size(kib(64)), mib(2)); // small buffer
        assert_eq!(c.segment_size(mib(2)), mib(20)); // large buffer
        assert_eq!(c.segment_size(mib(9)), mib(20));
        assert_eq!(c.segment_size(mib(10)), mib(10)); // exact multiple of 2 MiB
        assert_eq!(c.segment_size(mib(21)), mib(22)); // rounded to 2 MiB
    }

    #[test]
    fn split_policy_by_pool() {
        let c = BfcConfig::default();
        assert!(c.should_split(PoolKind::Small, kib(2), kib(1)));
        assert!(!c.should_split(PoolKind::Small, kib(1) + 256, kib(1)));
        assert!(c.should_split(PoolKind::Large, mib(22), mib(20)));
        assert!(!c.should_split(PoolKind::Large, mib(20) + kib(512), mib(20)));
    }

    #[test]
    fn max_split_size_disables_splitting() {
        let c = BfcConfig {
            max_split_size: Some(mib(64)),
            ..BfcConfig::default()
        };
        assert!(!c.should_split(PoolKind::Large, mib(128), mib(20)));
        assert!(c.should_split(PoolKind::Large, mib(64), mib(20)));
    }

    #[test]
    fn oversized_unsplittable_blocks_do_not_serve_small_requests() {
        let c = BfcConfig {
            max_split_size: Some(mib(64)),
            ..BfcConfig::default()
        };
        // 512 MiB cached block, 2 MiB request: refused (would waste 510 MiB).
        assert!(!c.can_serve(PoolKind::Large, mib(512), mib(2)));
        // But a 65 MiB request may take it.
        assert!(c.can_serve(PoolKind::Large, mib(512), mib(500)));
        // Without the knob everything oversized can serve.
        let d = BfcConfig::default();
        assert!(d.can_serve(PoolKind::Large, mib(512), mib(2)));
    }
}
