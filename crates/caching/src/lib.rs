//! PyTorch-style caching allocator (best fit with coalescing).
//!
//! This is the baseline GMLake is evaluated against in every figure of the
//! paper. It keeps a pool of `cudaMalloc`-ed *segments*, serves requests by
//! best fit, splits oversized blocks, and merges adjacent inactive blocks —
//! fast, but prone to fragmentation under irregular request streams because
//! a split remainder can only serve requests that fit *inside* it, and a
//! segment can only be returned to the device once *every* block in it is
//! free.
//!
//! ```
//! use gmlake_caching::CachingAllocator;
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_alloc_api::{AllocRequest, AllocatorCore, mib};
//!
//! let driver = CudaDriver::new(DeviceConfig::small_test());
//! let mut alloc = CachingAllocator::new(driver.clone());
//! let a = alloc.allocate(AllocRequest::new(mib(6)))?;
//! alloc.deallocate(a.id)?;
//! // Reuse served from cache: no second cudaMalloc.
//! let b = alloc.allocate(AllocRequest::new(mib(6)))?;
//! assert_eq!(driver.stats().mem_alloc.calls, 1);
//! # alloc.deallocate(b.id)?;
//! # Ok::<(), gmlake_alloc_api::AllocError>(())
//! ```

mod bfc;
mod round;

pub use bfc::{CachingAllocator, SegmentView};
pub use round::{BfcConfig, PoolKind};
