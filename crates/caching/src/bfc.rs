//! Best-fit-with-coalescing caching allocator (the PyTorch baseline).
//!
//! Implements the four BFC operations of the paper's §2.2 / Figure 2(b):
//!
//! 1. **Best fit** — find the smallest inactive cached block that fits; fall
//!    back to `cudaMalloc`-ing a fresh segment;
//! 2. **Split** — carve the request out of a larger block, leaving the
//!    remainder cached (the source of the fragmentation GMLake attacks);
//! 3. **Free** — deallocation only flips the block inactive, never calls
//!    `cudaFree`;
//! 4. **Merge** — adjacent inactive blocks of a segment coalesce.
//!
//! Segments are returned to the device only by [`CachingAllocator::release_cached`]
//! (PyTorch's `empty_cache`) or by the out-of-memory retry path.

use std::collections::{BTreeSet, HashMap};

use gmlake_alloc_api::{
    AllocError, AllocRequest, Allocation, AllocationId, AllocatorCore, MemStats, VirtAddr,
};
use gmlake_gpu_sim::{CudaDriver, DriverError};

use crate::round::{BfcConfig, PoolKind};

type BlockId = u64;
type SegmentId = u64;

#[derive(Debug)]
struct Block {
    segment: SegmentId,
    offset: u64,
    size: u64,
    free: bool,
    prev: Option<BlockId>,
    next: Option<BlockId>,
}

#[derive(Debug)]
struct Segment {
    va: VirtAddr,
    size: u64,
    pool: PoolKind,
    head: BlockId,
}

/// Read-only view of a segment, for diagnostics and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentView {
    /// Total segment size in bytes.
    pub size: u64,
    /// Pool the segment belongs to.
    pub pool: PoolKind,
    /// Bytes currently free inside the segment.
    pub free_bytes: u64,
    /// Number of blocks the segment is split into.
    pub blocks: usize,
}

/// PyTorch-style caching allocator.
///
/// # Example
///
/// ```
/// use gmlake_caching::CachingAllocator;
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
/// use gmlake_alloc_api::{AllocRequest, AllocatorCore, mib};
///
/// let driver = CudaDriver::new(DeviceConfig::small_test());
/// let mut alloc = CachingAllocator::new(driver);
/// let a = alloc.allocate(AllocRequest::new(mib(6)))?;
/// alloc.deallocate(a.id)?;
/// // The segment stays cached: reserved memory does not drop.
/// assert!(alloc.stats().reserved_bytes >= mib(20));
/// # Ok::<(), gmlake_alloc_api::AllocError>(())
/// ```
#[derive(Debug)]
pub struct CachingAllocator {
    driver: CudaDriver,
    config: BfcConfig,
    host_op_ns: u64,
    blocks: HashMap<BlockId, Block>,
    next_block: BlockId,
    segments: HashMap<SegmentId, Segment>,
    next_segment: SegmentId,
    /// Free blocks keyed `(size, id)` per pool — best fit is the first entry
    /// `≥ (rounded, 0)`.
    free_small: BTreeSet<(u64, BlockId)>,
    free_large: BTreeSet<(u64, BlockId)>,
    live: HashMap<AllocationId, BlockId>,
    next_alloc: u64,
    stats: MemStats,
    reserved: u64,
}

impl CachingAllocator {
    /// Creates a caching allocator with PyTorch defaults on `driver`.
    pub fn new(driver: CudaDriver) -> Self {
        Self::with_config(driver, BfcConfig::default())
    }

    /// Creates a caching allocator with a custom configuration.
    pub fn with_config(driver: CudaDriver, config: BfcConfig) -> Self {
        let host_op_ns = driver.host_op_ns();
        CachingAllocator {
            driver,
            config,
            host_op_ns,
            blocks: HashMap::new(),
            next_block: 0,
            segments: HashMap::new(),
            next_segment: 0,
            free_small: BTreeSet::new(),
            free_large: BTreeSet::new(),
            live: HashMap::new(),
            next_alloc: 0,
            stats: MemStats::default(),
            reserved: 0,
        }
    }

    /// The allocator's configuration.
    pub fn config(&self) -> &BfcConfig {
        &self.config
    }

    /// The underlying driver handle.
    pub fn driver(&self) -> &CudaDriver {
        &self.driver
    }

    /// Number of segments currently cached or in use.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes sitting free inside cached segments.
    pub fn free_bytes(&self) -> u64 {
        self.free_small
            .iter()
            .chain(self.free_large.iter())
            .map(|(s, _)| s)
            .sum()
    }

    /// Size of the largest single free block (the biggest request the cache
    /// could serve without growing).
    pub fn largest_free_block(&self) -> u64 {
        let a = self.free_small.iter().next_back().map_or(0, |(s, _)| *s);
        let b = self.free_large.iter().next_back().map_or(0, |(s, _)| *s);
        a.max(b)
    }

    /// Per-segment views, for diagnostics.
    pub fn segment_views(&self) -> Vec<SegmentView> {
        let mut views: Vec<SegmentView> = self
            .segments
            .values()
            .map(|seg| {
                let mut free_bytes = 0;
                let mut blocks = 0;
                let mut cur = Some(seg.head);
                while let Some(id) = cur {
                    let b = &self.blocks[&id];
                    if b.free {
                        free_bytes += b.size;
                    }
                    blocks += 1;
                    cur = b.next;
                }
                SegmentView {
                    size: seg.size,
                    pool: seg.pool,
                    free_bytes,
                    blocks,
                }
            })
            .collect();
        views.sort_by_key(|v| v.size);
        views
    }

    fn free_set(&mut self, pool: PoolKind) -> &mut BTreeSet<(u64, BlockId)> {
        match pool {
            PoolKind::Small => &mut self.free_small,
            PoolKind::Large => &mut self.free_large,
        }
    }

    /// Best-fit lookup honoring the `can_serve` policy.
    fn find_best_fit(&self, pool: PoolKind, rounded: u64) -> Option<BlockId> {
        let set = match pool {
            PoolKind::Small => &self.free_small,
            PoolKind::Large => &self.free_large,
        };
        for &(size, id) in set.range((rounded, 0)..) {
            if self.config.can_serve(pool, size, rounded) {
                return Some(id);
            }
        }
        None
    }

    /// `cudaMalloc`s a new segment sized for `rounded` and registers it as a
    /// single free block. On device OOM, releases every fully-free cached
    /// segment and retries once.
    fn grow(&mut self, pool: PoolKind, rounded: u64) -> Result<BlockId, AllocError> {
        let seg_size = self.config.segment_size(rounded);
        let va = match self.driver.mem_alloc(seg_size) {
            Ok(va) => va,
            Err(DriverError::OutOfMemory { .. }) => {
                self.release_cached_segments();
                match self.driver.mem_alloc(seg_size) {
                    Ok(va) => va,
                    Err(DriverError::OutOfMemory { requested, .. }) => {
                        return Err(AllocError::OutOfMemory {
                            requested,
                            reserved: self.reserved,
                            capacity: self.driver.capacity(),
                        })
                    }
                    Err(e) => return Err(AllocError::driver_fault("mem_alloc", e)),
                }
            }
            Err(e) => return Err(AllocError::driver_fault("mem_alloc", e)),
        };
        self.next_segment += 1;
        let seg_id = self.next_segment;
        self.next_block += 1;
        let block_id = self.next_block;
        self.segments.insert(
            seg_id,
            Segment {
                va,
                size: seg_size,
                pool,
                head: block_id,
            },
        );
        self.blocks.insert(
            block_id,
            Block {
                segment: seg_id,
                offset: 0,
                size: seg_size,
                free: true,
                prev: None,
                next: None,
            },
        );
        self.free_set(pool).insert((seg_size, block_id));
        self.reserved += seg_size;
        self.stats.set_reserved(self.reserved);
        Ok(block_id)
    }

    /// Splits `block` so its first `rounded` bytes serve the request; the
    /// remainder becomes a new free block.
    fn split(&mut self, block_id: BlockId, rounded: u64, pool: PoolKind) {
        let (rest_offset, rest_size, next, segment) = {
            let b = &self.blocks[&block_id];
            (b.offset + rounded, b.size - rounded, b.next, b.segment)
        };
        debug_assert!(rest_size > 0);
        self.next_block += 1;
        let rest_id = self.next_block;
        self.blocks.insert(
            rest_id,
            Block {
                segment,
                offset: rest_offset,
                size: rest_size,
                free: true,
                prev: Some(block_id),
                next,
            },
        );
        if let Some(n) = next {
            self.blocks.get_mut(&n).expect("linked block exists").prev = Some(rest_id);
        }
        {
            let b = self.blocks.get_mut(&block_id).expect("candidate exists");
            b.size = rounded;
            b.next = Some(rest_id);
        }
        self.free_set(pool).insert((rest_size, rest_id));
    }

    /// Merges `block` (just freed) with free neighbors; returns the id of the
    /// surviving block, already sized but *not yet* inserted into a free set.
    fn merge_neighbors(&mut self, block_id: BlockId, pool: PoolKind) -> BlockId {
        // Absorb the next block if free.
        let next_info = {
            let b = &self.blocks[&block_id];
            b.next.and_then(|n| {
                let nb = &self.blocks[&n];
                nb.free.then_some((n, nb.size, nb.next))
            })
        };
        if let Some((n, n_size, n_next)) = next_info {
            self.free_set(pool).remove(&(n_size, n));
            self.blocks.remove(&n);
            let b = self.blocks.get_mut(&block_id).expect("block exists");
            b.size += n_size;
            b.next = n_next;
            if let Some(nn) = n_next {
                self.blocks.get_mut(&nn).expect("linked block exists").prev = Some(block_id);
            }
        }
        // Absorb into the previous block if free.
        let prev_info = {
            let b = &self.blocks[&block_id];
            b.prev.and_then(|p| {
                let pb = &self.blocks[&p];
                pb.free.then_some((p, pb.size))
            })
        };
        if let Some((p, p_size)) = prev_info {
            self.free_set(pool).remove(&(p_size, p));
            let (b_size, b_next) = {
                let b = &self.blocks[&block_id];
                (b.size, b.next)
            };
            self.blocks.remove(&block_id);
            let pb = self.blocks.get_mut(&p).expect("prev block exists");
            pb.size += b_size;
            pb.next = b_next;
            if let Some(nn) = b_next {
                self.blocks.get_mut(&nn).expect("linked block exists").prev = Some(p);
            }
            return p;
        }
        block_id
    }

    /// Frees every segment that consists of a single free block. Returns the
    /// number of bytes released to the device.
    fn release_cached_segments(&mut self) -> u64 {
        let releasable: Vec<SegmentId> = self
            .segments
            .iter()
            .filter(|(_, seg)| {
                let head = &self.blocks[&seg.head];
                head.free && head.size == seg.size
            })
            .map(|(id, _)| *id)
            .collect();
        let mut released = 0;
        for seg_id in releasable {
            // An injected (or transient) driver fault keeps the segment
            // cached: nothing was freed, so the books stay untouched and a
            // later release pass simply retries.
            let va = self.segments[&seg_id].va;
            if self.driver.mem_free(va).is_err() {
                continue;
            }
            let seg = self.segments.remove(&seg_id).expect("collected above");
            let head = self.blocks.remove(&seg.head).expect("head exists");
            self.free_set(seg.pool).remove(&(head.size, seg.head));
            self.reserved -= seg.size;
            released += seg.size;
        }
        self.stats.set_reserved(self.reserved);
        released
    }

    /// Verifies all internal invariants; used heavily by tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen_blocks = 0usize;
        for (seg_id, seg) in &self.segments {
            let mut cur = Some(seg.head);
            let mut expected_offset = 0u64;
            let mut prev: Option<BlockId> = None;
            let mut prev_free = false;
            while let Some(id) = cur {
                let b = self
                    .blocks
                    .get(&id)
                    .ok_or_else(|| format!("segment {seg_id}: dangling block {id}"))?;
                if b.segment != *seg_id {
                    return Err(format!("block {id} points to wrong segment"));
                }
                if b.offset != expected_offset {
                    return Err(format!(
                        "segment {seg_id}: block {id} at offset {} expected {expected_offset}",
                        b.offset
                    ));
                }
                if b.prev != prev {
                    return Err(format!("block {id}: prev link mismatch"));
                }
                if b.free && prev_free {
                    return Err(format!(
                        "segment {seg_id}: adjacent free blocks not merged at {id}"
                    ));
                }
                if b.free {
                    let set = match seg.pool {
                        PoolKind::Small => &self.free_small,
                        PoolKind::Large => &self.free_large,
                    };
                    if !set.contains(&(b.size, id)) {
                        return Err(format!("free block {id} missing from free set"));
                    }
                }
                expected_offset += b.size;
                prev_free = b.free;
                prev = Some(id);
                seen_blocks += 1;
                cur = b.next;
            }
            if expected_offset != seg.size {
                return Err(format!(
                    "segment {seg_id}: blocks tile {expected_offset} of {} bytes",
                    seg.size
                ));
            }
        }
        if seen_blocks != self.blocks.len() {
            return Err(format!(
                "{} blocks reachable but {} stored",
                seen_blocks,
                self.blocks.len()
            ));
        }
        let free_entries = self.free_small.len() + self.free_large.len();
        let free_blocks = self.blocks.values().filter(|b| b.free).count();
        if free_entries != free_blocks {
            return Err(format!(
                "{free_entries} free-set entries vs {free_blocks} free blocks"
            ));
        }
        for (alloc, block) in &self.live {
            match self.blocks.get(block) {
                None => return Err(format!("{alloc} maps to dangling block {block}")),
                Some(b) if b.free => return Err(format!("{alloc} maps to a free block")),
                _ => {}
            }
        }
        Ok(())
    }
}

impl AllocatorCore for CachingAllocator {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        if req.size == 0 {
            return Err(AllocError::ZeroSize);
        }
        self.driver.advance_clock(self.host_op_ns);
        let rounded = self.config.round_size(req.size);
        let pool = self.config.pool_for(rounded);
        let block_id = match self.find_best_fit(pool, rounded) {
            Some(id) => id,
            None => self.grow(pool, rounded)?,
        };
        let size = self.blocks[&block_id].size;
        self.free_set(pool).remove(&(size, block_id));
        if size > rounded && self.config.should_split(pool, size, rounded) {
            self.split(block_id, rounded, pool);
        }
        let b = self.blocks.get_mut(&block_id).expect("candidate exists");
        b.free = false;
        let block_size = b.size;
        let va = {
            let seg = &self.segments[&b.segment];
            seg.va.offset(b.offset)
        };
        self.next_alloc += 1;
        let id = AllocationId::new(self.next_alloc);
        self.live.insert(id, block_id);
        self.stats.on_alloc(req.size, block_size);
        Ok(Allocation {
            id,
            va,
            size: block_size,
            requested: req.size,
        })
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        let block_id = self
            .live
            .remove(&id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        self.driver.advance_clock(self.host_op_ns);
        let (size, pool) = {
            let b = self.blocks.get_mut(&block_id).expect("live block exists");
            b.free = true;
            (b.size, self.segments[&b.segment].pool)
        };
        self.stats.on_free(size);
        let survivor = self.merge_neighbors(block_id, pool);
        let final_size = self.blocks[&survivor].size;
        self.free_set(pool).insert((final_size, survivor));
        Ok(())
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "pytorch-caching"
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn release_cached(&mut self) -> u64 {
        self.release_cached_segments()
    }
}

impl Drop for CachingAllocator {
    fn drop(&mut self) {
        for seg in self.segments.values() {
            let _ = self.driver.mem_free(seg.va);
        }
        self.segments.clear();
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::mib;
    use gmlake_gpu_sim::DeviceConfig;

    fn allocator_with_capacity(cap: u64) -> CachingAllocator {
        let driver = CudaDriver::new(
            DeviceConfig::small_test()
                .with_capacity(cap)
                .with_backing(false),
        );
        CachingAllocator::new(driver)
    }

    #[test]
    fn small_request_reserves_small_buffer() {
        let mut a = allocator_with_capacity(mib(256));
        let x = a.allocate(AllocRequest::new(4096)).unwrap();
        assert_eq!(x.size, 4096);
        assert_eq!(a.stats().reserved_bytes, mib(2), "2 MiB small segment");
        a.validate().unwrap();
        a.deallocate(x.id).unwrap();
        assert_eq!(a.stats().reserved_bytes, mib(2), "segment stays cached");
        a.validate().unwrap();
    }

    #[test]
    fn large_request_reserves_large_buffer_and_splits() {
        let mut a = allocator_with_capacity(mib(256));
        let x = a.allocate(AllocRequest::new(mib(6))).unwrap();
        assert_eq!(a.stats().reserved_bytes, mib(20));
        // Remainder serves the next request without growing.
        let y = a.allocate(AllocRequest::new(mib(6))).unwrap();
        assert_eq!(a.stats().reserved_bytes, mib(20));
        assert_eq!(a.segment_count(), 1);
        a.validate().unwrap();
        a.deallocate(x.id).unwrap();
        a.deallocate(y.id).unwrap();
        a.validate().unwrap();
    }

    #[test]
    fn huge_request_gets_dedicated_rounded_segment() {
        let mut a = allocator_with_capacity(mib(256));
        let x = a.allocate(AllocRequest::new(mib(33))).unwrap();
        assert_eq!(a.stats().reserved_bytes, mib(34), "rounded to 2 MiB");
        a.deallocate(x.id).unwrap();
        a.validate().unwrap();
    }

    #[test]
    fn free_merges_adjacent_blocks() {
        let mut a = allocator_with_capacity(mib(256));
        let x = a.allocate(AllocRequest::new(mib(6))).unwrap();
        let y = a.allocate(AllocRequest::new(mib(6))).unwrap();
        let z = a.allocate(AllocRequest::new(mib(8))).unwrap();
        assert_eq!(a.segment_count(), 1);
        // Free outer blocks first: no merge possible across the active y.
        a.deallocate(x.id).unwrap();
        a.deallocate(z.id).unwrap();
        a.validate().unwrap();
        assert_eq!(a.largest_free_block(), mib(8));
        // Freeing the middle merges the whole segment back into one block.
        a.deallocate(y.id).unwrap();
        a.validate().unwrap();
        assert_eq!(a.largest_free_block(), mib(20));
        assert_eq!(a.free_bytes(), mib(20));
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_block() {
        let mut a = allocator_with_capacity(mib(256));
        // Build two cached blocks: 20 MiB and 34 MiB.
        let x = a.allocate(AllocRequest::new(mib(20))).unwrap();
        let y = a.allocate(AllocRequest::new(mib(34))).unwrap();
        a.deallocate(x.id).unwrap();
        a.deallocate(y.id).unwrap();
        assert_eq!(a.segment_count(), 2);
        // An 18 MiB request must take the 20 MiB block, not the 34 MiB one.
        let z = a.allocate(AllocRequest::new(mib(18))).unwrap();
        assert_eq!(a.stats().reserved_bytes, mib(54), "no growth");
        // The 34 MiB block must still be intact.
        assert_eq!(a.largest_free_block(), mib(34));
        a.deallocate(z.id).unwrap();
        a.validate().unwrap();
    }

    #[test]
    fn fragmentation_oom_despite_sufficient_total_free() {
        // The motivating scenario of the paper's Figure 1: plenty of free
        // bytes, none of them contiguous, so a large request dies.
        let mut a = allocator_with_capacity(mib(40));
        let x = a.allocate(AllocRequest::new(mib(6))).unwrap();
        let y = a.allocate(AllocRequest::new(mib(6))).unwrap();
        let z = a.allocate(AllocRequest::new(mib(8))).unwrap();
        let w = a.allocate(AllocRequest::new(mib(6))).unwrap(); // second segment
        assert_eq!(a.segment_count(), 2);
        assert_eq!(a.stats().reserved_bytes, mib(40)); // device full
        a.deallocate(x.id).unwrap();
        a.deallocate(z.id).unwrap();
        // 6 + 8 + 14 = 28 MiB free in total…
        assert_eq!(a.free_bytes(), mib(28));
        // …but the largest contiguous block is 14 MiB, so 16 MiB fails.
        let err = a.allocate(AllocRequest::new(mib(16))).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }), "{err}");
        assert_eq!(a.stats().oom_count, 0, "stats belong to caller policy");
        // Allocator state is still consistent and usable.
        a.validate().unwrap();
        let ok = a.allocate(AllocRequest::new(mib(14))).unwrap();
        a.deallocate(ok.id).unwrap();
        a.deallocate(y.id).unwrap();
        a.deallocate(w.id).unwrap();
        a.validate().unwrap();
    }

    #[test]
    fn oom_retry_releases_cached_segments() {
        let mut a = allocator_with_capacity(mib(40));
        let x = a.allocate(AllocRequest::new(mib(20))).unwrap();
        a.deallocate(x.id).unwrap();
        assert_eq!(a.stats().reserved_bytes, mib(20));
        // 40 MiB requested: device has only 20 MiB left, but the retry path
        // releases the cached 20 MiB segment first.
        let big = a.allocate(AllocRequest::new(mib(40))).unwrap();
        assert_eq!(big.size, mib(40));
        assert_eq!(a.stats().reserved_bytes, mib(40));
        a.deallocate(big.id).unwrap();
        a.validate().unwrap();
    }

    #[test]
    fn release_cached_frees_only_fully_free_segments() {
        let mut a = allocator_with_capacity(mib(256));
        let x = a.allocate(AllocRequest::new(mib(6))).unwrap();
        let y = a.allocate(AllocRequest::new(mib(30))).unwrap();
        a.deallocate(y.id).unwrap();
        let released = a.release_cached();
        assert_eq!(released, mib(30), "y's dedicated segment released");
        assert_eq!(a.stats().reserved_bytes, mib(20), "x's segment kept");
        a.deallocate(x.id).unwrap();
        assert_eq!(a.release_cached(), mib(20));
        assert_eq!(a.stats().reserved_bytes, 0);
        assert!(a.driver().snapshot().is_quiescent());
    }

    #[test]
    fn reserved_memory_never_shrinks_on_free() {
        let mut a = allocator_with_capacity(mib(256));
        let ids: Vec<_> = (0..5)
            .map(|_| a.allocate(AllocRequest::new(mib(12))).unwrap().id)
            .collect();
        let peak = a.stats().reserved_bytes;
        for id in ids {
            a.deallocate(id).unwrap();
        }
        assert_eq!(a.stats().reserved_bytes, peak);
        assert_eq!(a.stats().active_bytes, 0);
        a.validate().unwrap();
    }

    #[test]
    fn caching_avoids_native_calls_on_reuse() {
        let mut a = allocator_with_capacity(mib(256));
        for _ in 0..10 {
            let x = a.allocate(AllocRequest::new(mib(6))).unwrap();
            a.deallocate(x.id).unwrap();
        }
        // One segment allocation serves all ten rounds.
        assert_eq!(a.driver().stats().mem_alloc.calls, 1);
    }

    #[test]
    fn drop_returns_all_memory() {
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        {
            let mut a = CachingAllocator::new(driver.clone());
            let _x = a.allocate(AllocRequest::new(mib(6))).unwrap();
            let y = a.allocate(AllocRequest::new(mib(3))).unwrap();
            a.deallocate(y.id).unwrap();
            assert!(driver.phys_in_use() > 0);
        }
        assert_eq!(driver.phys_in_use(), 0);
        assert!(driver.snapshot().is_quiescent());
    }

    #[test]
    fn zero_and_unknown_are_errors() {
        let mut a = allocator_with_capacity(mib(64));
        assert_eq!(
            a.allocate(AllocRequest::new(0)).unwrap_err(),
            AllocError::ZeroSize
        );
        assert!(matches!(
            a.deallocate(AllocationId::new(1)).unwrap_err(),
            AllocError::UnknownAllocation(_)
        ));
    }

    #[test]
    fn data_written_through_block_roundtrips() {
        let driver = CudaDriver::new(DeviceConfig::small_test());
        let mut a = CachingAllocator::new(driver.clone());
        let x = a.allocate(AllocRequest::new(4096)).unwrap();
        driver.memcpy_htod(x.va, b"hello caching").unwrap();
        let mut buf = [0u8; 13];
        driver.memcpy_dtoh(x.va, &mut buf).unwrap();
        assert_eq!(&buf, b"hello caching");
        a.deallocate(x.id).unwrap();
    }

    #[test]
    fn segment_views_report_occupancy() {
        let mut a = allocator_with_capacity(mib(256));
        let _x = a.allocate(AllocRequest::new(mib(6))).unwrap();
        let views = a.segment_views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].size, mib(20));
        assert_eq!(views[0].free_bytes, mib(14));
        assert_eq!(views[0].blocks, 2);
    }
}
