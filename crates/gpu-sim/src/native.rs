//! The native allocator: `cudaMalloc`/`cudaFree` pass-through.
//!
//! This is the paper's first baseline (§2.2): every tensor allocation goes
//! straight to the driver and pays a device synchronization, making it ~10×
//! slower end to end than the caching allocator. Its one virtue: reserved
//! memory always equals active memory, so it never fragments the pool (the
//! fragmentation is pushed into the driver and the latency budget instead).

use std::collections::HashMap;

use gmlake_alloc_api::{
    AllocError, AllocRequest, Allocation, AllocationId, AllocatorCore, MemStats, VirtAddr,
};

use crate::driver::CudaDriver;
use crate::error::DriverError;

/// Pipeline-stall penalty per native call, in calibrated nanoseconds.
///
/// `cudaMalloc`/`cudaFree` synchronize the device, draining the asynchronous
/// kernel pipeline; the GPU then sits idle while the host refills it. The
/// isolated call latency (the cost model's `mem_alloc_ns`) does not capture
/// that lost overlap — the paper measures the *end-to-end* effect as a 9.7×
/// throughput drop (§2.2). A ~3 ms stall per call on top of the call latency
/// reproduces a several-fold slowdown on the generated traces (the additive
/// model is conservative; the real penalty compounds with communication
/// overlap, which we do not model).
const SYNC_STALL_NS: f64 = 3_000_000.0;

/// Pass-through allocator over the native `cudaMalloc`/`cudaFree` API.
///
/// # Example
///
/// ```
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig, NativeAllocator};
/// use gmlake_alloc_api::{AllocRequest, AllocatorCore, mib};
///
/// let driver = CudaDriver::new(DeviceConfig::small_test());
/// let mut alloc = NativeAllocator::new(driver);
/// let a = alloc.allocate(AllocRequest::new(mib(4)))?;
/// alloc.deallocate(a.id)?;
/// # Ok::<(), gmlake_alloc_api::AllocError>(())
/// ```
#[derive(Debug)]
pub struct NativeAllocator {
    driver: CudaDriver,
    live: HashMap<AllocationId, (VirtAddr, u64)>,
    next_id: u64,
    stats: MemStats,
    stall_ns: u64,
}

impl NativeAllocator {
    /// Creates a native allocator on `driver`.
    pub fn new(driver: CudaDriver) -> Self {
        let stall_ns = (SYNC_STALL_NS * driver.cost_model().scale) as u64;
        NativeAllocator {
            driver,
            live: HashMap::new(),
            next_id: 0,
            stats: MemStats::default(),
            stall_ns,
        }
    }

    /// The underlying driver handle.
    pub fn driver(&self) -> &CudaDriver {
        &self.driver
    }
}

impl AllocatorCore for NativeAllocator {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        if req.size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let va = self.driver.mem_alloc(req.size).map_err(|e| match e {
            DriverError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => AllocError::OutOfMemory {
                requested,
                reserved: in_use,
                capacity,
            },
            other => AllocError::Driver(other.to_string()),
        })?;
        self.driver.advance_clock(self.stall_ns);
        self.next_id += 1;
        let id = AllocationId::new(self.next_id);
        self.live.insert(id, (va, req.size));
        self.stats.on_alloc(req.size, req.size);
        let reserved = self.stats.active_bytes;
        self.stats.set_reserved(reserved);
        Ok(Allocation {
            id,
            va,
            size: req.size,
            requested: req.size,
        })
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        let (va, size) = self
            .live
            .remove(&id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        self.driver
            .mem_free(va)
            .map_err(|e| AllocError::Driver(e.to_string()))?;
        self.driver.advance_clock(self.stall_ns);
        self.stats.on_free(size);
        let reserved = self.stats.active_bytes;
        self.stats.set_reserved(reserved);
        Ok(())
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "cuda-native"
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

impl Drop for NativeAllocator {
    fn drop(&mut self) {
        // Release everything still live; ignore errors (C-DTOR-FAIL).
        for (_, (va, _)) in self.live.drain() {
            let _ = self.driver.mem_free(va);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use gmlake_alloc_api::mib;

    fn alloc_on_test_device() -> NativeAllocator {
        NativeAllocator::new(CudaDriver::new(DeviceConfig::small_test()))
    }

    #[test]
    fn reserved_equals_active() {
        let mut a = alloc_on_test_device();
        let x = a.allocate(AllocRequest::new(mib(3))).unwrap();
        let y = a.allocate(AllocRequest::new(mib(5))).unwrap();
        let s = a.stats();
        assert_eq!(s.active_bytes, mib(8));
        assert_eq!(s.reserved_bytes, mib(8));
        a.deallocate(x.id).unwrap();
        assert_eq!(a.stats().reserved_bytes, mib(5));
        a.deallocate(y.id).unwrap();
        assert_eq!(a.stats().utilization(), 1.0);
    }

    #[test]
    fn oom_maps_to_alloc_error() {
        let mut a = alloc_on_test_device();
        let err = a.allocate(AllocRequest::new(mib(512))).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        assert_eq!(a.stats().alloc_count, 0);
    }

    #[test]
    fn drop_releases_device_memory() {
        let driver = CudaDriver::new(DeviceConfig::small_test());
        {
            let mut a = NativeAllocator::new(driver.clone());
            a.allocate(AllocRequest::new(mib(10))).unwrap();
            assert_eq!(driver.phys_in_use(), mib(10));
        }
        assert_eq!(driver.phys_in_use(), 0);
        assert!(driver.snapshot().is_quiescent());
    }

    #[test]
    fn every_allocation_pays_a_driver_call() {
        let mut a = alloc_on_test_device();
        for _ in 0..5 {
            let x = a.allocate(AllocRequest::new(mib(1))).unwrap();
            a.deallocate(x.id).unwrap();
        }
        let stats = a.driver().stats();
        assert_eq!(stats.mem_alloc.calls, 5);
        assert_eq!(stats.mem_free.calls, 5);
    }

    #[test]
    fn unknown_id_is_an_error() {
        let mut a = alloc_on_test_device();
        let err = a.deallocate(AllocationId::new(99)).unwrap_err();
        assert!(matches!(err, AllocError::UnknownAllocation(_)));
    }
}
