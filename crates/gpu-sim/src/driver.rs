//! The simulated CUDA driver: native allocation API plus low-level VMM API.
//!
//! A [`CudaDriver`] is a cheaply clonable handle to one device; every
//! allocator participating in an experiment (caching baseline, GMLake,
//! native) holds a clone of the same driver, exactly as the PyTorch process
//! and GMLake share one real GPU.
//!
//! Each successful call advances the device's simulated clock by the cost
//! model's latency for that call and updates per-API telemetry; failing calls
//! leave the device untouched (strong exception safety).

use std::sync::Arc;

use parking_lot::Mutex;

use gmlake_alloc_api::{EventId, EventSource, StreamId, VirtAddr};

use crate::chunk::{PhysHandle, PhysTable};
use crate::clock::SimClock;
use crate::device::{DeviceConfig, DeviceSnapshot, DriverStats};
use crate::error::{DriverError, DriverResult};
use crate::event::EventEngine;
use crate::fault::{FaultOp, FaultPlan, FaultState};
use crate::vaspace::VaSpace;

/// Alignment of native (`cudaMalloc`) allocations.
const NATIVE_ALIGN: u64 = 512;

#[derive(Debug)]
struct Inner {
    config: DeviceConfig,
    clock: SimClock,
    phys: PhysTable,
    va: VaSpace,
    stats: DriverStats,
    /// Per-stream completion frontiers and outstanding events.
    events: EventEngine,
    /// Native allocations: VA -> (handle, size), so `mem_free` can tear the
    /// implicit reservation/mapping down.
    native: std::collections::HashMap<u64, (PhysHandle, u64)>,
    /// Optional telemetry sink: every costed driver call feeds its
    /// simulated latency into the pool's `driver_ns` histogram.
    telemetry: Option<Arc<gmlake_telemetry::PoolTelemetry>>,
    /// Armed fault schedule; `None` when no plan is installed.
    fault: Option<FaultState>,
}

impl Inner {
    /// Advance the clock by one driver call's simulated cost and, when a
    /// telemetry sink is attached and enabled, record that latency.
    fn charge(&mut self, ns: u64) {
        self.clock.advance(ns);
        if let Some(t) = self.telemetry.as_ref() {
            if t.is_enabled() {
                t.driver_ns().record(ns);
                t.note_now(self.clock.now_ns());
            }
        }
    }

    /// Consults the armed fault plan for `op`. On a hit the injected error
    /// is returned *before any device mutation* — the call stays atomic —
    /// and the injection is counted in `stats.injected_faults` plus traced
    /// as a [`FaultInjected`](gmlake_telemetry::EventKind::FaultInjected)
    /// record when a telemetry sink is attached.
    fn inject(&mut self, op: FaultOp) -> DriverResult<()> {
        let Some(f) = self.fault.as_mut() else {
            return Ok(());
        };
        match f.check(op) {
            None => Ok(()),
            Some(e) => {
                self.stats.injected_faults += 1;
                if let Some(t) = self.telemetry.as_ref() {
                    if t.is_enabled() {
                        t.record_at(
                            self.clock.now_ns(),
                            gmlake_telemetry::EventKind::FaultInjected,
                            0,
                            op.index() as u64,
                            self.stats.injected_faults,
                        );
                    }
                }
                Err(e)
            }
        }
    }
}

/// Handle to a simulated GPU device exposing the CUDA driver API surface
/// GMLake uses.
///
/// Cloning is cheap and clones share the device.
///
/// # Example
///
/// ```
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
/// use gmlake_alloc_api::mib;
///
/// let drv = CudaDriver::new(DeviceConfig::small_test());
/// let g = drv.granularity();
/// let va = drv.mem_address_reserve(2 * g)?;
/// let h1 = drv.mem_create(g)?;
/// let h2 = drv.mem_create(g)?;
/// drv.mem_map(va, g, 0, h1)?;
/// drv.mem_map(va.offset(g), g, 0, h2)?;
/// drv.mem_set_access(va, 2 * g, true)?;
/// drv.memcpy_htod(va.offset(g - 4), &[1, 2, 3, 4, 5, 6, 7, 8])?; // spans both chunks
/// # Ok::<(), gmlake_gpu_sim::DriverError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CudaDriver {
    inner: Arc<Mutex<Inner>>,
}

impl CudaDriver {
    /// Creates a new device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        CudaDriver {
            inner: Arc::new(Mutex::new(Inner {
                config,
                clock: SimClock::new(),
                phys: PhysTable::new(),
                va: VaSpace::new(),
                stats: DriverStats::default(),
                events: EventEngine::default(),
                native: std::collections::HashMap::new(),
                telemetry: None,
                fault: None,
            })),
        }
    }

    /// VMM allocation granularity in bytes (2 MiB by default, as returned by
    /// `cuMemGetAllocationGranularity` on NVIDIA hardware).
    pub fn granularity(&self) -> u64 {
        self.inner.lock().config.granularity
    }

    /// Physical capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.lock().config.capacity
    }

    /// Physical bytes currently allocated on the device.
    pub fn phys_in_use(&self) -> u64 {
        self.inner.lock().phys.in_use
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.inner.lock().clock.now_ns()
    }

    /// Advances the simulated clock (used by the workload replayer to model
    /// compute phases, and by allocators for host-side bookkeeping).
    pub fn advance_clock(&self, delta_ns: u64) {
        self.inner.lock().clock.advance(delta_ns);
    }

    /// Host-side bookkeeping cost per pool-allocator operation (ns).
    pub fn host_op_ns(&self) -> u64 {
        self.inner.lock().config.cost.host_op_ns()
    }

    /// Per-API telemetry snapshot.
    pub fn stats(&self) -> DriverStats {
        self.inner.lock().stats
    }

    /// Attach a telemetry sink. From then on every costed driver call
    /// records its simulated latency into `telemetry.driver_ns()` (while
    /// the sink is enabled). Clones of this driver share the sink.
    pub fn set_telemetry(&self, telemetry: Arc<gmlake_telemetry::PoolTelemetry>) {
        self.inner.lock().telemetry = Some(telemetry);
    }

    /// Installs a fault-injection schedule, replacing any previous one.
    /// Per-op call counters restart at zero, so deterministic rules are
    /// counted from this moment. An empty plan is equivalent to
    /// [`CudaDriver::clear_fault_plan`]. Clones of this driver share the
    /// plan (it is device state, like the clock).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut g = self.inner.lock();
        g.fault = if plan.is_empty() {
            None
        } else {
            Some(FaultState::new(plan))
        };
    }

    /// Removes the installed fault plan; subsequent calls never inject.
    pub fn clear_fault_plan(&self) {
        self.inner.lock().fault = None;
    }

    /// Occupancy snapshot.
    pub fn snapshot(&self) -> DeviceSnapshot {
        let g = self.inner.lock();
        DeviceSnapshot {
            phys_in_use: g.phys.in_use,
            peak_phys_in_use: g.phys.peak_in_use,
            phys_created_total: g.phys.created_total,
            va_reserved: g.va.reserved_total,
            handles: g.phys.handle_count() as u64,
            reservations: g.va.reservation_count() as u64,
            mappings: g.va.mapping_count() as u64,
            clock_ns: g.clock.now_ns(),
        }
    }

    /// A copy of the device's cost model (for benches that compute analytic
    /// curves).
    pub fn cost_model(&self) -> crate::cost::CostModel {
        self.inner.lock().config.cost.clone()
    }

    // ------------------------------------------------------------------
    // Native path (`cudaMalloc` / `cudaFree`)
    // ------------------------------------------------------------------

    /// `cudaMalloc`: allocates `size` bytes of device memory with an implicit
    /// device synchronization — the call waits for every stream's in-flight
    /// work (launched via [`CudaDriver::stream_launch`]) before it runs,
    /// which is precisely why the native path cannot overlap allocation
    /// with compute. Returns the device pointer.
    ///
    /// # Errors
    ///
    /// [`DriverError::OutOfMemory`] when capacity is exhausted,
    /// [`DriverError::ZeroSize`] for empty requests.
    pub fn mem_alloc(&self, size: u64) -> DriverResult<VirtAddr> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::MemAlloc)?;
        if size == 0 {
            return Err(DriverError::ZeroSize);
        }
        let backing = g.config.backing;
        let capacity = g.config.capacity;
        let h = g.phys.create(size, capacity, backing)?;
        let va = match g.va.reserve(size, NATIVE_ALIGN) {
            Ok(va) => va,
            Err(e) => {
                let _ = g.phys.release(h);
                return Err(e);
            }
        };
        g.va.map(va, size, h, 0)
            .expect("fresh reservation is empty");
        g.phys.add_map(h).expect("fresh handle is mappable");
        g.va.set_access(va, size, true).expect("entry just created");
        g.native.insert(va.as_u64(), (h, size));
        // Implicit device sync: wait out every stream's in-flight work.
        let now = g.clock.now_ns();
        let ns = (g.events.max_frontier(now) - now) + g.config.cost.mem_alloc_ns(size);
        g.charge(ns);
        g.stats.mem_alloc.record(ns);
        Ok(va)
    }

    /// `cudaFree`: releases a pointer obtained from [`CudaDriver::mem_alloc`],
    /// with the same implicit device synchronization as the allocation path.
    pub fn mem_free(&self, va: VirtAddr) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::MemFree)?;
        let (h, size) = g
            .native
            .get(&va.as_u64())
            .copied()
            .ok_or(DriverError::InvalidAddress(va))?;
        g.va.unmap(va, size)?;
        g.phys.remove_map(h)?;
        g.phys.release(h)?;
        g.va.address_free(va, size)?;
        g.native.remove(&va.as_u64());
        let now = g.clock.now_ns();
        let ns = (g.events.max_frontier(now) - now) + g.config.cost.mem_free_ns(size);
        g.charge(ns);
        g.stats.mem_free.record(ns);
        Ok(())
    }

    // ------------------------------------------------------------------
    // VMM path
    // ------------------------------------------------------------------

    fn check_aligned(value: u64, granularity: u64) -> DriverResult<()> {
        if !value.is_multiple_of(granularity) {
            Err(DriverError::Misaligned { value, granularity })
        } else {
            Ok(())
        }
    }

    /// `cuMemAddressReserve`: reserves `size` bytes of contiguous virtual
    /// address space (must be a multiple of the granularity).
    pub fn mem_address_reserve(&self, size: u64) -> DriverResult<VirtAddr> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::AddressReserve)?;
        Self::check_aligned(size, g.config.granularity)?;
        let granularity = g.config.granularity;
        let va = g.va.reserve(size, granularity)?;
        let ns = g.config.cost.address_reserve_ns(size);
        g.charge(ns);
        g.stats.address_reserve.record(ns);
        Ok(va)
    }

    /// `cuMemAddressFree`: releases a reservation (which must hold no
    /// mappings).
    pub fn mem_address_free(&self, va: VirtAddr, size: u64) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::AddressFree)?;
        g.va.address_free(va, size)?;
        let ns = g.config.cost.address_free_ns();
        g.charge(ns);
        g.stats.address_free.record(ns);
        Ok(())
    }

    /// `cuMemCreate`: allocates `size` bytes of physical device memory
    /// (multiple of the granularity) and returns its handle.
    pub fn mem_create(&self, size: u64) -> DriverResult<PhysHandle> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::Create)?;
        Self::check_aligned(size, g.config.granularity)?;
        let backing = g.config.backing;
        let capacity = g.config.capacity;
        let h = g.phys.create(size, capacity, backing)?;
        let ns = g.config.cost.create_ns(size);
        g.charge(ns);
        g.stats.create.record(ns);
        Ok(h)
    }

    /// Batched `cuMemCreate`: allocates `count` physical chunks of
    /// `chunk_size` bytes each under a single driver entry (one lock
    /// acquisition, one dispatch). The batch is all-or-nothing: capacity is
    /// checked for the whole batch up front, so a failure leaves the device
    /// untouched. Cost is the per-call create cost once plus the
    /// dispatch-free marginal cost per additional chunk (see
    /// [`CostModel::create_batch_ns`](crate::CostModel::create_batch_ns)).
    pub fn mem_create_batch(&self, chunk_size: u64, count: usize) -> DriverResult<Vec<PhysHandle>> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::Create)?;
        if chunk_size == 0 || count == 0 {
            return Err(DriverError::ZeroSize);
        }
        Self::check_aligned(chunk_size, g.config.granularity)?;
        let total = chunk_size
            .checked_mul(count as u64)
            .ok_or(DriverError::OutOfMemory {
                requested: u64::MAX,
                in_use: g.phys.in_use,
                capacity: g.config.capacity,
            })?;
        if total > g.config.capacity.saturating_sub(g.phys.in_use) {
            return Err(DriverError::OutOfMemory {
                requested: total,
                in_use: g.phys.in_use,
                capacity: g.config.capacity,
            });
        }
        let backing = g.config.backing;
        let capacity = g.config.capacity;
        let handles: Vec<PhysHandle> = (0..count)
            .map(|_| {
                g.phys
                    .create(chunk_size, capacity, backing)
                    .expect("batch capacity checked up front")
            })
            .collect();
        let ns = g.config.cost.create_batch_ns(chunk_size, count as u64);
        g.charge(ns);
        g.stats.create.record(ns);
        Ok(handles)
    }

    /// `cuMemRelease`: drops the creation reference of `h`. Physical memory
    /// is freed once no mapping references it.
    pub fn mem_release(&self, h: PhysHandle) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::Release)?;
        g.phys.release(h)?;
        let ns = g.config.cost.release_ns();
        g.charge(ns);
        g.stats.release.record(ns);
        Ok(())
    }

    /// `cuMemMap`: maps `size` bytes of `h`, starting at byte `offset` within
    /// the handle, at virtual address `va`. All of `va`, `size`, and `offset`
    /// must be granularity-aligned; the target range must lie inside one
    /// reservation and be unmapped. Access starts disabled.
    pub fn mem_map(&self, va: VirtAddr, size: u64, offset: u64, h: PhysHandle) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::Map)?;
        let gran = g.config.granularity;
        Self::check_aligned(va.as_u64(), gran)?;
        Self::check_aligned(size, gran)?;
        Self::check_aligned(offset, gran)?;
        let hsize = g.phys.size_of(h)?;
        if offset + size > hsize {
            return Err(DriverError::HandleRangeOutOfBounds {
                handle: h.as_u64(),
                offset,
                len: size,
                size: hsize,
            });
        }
        // Validate map-count bump is possible before mutating the VA space.
        g.phys.add_map(h)?;
        if let Err(e) = g.va.map(va, size, h, offset) {
            g.phys.remove_map(h).expect("just added");
            return Err(e);
        }
        let ns = g.config.cost.map_ns(size);
        g.charge(ns);
        g.stats.map.record(ns);
        Ok(())
    }

    /// Batched `cuMemMap`: maps `handles[i]` (offset 0) at
    /// `va + i * chunk_size` for every `i`, under a single driver entry.
    /// Each handle must hold at least `chunk_size` bytes; the target ranges
    /// must lie inside one reservation and be unmapped. On any failure,
    /// mappings made so far are rolled back (strong exception safety).
    /// Advances the clock by the per-call map cost once plus the
    /// dispatch-free marginal cost per additional chunk — identical to the
    /// equivalent [`CudaDriver::mem_map`] sequence minus the amortized
    /// dispatch overhead — and records **one** `map` call in the telemetry.
    pub fn mem_map_range(
        &self,
        va: VirtAddr,
        chunk_size: u64,
        handles: &[PhysHandle],
    ) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::Map)?;
        if handles.is_empty() || chunk_size == 0 {
            return Err(DriverError::ZeroSize);
        }
        let gran = g.config.granularity;
        Self::check_aligned(va.as_u64(), gran)?;
        Self::check_aligned(chunk_size, gran)?;
        // Validate handle bounds before any mutation.
        for &h in handles {
            let hsize = g.phys.size_of(h)?;
            if chunk_size > hsize {
                return Err(DriverError::HandleRangeOutOfBounds {
                    handle: h.as_u64(),
                    offset: 0,
                    len: chunk_size,
                    size: hsize,
                });
            }
        }
        for (i, &h) in handles.iter().enumerate() {
            let at = va.offset(i as u64 * chunk_size);
            let result = g.phys.add_map(h).and_then(|()| {
                g.va.map(at, chunk_size, h, 0).inspect_err(|_| {
                    g.phys.remove_map(h).expect("just added");
                })
            });
            if let Err(e) = result {
                // Roll the partial batch back.
                for j in 0..i {
                    let undone =
                        g.va.unmap(va.offset(j as u64 * chunk_size), chunk_size)
                            .expect("mapped above");
                    for u in undone {
                        g.phys.remove_map(u).expect("mapping existed");
                    }
                }
                return Err(e);
            }
        }
        let ns = g.config.cost.map_range_ns(chunk_size, handles.len() as u64);
        g.charge(ns);
        g.stats.map.record(ns);
        Ok(())
    }

    /// `cuMemUnmap`: unmaps `[va, va + size)`, which must exactly cover whole
    /// mappings.
    pub fn mem_unmap(&self, va: VirtAddr, size: u64) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::Unmap)?;
        let handles = g.va.unmap(va, size)?;
        let n = handles.len() as u64;
        for h in handles {
            g.phys.remove_map(h).expect("mapping existed");
        }
        let ns = g.config.cost.unmap_ns() * n.max(1);
        g.charge(ns);
        g.stats.unmap.record(ns);
        Ok(())
    }

    /// Batched `cuMemUnmap`: unmaps `[va, va + size)` — which must exactly
    /// cover whole mappings — under a single driver entry. State-wise
    /// identical to [`CudaDriver::mem_unmap`]; the clock advances by the
    /// per-call unmap cost once plus the dispatch-free marginal cost per
    /// additional mapping, and **one** `unmap` call is recorded. This is the
    /// teardown mirror of [`CudaDriver::mem_map_range`]: an OOM-rescue storm
    /// destroying hundreds of cached blocks stops paying one dispatch per
    /// chunk.
    pub fn mem_unmap_range(&self, va: VirtAddr, size: u64) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::Unmap)?;
        let handles = g.va.unmap(va, size)?;
        let n = handles.len() as u64;
        for h in handles {
            g.phys.remove_map(h).expect("mapping existed");
        }
        let ns = g.config.cost.unmap_range_ns(n.max(1));
        g.charge(ns);
        g.stats.unmap.record(ns);
        Ok(())
    }

    /// Batched `cuMemRelease`: drops the creation reference of every handle
    /// in `handles` under a single driver entry. The batch is
    /// all-or-nothing: every handle is validated (live, unreleased, no
    /// duplicates) before anything is mutated, so a failure leaves the
    /// device untouched. Costed as one per-call release plus the
    /// dispatch-free marginal per additional handle; records **one**
    /// `release` call.
    pub fn mem_release_batch(&self, handles: &[PhysHandle]) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::Release)?;
        if handles.is_empty() {
            return Err(DriverError::ZeroSize);
        }
        let mut seen = std::collections::HashSet::with_capacity(handles.len());
        for &h in handles {
            g.phys.check_releasable(h)?;
            if !seen.insert(h.as_u64()) {
                return Err(DriverError::InvalidHandle(h.as_u64()));
            }
        }
        for &h in handles {
            g.phys.release(h).expect("batch validated up front");
        }
        let ns = g.config.cost.release_batch_ns(handles.len() as u64);
        g.charge(ns);
        g.stats.release.record(ns);
        Ok(())
    }

    /// `cuMemSetAccess`: enables (or disables) access on `[va, va + size)`,
    /// which must be fully mapped. Cost is charged per mapped chunk, matching
    /// the paper's Table 1 accounting.
    pub fn mem_set_access(&self, va: VirtAddr, size: u64, enable: bool) -> DriverResult<()> {
        let mut g = self.inner.lock();
        g.inject(FaultOp::SetAccess)?;
        let lens = g.va.set_access(va, size, enable)?;
        let mut ns = 0;
        for len in &lens {
            ns += g.config.cost.set_access_ns(*len);
        }
        g.charge(ns);
        g.stats.set_access.record(ns);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Streams and events
    // ------------------------------------------------------------------

    /// Enqueues `duration_ns` of asynchronous work (a kernel, a collective,
    /// a copy) on `stream`: the stream's completion frontier advances by
    /// the duration while the host clock only pays the launch dispatch —
    /// exactly how a CUDA launch returns immediately. Events recorded on
    /// the stream afterwards complete once the host clock catches up to
    /// the frontier (driver-call costs, [`CudaDriver::advance_clock`], or a
    /// synchronize).
    pub fn stream_launch(&self, stream: StreamId, duration_ns: u64) {
        let mut g = self.inner.lock();
        let now = g.clock.now_ns();
        g.events.launch(stream, now, duration_ns);
        let ns = g.config.cost.dispatch_ns();
        g.charge(ns);
        g.stats.launch.record(ns);
    }

    /// The stream's completion frontier: the simulated time at which every
    /// operation enqueued on it so far has finished (never before "now").
    pub fn stream_frontier_ns(&self, stream: StreamId) -> u64 {
        let g = self.inner.lock();
        g.events.frontier(stream, g.clock.now_ns())
    }

    /// `cuCtxSynchronize`: blocks the host until every stream's in-flight
    /// work has finished, advancing the clock to the latest frontier.
    /// Returns the nanoseconds waited. Recorded under the `event_sync`
    /// telemetry (wait included).
    pub fn device_synchronize(&self) -> u64 {
        let mut g = self.inner.lock();
        let now = g.clock.now_ns();
        let wait = g.events.max_frontier(now) - now;
        let ns = wait + g.config.cost.event_sync_ns();
        g.charge(ns);
        g.stats.event_sync.record(ns);
        wait
    }

    /// `cuEventRecord`: drops a completion marker into `stream`'s queue and
    /// returns its id. The event completes once all work enqueued on the
    /// stream before this call has finished.
    ///
    /// # Fault injection
    ///
    /// The API is infallible, so an injected [`FaultOp::EventRecord`]
    /// cannot surface as an error. Instead the call degrades to the safe
    /// synchronous fallback a runtime uses when event machinery fails: it
    /// waits out the stream's in-flight work (advancing the clock to the
    /// stream frontier) and returns a marker that is already complete at
    /// record time. Anything guarded by the returned event has genuinely
    /// finished — degraded, never unsafe.
    pub fn event_record(&self, stream: StreamId) -> EventId {
        let mut g = self.inner.lock();
        let now = g.clock.now_ns();
        if g.inject(FaultOp::EventRecord).is_err() {
            let wait = g.events.frontier(stream, now) - now;
            let ns = wait + g.config.cost.event_record_ns();
            g.charge(ns);
            g.stats.event_record.record(ns);
            let caught_up = g.clock.now_ns();
            return g.events.record(stream, caught_up).0;
        }
        let (event, _ready_at) = g.events.record(stream, now);
        let ns = g.config.cost.event_record_ns();
        g.charge(ns);
        g.stats.event_record.record(ns);
        event
    }

    /// [`CudaDriver::event_record`] variant that answers "was there
    /// anything to wait for?" in the same driver entry: returns `None` —
    /// without tracking an event — when `stream` has no work in flight
    /// (the marker would complete at record time), and records a pending
    /// event otherwise. Costed and counted exactly like `event_record`;
    /// this is the one-round-trip path the allocator's cross-stream free
    /// uses to re-pool a caught-up block immediately.
    pub fn event_record_if_pending(&self, stream: StreamId) -> Option<EventId> {
        let mut g = self.inner.lock();
        let now = g.clock.now_ns();
        if g.inject(FaultOp::EventRecord).is_err() {
            // Same degraded fallback as `event_record`: synchronize the
            // stream, then truthfully report "nothing left to wait for".
            let wait = g.events.frontier(stream, now) - now;
            let ns = wait + g.config.cost.event_record_ns();
            g.charge(ns);
            g.stats.event_record.record(ns);
            return None;
        }
        let result = if g.events.frontier(stream, now) > now {
            Some(g.events.record(stream, now).0)
        } else {
            None
        };
        let ns = g.config.cost.event_record_ns();
        g.charge(ns);
        g.stats.event_record.record(ns);
        result
    }

    /// `cuEventQuery`: polls `event` without blocking; `true` once it has
    /// completed. Events the driver no longer tracks (already observed
    /// complete, or complete at record time) report `true`.
    pub fn event_query(&self, event: EventId) -> bool {
        let mut g = self.inner.lock();
        let ns = g.config.cost.event_query_ns();
        g.charge(ns);
        g.stats.event_query.record(ns);
        match g.events.completion_of(event) {
            Some(at) if at > g.clock.now_ns() => false,
            Some(_) => {
                g.events.prune(event);
                true
            }
            None => true,
        }
    }

    /// `cuEventSynchronize`: blocks the host (advances the clock) until
    /// `event` has completed. The `event_sync` telemetry records the wait
    /// plus the fixed call cost.
    pub fn event_synchronize(&self, event: EventId) {
        let mut g = self.inner.lock();
        let mut ns = g.config.cost.event_sync_ns();
        if let Some(at) = g.events.completion_of(event) {
            ns += at.saturating_sub(g.clock.now_ns());
            g.events.prune(event);
        }
        g.charge(ns);
        g.stats.event_sync.record(ns);
    }

    /// Outstanding (recorded, not yet observed complete) events — leak
    /// telemetry for tests.
    pub fn outstanding_events(&self) -> usize {
        self.inner.lock().events.outstanding()
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    /// Copies `data` from host to device at `va`. Requires the device to be
    /// configured with byte backing and the range to be mapped + accessible.
    pub fn memcpy_htod(&self, va: VirtAddr, data: &[u8]) -> DriverResult<()> {
        let mut g = self.inner.lock();
        if !g.config.backing {
            return Err(DriverError::BackingDisabled);
        }
        let extents = g.va.resolve(va, data.len() as u64)?;
        let mut cursor = 0usize;
        for e in extents {
            let end = cursor + e.len as usize;
            g.phys.write(e.handle, e.handle_off, &data[cursor..end])?;
            cursor = end;
        }
        let ns = g.config.cost.memcpy_ns(data.len() as u64);
        g.charge(ns);
        g.stats.memcpy.record(ns);
        Ok(())
    }

    /// Copies from device at `va` into `buf`.
    pub fn memcpy_dtoh(&self, va: VirtAddr, buf: &mut [u8]) -> DriverResult<()> {
        let mut g = self.inner.lock();
        if !g.config.backing {
            return Err(DriverError::BackingDisabled);
        }
        let extents = g.va.resolve(va, buf.len() as u64)?;
        let mut cursor = 0usize;
        for e in extents {
            let end = cursor + e.len as usize;
            g.phys.read(e.handle, e.handle_off, &mut buf[cursor..end])?;
            cursor = end;
        }
        let ns = g.config.cost.memcpy_ns(buf.len() as u64);
        g.charge(ns);
        g.stats.memcpy.record(ns);
        Ok(())
    }

    /// Fills `size` bytes at `va` with `value`.
    pub fn memset_d8(&self, va: VirtAddr, value: u8, size: u64) -> DriverResult<()> {
        let mut g = self.inner.lock();
        if !g.config.backing {
            return Err(DriverError::BackingDisabled);
        }
        let extents = g.va.resolve(va, size)?;
        for e in extents {
            let chunk = vec![value; e.len as usize];
            g.phys.write(e.handle, e.handle_off, &chunk)?;
        }
        let ns = g.config.cost.memcpy_ns(size);
        g.charge(ns);
        g.stats.memcpy.record(ns);
        Ok(())
    }
}

/// The simulated driver *is* a stream-event source: a `DeviceAllocator`
/// front-end built with a clone of the device's driver records and polls
/// its cross-stream-reuse events on the same simulated clock the workload
/// advances, with every call costed as a driver entry.
///
/// The driver lock is a leaf — no driver call ever re-enters an allocator —
/// so this implementation satisfies the [`EventSource`] ordering contract
/// (the allocator may call it while holding its own shard locks).
impl EventSource for CudaDriver {
    fn record(&self, stream: StreamId) -> EventId {
        self.event_record(stream)
    }

    fn try_record(&self, stream: StreamId) -> Option<EventId> {
        self.event_record_if_pending(stream)
    }

    fn query(&self, event: EventId) -> bool {
        self.event_query(event)
    }

    fn synchronize(&self, event: EventId) {
        self.event_synchronize(event)
    }
}

/// The simulated clock is the workspace's telemetry timestamp source:
/// attaching a driver to a [`PoolTelemetry`](gmlake_telemetry::PoolTelemetry)
/// stamps trace records and timeline samples in simulated nanoseconds.
impl gmlake_telemetry::TelemetryClock for CudaDriver {
    fn now_ns(&self) -> u64 {
        CudaDriver::now_ns(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::mib;

    fn test_driver() -> CudaDriver {
        CudaDriver::new(DeviceConfig::small_test())
    }

    #[test]
    fn native_alloc_free_roundtrip() {
        let d = test_driver();
        let va = d.mem_alloc(1000).unwrap();
        assert_eq!(d.phys_in_use(), 1000);
        // Data path works on native allocations.
        d.memcpy_htod(va, &[7; 16]).unwrap();
        let mut buf = [0u8; 16];
        d.memcpy_dtoh(va, &mut buf).unwrap();
        assert_eq!(buf, [7; 16]);
        d.mem_free(va).unwrap();
        assert_eq!(d.phys_in_use(), 0);
        assert!(d.snapshot().is_quiescent());
    }

    #[test]
    fn native_free_of_unknown_pointer_fails() {
        let d = test_driver();
        assert!(matches!(
            d.mem_free(VirtAddr::new(0xdead)).unwrap_err(),
            DriverError::InvalidAddress(_)
        ));
    }

    #[test]
    fn native_oom_leaves_device_unchanged() {
        let d = test_driver();
        let before = d.snapshot();
        let err = d.mem_alloc(mib(512)).unwrap_err(); // capacity 256 MiB
        assert!(matches!(err, DriverError::OutOfMemory { .. }));
        assert_eq!(d.snapshot(), before);
    }

    #[test]
    fn vmm_stitch_two_chunks_and_read_across_boundary() {
        let d = test_driver();
        let gran = d.granularity();
        let va = d.mem_address_reserve(2 * gran).unwrap();
        let h1 = d.mem_create(gran).unwrap();
        let h2 = d.mem_create(gran).unwrap();
        d.mem_map(va, gran, 0, h1).unwrap();
        d.mem_map(va.offset(gran), gran, 0, h2).unwrap();
        d.mem_set_access(va, 2 * gran, true).unwrap();

        let data: Vec<u8> = (0..16).collect();
        let boundary = va.offset(gran - 8);
        d.memcpy_htod(boundary, &data).unwrap();
        let mut buf = vec![0u8; 16];
        d.memcpy_dtoh(boundary, &mut buf).unwrap();
        assert_eq!(buf, data);

        d.mem_unmap(va, 2 * gran).unwrap();
        d.mem_release(h1).unwrap();
        d.mem_release(h2).unwrap();
        d.mem_address_free(va, 2 * gran).unwrap();
        assert!(d.snapshot().is_quiescent());
    }

    #[test]
    fn multi_va_aliasing_same_physical_chunk() {
        // The core property GMLake relies on: one PA, two VAs.
        let d = test_driver();
        let gran = d.granularity();
        let h = d.mem_create(gran).unwrap();
        let va1 = d.mem_address_reserve(gran).unwrap();
        let va2 = d.mem_address_reserve(gran).unwrap();
        d.mem_map(va1, gran, 0, h).unwrap();
        d.mem_map(va2, gran, 0, h).unwrap();
        d.mem_set_access(va1, gran, true).unwrap();
        d.mem_set_access(va2, gran, true).unwrap();
        d.memcpy_htod(va1, b"stitched!").unwrap();
        let mut buf = [0u8; 9];
        d.memcpy_dtoh(va2, &mut buf).unwrap();
        assert_eq!(&buf, b"stitched!");
        // Physical memory is charged once, not twice.
        assert_eq!(d.phys_in_use(), gran);
    }

    #[test]
    fn release_defers_until_unmapped() {
        let d = test_driver();
        let gran = d.granularity();
        let h = d.mem_create(gran).unwrap();
        let va = d.mem_address_reserve(gran).unwrap();
        d.mem_map(va, gran, 0, h).unwrap();
        d.mem_release(h).unwrap();
        assert_eq!(d.phys_in_use(), gran, "mapped memory survives release");
        d.mem_unmap(va, gran).unwrap();
        assert_eq!(d.phys_in_use(), 0);
        d.mem_address_free(va, gran).unwrap();
        assert!(d.snapshot().is_quiescent());
    }

    #[test]
    fn misaligned_vmm_calls_are_rejected() {
        let d = test_driver();
        let gran = d.granularity();
        assert!(matches!(
            d.mem_address_reserve(gran + 1).unwrap_err(),
            DriverError::Misaligned { .. }
        ));
        assert!(matches!(
            d.mem_create(gran / 2).unwrap_err(),
            DriverError::Misaligned { .. }
        ));
        let va = d.mem_address_reserve(gran).unwrap();
        let h = d.mem_create(gran).unwrap();
        assert!(matches!(
            d.mem_map(va.offset(1), gran, 0, h).unwrap_err(),
            DriverError::Misaligned { .. }
        ));
    }

    #[test]
    fn map_beyond_handle_bounds_fails() {
        let d = test_driver();
        let gran = d.granularity();
        let va = d.mem_address_reserve(2 * gran).unwrap();
        let h = d.mem_create(gran).unwrap();
        let err = d.mem_map(va, 2 * gran, 0, h).unwrap_err();
        assert!(matches!(err, DriverError::HandleRangeOutOfBounds { .. }));
        // Failure left no mapping behind.
        assert_eq!(d.snapshot().mappings, 0);
    }

    #[test]
    fn access_disabled_until_set_access() {
        let d = test_driver();
        let gran = d.granularity();
        let va = d.mem_address_reserve(gran).unwrap();
        let h = d.mem_create(gran).unwrap();
        d.mem_map(va, gran, 0, h).unwrap();
        assert!(matches!(
            d.memcpy_htod(va, &[1]).unwrap_err(),
            DriverError::AccessDenied(_)
        ));
    }

    #[test]
    fn clock_and_stats_accumulate_with_calibrated_model() {
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let d = CudaDriver::new(cfg);
        let gran = d.granularity();
        assert_eq!(d.now_ns(), 0);
        let va = d.mem_address_reserve(gran).unwrap();
        let h = d.mem_create(gran).unwrap();
        d.mem_map(va, gran, 0, h).unwrap();
        d.mem_set_access(va, gran, true).unwrap();
        let stats = d.stats();
        assert_eq!(stats.address_reserve.calls, 1);
        assert_eq!(stats.create.calls, 1);
        assert_eq!(stats.map.calls, 1);
        assert_eq!(stats.set_access.calls, 1);
        assert_eq!(d.now_ns(), stats.vmm_time_ns());
        assert!(d.now_ns() > 0);
    }

    #[test]
    fn shared_clones_see_the_same_device() {
        let d = test_driver();
        let d2 = d.clone();
        let _va = d.mem_alloc(mib(1)).unwrap();
        assert_eq!(d2.phys_in_use(), mib(1));
    }

    #[test]
    fn driver_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CudaDriver>();
    }

    #[test]
    fn map_range_advances_clock_like_per_chunk_maps_minus_dispatch() {
        // The batched map must cost exactly the per-chunk sequence minus the
        // amortized dispatch overhead — the cost-model contract.
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let gran = cfg.granularity;
        let n = 8u64;

        let single = CudaDriver::new(cfg.clone());
        let va = single.mem_address_reserve(n * gran).unwrap();
        let handles: Vec<PhysHandle> = (0..n).map(|_| single.mem_create(gran).unwrap()).collect();
        let t0 = single.now_ns();
        for (i, &h) in handles.iter().enumerate() {
            single
                .mem_map(va.offset(i as u64 * gran), gran, 0, h)
                .unwrap();
        }
        let per_chunk_ns = single.now_ns() - t0;

        let batched = CudaDriver::new(cfg);
        let va2 = batched.mem_address_reserve(n * gran).unwrap();
        let handles2 = batched.mem_create_batch(gran, n as usize).unwrap();
        let t1 = batched.now_ns();
        batched.mem_map_range(va2, gran, &handles2).unwrap();
        let range_ns = batched.now_ns() - t1;

        let dispatch = batched.cost_model().dispatch_ns();
        assert_eq!(range_ns, per_chunk_ns - (n - 1) * dispatch);
        // Telemetry counts one call for the whole range, n for the sequence.
        assert_eq!(batched.stats().map.calls, 1);
        assert_eq!(single.stats().map.calls, n);
        // The mapped state is identical either way.
        assert_eq!(batched.snapshot().mappings, single.snapshot().mappings);
    }

    #[test]
    fn create_batch_is_all_or_nothing_on_oom() {
        let d = test_driver(); // 256 MiB capacity
        let gran = d.granularity();
        let before = d.snapshot();
        // 200 chunks of 2 MiB = 400 MiB > 256 MiB: nothing must be created.
        let err = d.mem_create_batch(gran, 200).unwrap_err();
        assert!(
            matches!(err, DriverError::OutOfMemory { requested, .. } if requested == 200 * gran)
        );
        assert_eq!(d.snapshot(), before);
        // A fitting batch creates every chunk and counts one driver call.
        let handles = d.mem_create_batch(gran, 4).unwrap();
        assert_eq!(handles.len(), 4);
        assert_eq!(d.phys_in_use(), 4 * gran);
        assert_eq!(d.stats().create.calls, 1);
        for h in handles {
            d.mem_release(h).unwrap();
        }
    }

    #[test]
    fn map_range_rejects_empty_and_rolls_back_on_overlap() {
        let d = test_driver();
        let gran = d.granularity();
        assert!(matches!(
            d.mem_map_range(VirtAddr::new(0), gran, &[]).unwrap_err(),
            DriverError::ZeroSize
        ));
        // A pre-existing mapping in the middle of the target range forces a
        // mid-batch failure; the first chunk's mapping must be rolled back.
        let va = d.mem_address_reserve(3 * gran).unwrap();
        let blocker = d.mem_create(gran).unwrap();
        d.mem_map(va.offset(gran), gran, 0, blocker).unwrap();
        let batch = d.mem_create_batch(gran, 2).unwrap();
        let err = d.mem_map_range(va, gran, &batch).unwrap_err();
        assert!(matches!(err, DriverError::AlreadyMapped(_)));
        assert_eq!(d.snapshot().mappings, 1, "only the blocker survives");
        // The rolled-back handles are still mappable elsewhere.
        let va2 = d.mem_address_reserve(2 * gran).unwrap();
        d.mem_map_range(va2, gran, &batch).unwrap();
        assert_eq!(d.snapshot().mappings, 3);
    }

    #[test]
    fn unmap_range_advances_clock_like_per_chunk_unmaps_minus_dispatch() {
        // Two identical 8-chunk stitched ranges; one torn down with n
        // single-chunk unmaps, one with a single mem_unmap_range. The
        // batched call must cost exactly the per-chunk sequence minus the
        // amortized dispatch overhead.
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let gran = cfg.granularity;
        let n = 8u64;

        let build = |d: &CudaDriver| {
            let va = d.mem_address_reserve(n * gran).unwrap();
            let handles = d.mem_create_batch(gran, n as usize).unwrap();
            d.mem_map_range(va, gran, &handles).unwrap();
            va
        };

        let single = CudaDriver::new(cfg.clone());
        let va = build(&single);
        let t0 = single.now_ns();
        for i in 0..n {
            single.mem_unmap(va.offset(i * gran), gran).unwrap();
        }
        let per_chunk_ns = single.now_ns() - t0;

        let batched = CudaDriver::new(cfg);
        let va2 = build(&batched);
        let t1 = batched.now_ns();
        batched.mem_unmap_range(va2, n * gran).unwrap();
        let range_ns = batched.now_ns() - t1;

        let dispatch = batched.cost_model().dispatch_ns();
        assert_eq!(range_ns, per_chunk_ns - (n - 1) * dispatch);
        assert_eq!(batched.stats().unmap.calls, 1);
        assert_eq!(single.stats().unmap.calls, n);
        assert_eq!(batched.snapshot().mappings, 0);
    }

    #[test]
    fn release_batch_is_all_or_nothing_and_amortizes_dispatch() {
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let gran = cfg.granularity;
        let d = CudaDriver::new(cfg);
        let handles = d.mem_create_batch(gran, 4).unwrap();
        // A stale handle anywhere in the batch must poison the whole call.
        let stale = d.mem_create(gran).unwrap();
        d.mem_release(stale).unwrap();
        let err = d
            .mem_release_batch(&[handles[0], stale, handles[1]])
            .unwrap_err();
        assert!(matches!(err, DriverError::InvalidHandle(_)));
        assert_eq!(d.phys_in_use(), 4 * gran, "nothing was released");
        // Duplicates are rejected before any mutation.
        let err = d.mem_release_batch(&[handles[2], handles[2]]).unwrap_err();
        assert!(matches!(err, DriverError::InvalidHandle(_)));
        assert_eq!(d.phys_in_use(), 4 * gran);
        assert!(matches!(
            d.mem_release_batch(&[]).unwrap_err(),
            DriverError::ZeroSize
        ));
        // A clean batch releases everything in one telemetry call, costed
        // as n releases minus (n-1) dispatches.
        let releases_before = d.stats().release.calls;
        let t0 = d.now_ns();
        d.mem_release_batch(&handles).unwrap();
        let m = d.cost_model();
        assert_eq!(d.now_ns() - t0, 4 * m.release_ns() - 3 * m.dispatch_ns());
        assert_eq!(d.stats().release.calls, releases_before + 1);
        assert_eq!(d.phys_in_use(), 0);
    }

    #[test]
    fn release_batch_defers_freeing_mapped_handles() {
        let d = test_driver();
        let gran = d.granularity();
        let handles = d.mem_create_batch(gran, 2).unwrap();
        let va = d.mem_address_reserve(2 * gran).unwrap();
        d.mem_map_range(va, gran, &handles).unwrap();
        d.mem_release_batch(&handles).unwrap();
        assert_eq!(d.phys_in_use(), 2 * gran, "mapped memory survives release");
        d.mem_unmap_range(va, 2 * gran).unwrap();
        assert_eq!(d.phys_in_use(), 0, "last unmap frees the released batch");
        d.mem_address_free(va, 2 * gran).unwrap();
        assert!(d.snapshot().is_quiescent());
    }

    #[test]
    fn memset_fills_across_chunk_boundary() {
        let d = test_driver();
        let gran = d.granularity();
        let va = d.mem_address_reserve(2 * gran).unwrap();
        let h1 = d.mem_create(gran).unwrap();
        let h2 = d.mem_create(gran).unwrap();
        d.mem_map(va, gran, 0, h1).unwrap();
        d.mem_map(va.offset(gran), gran, 0, h2).unwrap();
        d.mem_set_access(va, 2 * gran, true).unwrap();
        d.memset_d8(va.offset(gran - 2), 0x5A, 4).unwrap();
        let mut buf = [0u8; 6];
        d.memcpy_dtoh(va.offset(gran - 3), &mut buf).unwrap();
        assert_eq!(buf, [0, 0x5A, 0x5A, 0x5A, 0x5A, 0]);
    }

    #[test]
    fn data_path_requires_backing_at_driver_level() {
        let d = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let va = d.mem_alloc(4096).unwrap();
        assert_eq!(
            d.memcpy_htod(va, &[1]).unwrap_err(),
            DriverError::BackingDisabled
        );
        assert_eq!(
            d.memset_d8(va, 0, 16).unwrap_err(),
            DriverError::BackingDisabled
        );
    }

    #[test]
    fn snapshot_counts_handles_reservations_mappings() {
        let d = test_driver();
        let gran = d.granularity();
        let va = d.mem_address_reserve(2 * gran).unwrap();
        let h = d.mem_create(2 * gran).unwrap();
        d.mem_map(va, 2 * gran, 0, h).unwrap();
        let snap = d.snapshot();
        assert_eq!(snap.handles, 1);
        assert_eq!(snap.reservations, 1);
        assert_eq!(snap.mappings, 1);
        assert_eq!(snap.va_reserved, 2 * gran);
        assert_eq!(snap.phys_created_total, 2 * gran);
        assert_eq!(snap.peak_phys_in_use, 2 * gran);
    }

    #[test]
    fn events_complete_when_the_host_catches_up_to_the_frontier() {
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let d = CudaDriver::new(cfg);
        let s = StreamId(1);
        // 1 ms of async work: the launch returns immediately (host pays
        // only the dispatch), the frontier moves a full millisecond.
        let t0 = d.now_ns();
        d.stream_launch(s, 1_000_000);
        assert!(d.now_ns() - t0 < 10_000, "launch is asynchronous");
        assert_eq!(d.stream_frontier_ns(s), t0 + 1_000_000);

        let ev = d.event_record(s);
        assert!(!d.event_query(ev), "work still in flight");
        assert_eq!(d.outstanding_events(), 1);
        // Host catches up past the frontier: the event completes and is
        // garbage-collected; re-querying the pruned id stays true.
        d.advance_clock(2_000_000);
        assert!(d.event_query(ev));
        assert_eq!(d.outstanding_events(), 0);
        assert!(d.event_query(ev), "untracked events report complete");
        let st = d.stats();
        assert_eq!(st.event_record.calls, 1);
        assert_eq!(st.event_query.calls, 3);
        assert_eq!(st.launch.calls, 1);
        assert!(st.event_time_ns() > 0);
    }

    #[test]
    fn event_on_an_idle_stream_is_complete_at_record_time() {
        let d = test_driver(); // zero-cost model
        let ev = d.event_record(StreamId(3));
        assert_eq!(d.outstanding_events(), 0, "never tracked");
        assert!(d.event_query(ev));
    }

    #[test]
    fn record_if_pending_skips_caught_up_streams_but_tracks_busy_ones() {
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let d = CudaDriver::new(cfg);
        assert!(
            d.event_record_if_pending(StreamId(0)).is_none(),
            "idle stream: nothing to wait for"
        );
        assert_eq!(d.stats().event_record.calls, 1, "the call is still costed");
        assert_eq!(d.outstanding_events(), 0);
        d.stream_launch(StreamId(0), 1_000_000);
        let ev = d
            .event_record_if_pending(StreamId(0))
            .expect("work in flight: a pending event");
        assert!(!d.event_query(ev));
        d.device_synchronize();
        assert!(d.event_query(ev));
    }

    #[test]
    fn event_synchronize_advances_the_clock_to_completion() {
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let d = CudaDriver::new(cfg);
        d.stream_launch(StreamId(0), 500_000);
        let ev = d.event_record(StreamId(0));
        let ready_at = d.stream_frontier_ns(StreamId(0));
        d.event_synchronize(ev);
        assert!(d.now_ns() >= ready_at, "the host blocked until completion");
        assert!(d.event_query(ev), "synchronized event is complete");
        assert_eq!(d.stats().event_sync.calls, 1);
    }

    #[test]
    fn device_synchronize_drains_every_stream() {
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let d = CudaDriver::new(cfg);
        d.stream_launch(StreamId(0), 100_000);
        d.stream_launch(StreamId(1), 900_000);
        let e0 = d.event_record(StreamId(0));
        let e1 = d.event_record(StreamId(1));
        let waited = d.device_synchronize();
        assert!(waited > 0);
        assert!(d.now_ns() >= d.stream_frontier_ns(StreamId(1)));
        assert!(d.event_query(e0) && d.event_query(e1));
        assert_eq!(d.device_synchronize(), 0, "already caught up");
    }

    #[test]
    fn serial_stream_order_is_preserved_across_events() {
        // Two launches, an event between them: the event completes with the
        // FIRST launch, not the second (FIFO stream semantics).
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let d = CudaDriver::new(cfg);
        let s = StreamId(0);
        d.stream_launch(s, 100_000);
        let mid = d.event_record(s);
        d.stream_launch(s, 900_000);
        let end = d.event_record(s);
        d.advance_clock(200_000);
        assert!(d.event_query(mid), "first launch done");
        assert!(!d.event_query(end), "second still running");
        d.device_synchronize();
        assert!(d.event_query(end));
    }

    #[test]
    fn native_calls_synchronize_in_flight_stream_work() {
        // cudaMalloc/cudaFree imply a device sync: with 1 ms of compute in
        // flight, the call's cost includes waiting it out — the native
        // path cannot overlap allocation with compute (VMM calls can).
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let d = CudaDriver::new(cfg);
        d.stream_launch(StreamId(0), 1_000_000);
        let t0 = d.now_ns();
        let va = d.mem_alloc(4096).unwrap();
        assert!(
            d.now_ns() - t0 >= 1_000_000,
            "mem_alloc waited for the stream"
        );
        assert_eq!(d.device_synchronize(), 0, "nothing left in flight");
        d.stream_launch(StreamId(1), 500_000);
        let t1 = d.now_ns();
        d.mem_free(va).unwrap();
        assert!(d.now_ns() - t1 >= 500_000, "mem_free waited too");
    }

    #[test]
    fn driver_implements_event_source() {
        // The trait surface the DeviceAllocator consumes, driven through a
        // `dyn` handle exactly as the front-end holds it.
        let d = test_driver();
        let src: &dyn EventSource = &d;
        let ev = src.record(StreamId(2));
        assert!(src.query(ev));
        src.synchronize(ev);
        assert_eq!(d.stats().event_record.calls, 1);
    }

    #[test]
    fn injected_fault_leaves_device_untouched_and_counts() {
        let d = test_driver();
        let gran = d.granularity();
        d.set_fault_plan(
            crate::FaultPlan::new()
                .fail_nth(crate::FaultOp::AddressReserve, 2)
                .fail_nth(crate::FaultOp::Map, 1),
        );
        let _va = d.mem_address_reserve(gran).unwrap();
        let before = d.snapshot();
        let err = d.mem_address_reserve(gran).unwrap_err();
        assert_eq!(
            err,
            DriverError::Injected {
                op: "mem_address_reserve"
            }
        );
        assert_eq!(d.snapshot(), before, "injection mutated nothing");
        // The map fault fires on the batched variant too (shared op).
        let h = d.mem_create(gran).unwrap();
        let va2 = d.mem_address_reserve(gran).unwrap();
        assert!(matches!(
            d.mem_map_range(va2, gran, &[h]).unwrap_err(),
            DriverError::Injected { op: "mem_map" }
        ));
        assert_eq!(d.stats().injected_faults, 2);
        // Injected calls are not counted as successful API calls.
        assert_eq!(d.stats().map.calls, 0);
        assert_eq!(d.stats().address_reserve.calls, 2);
        // Clearing the plan stops injection.
        d.clear_fault_plan();
        d.mem_map_range(va2, gran, &[h]).unwrap();
    }

    #[test]
    fn persistent_fault_keeps_failing_until_cleared() {
        let d = test_driver();
        let gran = d.granularity();
        d.set_fault_plan(crate::FaultPlan::new().fail_from(crate::FaultOp::Create, 1));
        for _ in 0..3 {
            assert!(d.mem_create(gran).is_err());
        }
        d.clear_fault_plan();
        assert!(d.mem_create(gran).is_ok());
        assert_eq!(d.stats().injected_faults, 3);
    }

    #[test]
    fn event_record_fault_degrades_to_stream_synchronize() {
        let cfg = DeviceConfig::small_test().with_cost(crate::cost::CostModel::calibrated());
        let d = CudaDriver::new(cfg);
        let s = StreamId(0);
        d.set_fault_plan(crate::FaultPlan::new().fail_from(crate::FaultOp::EventRecord, 1));
        d.stream_launch(s, 1_000_000);
        let frontier = d.stream_frontier_ns(s);
        let ev = d.event_record(s);
        // Degraded path: the host synchronized the stream, so the returned
        // marker is complete and untracked — a safe answer, never a stale one.
        assert!(d.now_ns() >= frontier, "record waited out the stream");
        assert_eq!(d.outstanding_events(), 0);
        assert!(d.event_query(ev));
        // try_record degrades to None ("caught up") the same way.
        d.stream_launch(s, 1_000_000);
        assert!(d.event_record_if_pending(s).is_none());
        assert_eq!(d.device_synchronize(), 0, "stream was drained");
        assert_eq!(d.stats().injected_faults, 2);
    }

    #[test]
    fn chosen_error_surfaces_through_the_driver() {
        let d = test_driver();
        let gran = d.granularity();
        d.set_fault_plan(crate::FaultPlan::new().fail_nth_with(
            crate::FaultOp::Create,
            1,
            DriverError::OutOfMemory {
                requested: gran,
                in_use: 0,
                capacity: mib(256),
            },
        ));
        assert!(matches!(
            d.mem_create(gran).unwrap_err(),
            DriverError::OutOfMemory { .. }
        ));
        assert!(d.mem_create(gran).is_ok(), "transient: retry succeeds");
    }

    #[test]
    fn partial_map_of_large_handle_works() {
        // A 4-chunk handle mapped at a 2-chunk window with offset.
        let d = test_driver();
        let gran = d.granularity();
        let h = d.mem_create(4 * gran).unwrap();
        let va = d.mem_address_reserve(2 * gran).unwrap();
        d.mem_map(va, 2 * gran, gran, h).unwrap(); // middle of the handle
        d.mem_set_access(va, 2 * gran, true).unwrap();
        d.memcpy_htod(va, b"mid").unwrap();
        // The same bytes are visible through a full-handle mapping.
        let va2 = d.mem_address_reserve(4 * gran).unwrap();
        d.mem_map(va2, 4 * gran, 0, h).unwrap();
        d.mem_set_access(va2, 4 * gran, true).unwrap();
        let mut buf = [0u8; 3];
        d.memcpy_dtoh(va2.offset(gran), &mut buf).unwrap();
        assert_eq!(&buf, b"mid");
    }
}
