//! Latency cost model for driver calls, calibrated against the paper.
//!
//! The paper's Table 1 reports the VMM API execution-time breakdown for a
//! 2 GB allocation, *normalized to `cuMemAlloc`* (i.e. `cudaMalloc` of the
//! same 2 GB), for three internal chunk sizes:
//!
//! | chunk | 2 MB | 128 MB | 1024 MB |
//! |---|---|---|---|
//! | `cuMemAddressReserve` | 0.003 | 0.003 | 0.002 |
//! | `cuMemCreate` (total) | 18.1 | 0.89 | 0.79 |
//! | `cuMemMap` (total) | 0.70 | 0.01 | 0.002 |
//! | `cuMemSetAccess` (total) | 96.8 | 8.2 | 0.7 |
//! | total | 115.4 | 9.1 | 1.5 |
//!
//! We convert the totals to *per-call* costs (divide by the chunk count:
//! 1024 / 16 / 2) and interpolate per-call cost log-linearly in the chunk
//! size between those measured anchors. By construction the model reproduces
//! Table 1 exactly at the anchors and yields the 115× figure of Figure 6.
//!
//! One normalized unit (`cuMemAlloc` of 2 GiB) is mapped to
//! [`CostModel::anchor_ns`] simulated nanoseconds (default 1 ms, the right
//! order of magnitude for a large `cudaMalloc` with an implicit device
//! synchronization).

use gmlake_alloc_api::{gib, mib};

/// Normalized per-call cost anchors: `(chunk_size_bytes, cost_norm)`.
const RESERVE_NORM: f64 = 0.003;
const CREATE_PTS: [(u64, f64); 3] = [
    (2 * 1024 * 1024, 18.1 / 1024.0),
    (128 * 1024 * 1024, 0.89 / 16.0),
    (1024 * 1024 * 1024, 0.79 / 2.0),
];
const MAP_PTS: [(u64, f64); 3] = [
    (2 * 1024 * 1024, 0.70 / 1024.0),
    (128 * 1024 * 1024, 0.01 / 16.0),
    (1024 * 1024 * 1024, 0.002 / 2.0),
];
const SET_ACCESS_PTS: [(u64, f64); 3] = [
    (2 * 1024 * 1024, 96.8 / 1024.0),
    (128 * 1024 * 1024, 8.2 / 16.0),
    (1024 * 1024 * 1024, 0.7 / 2.0),
];

/// `cudaMalloc` is modeled as a fixed synchronization part plus a part linear
/// in size, normalized so that a 2 GiB allocation costs exactly 1.0.
const MEM_ALLOC_FIXED: f64 = 0.4;
const MEM_ALLOC_LINEAR_AT_2GIB: f64 = 0.6;
/// `cudaFree` also synchronizes the device; mostly size-independent.
const MEM_FREE_FIXED: f64 = 0.35;
const MEM_FREE_LINEAR_AT_2GIB: f64 = 0.05;
/// Cheap VMM teardown calls (no device sync).
const UNMAP_NORM: f64 = 0.0005;
const RELEASE_NORM: f64 = 0.002;
const ADDRESS_FREE_NORM: f64 = 0.001;
/// Host-side dispatch overhead baked into every per-call VMM cost: the
/// user→driver transition plus argument validation. A *batched* entry point
/// (`mem_create_batch`, `mem_map_range`) pays it once for the whole batch,
/// so batching `n` chunks saves `(n-1)` dispatches versus `n` single calls.
const DISPATCH_NORM: f64 = 0.0003;
/// Event-API host costs (`cuEventRecord` / `cuEventQuery` /
/// `cuEventSynchronize`): sub-microsecond driver entries on real hardware,
/// which is the whole point of event-guarded cross-stream reuse — recording
/// and polling an event is orders of magnitude cheaper than the allocator
/// mutex round trip it replaces. `EVENT_SYNC_NORM` is the fixed call cost
/// only; the *wait* for an incomplete event additionally advances the clock
/// to the event's completion time.
const EVENT_RECORD_NORM: f64 = 0.0006;
const EVENT_QUERY_NORM: f64 = 0.0002;
const EVENT_SYNC_NORM: f64 = 0.0008;
/// Host-side bookkeeping of a pool allocator (hash/tree operations) per
/// (de)allocation, in nanoseconds. The paper reports the caching allocator is
/// ~10× faster end to end than the native path; sub-microsecond bookkeeping
/// reproduces that.
const HOST_OP_NS: u64 = 300;
/// PCIe/NVLink copy bandwidth used for `memcpy` cost, bytes per nanosecond.
const COPY_BYTES_PER_NS: f64 = 20.0; // ~20 GB/s effective H2D/D2H

/// Calibrated latency model; see the module docs for provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Simulated nanoseconds per normalized unit (cost of `cuMemAlloc(2 GiB)`).
    pub anchor_ns: f64,
    /// Global multiplier, `1.0` for the calibrated model, `0.0` to disable
    /// time simulation entirely (pure functional tests).
    pub scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

impl CostModel {
    /// The Table-1-calibrated model with a 1 ms anchor.
    pub fn calibrated() -> Self {
        CostModel {
            anchor_ns: 1_000_000.0,
            scale: 1.0,
        }
    }

    /// A model in which every operation takes zero time. Useful for tests
    /// that assert pure allocation semantics.
    pub fn zero() -> Self {
        CostModel {
            anchor_ns: 1_000_000.0,
            scale: 0.0,
        }
    }

    #[inline]
    fn to_ns(&self, norm: f64) -> u64 {
        (norm * self.anchor_ns * self.scale) as u64
    }

    /// Cost of `cudaMalloc(size)` (includes implicit device sync).
    pub fn mem_alloc_ns(&self, size: u64) -> u64 {
        let norm = MEM_ALLOC_FIXED + MEM_ALLOC_LINEAR_AT_2GIB * size as f64 / gib(2) as f64;
        self.to_ns(norm)
    }

    /// Cost of `cudaFree(size)` (includes implicit device sync).
    pub fn mem_free_ns(&self, size: u64) -> u64 {
        let norm = MEM_FREE_FIXED + MEM_FREE_LINEAR_AT_2GIB * size as f64 / gib(2) as f64;
        self.to_ns(norm)
    }

    /// Cost of one `cuMemAddressReserve`, independent of size.
    pub fn address_reserve_ns(&self, _size: u64) -> u64 {
        self.to_ns(RESERVE_NORM)
    }

    /// Cost of one `cuMemAddressFree`.
    pub fn address_free_ns(&self) -> u64 {
        self.to_ns(ADDRESS_FREE_NORM)
    }

    /// Cost of one `cuMemCreate` of a physical chunk of `chunk_size` bytes.
    pub fn create_ns(&self, chunk_size: u64) -> u64 {
        self.to_ns(interp_log(&CREATE_PTS, chunk_size))
    }

    /// Cost of one `cuMemRelease`.
    pub fn release_ns(&self) -> u64 {
        self.to_ns(RELEASE_NORM)
    }

    /// Cost of one `cuMemMap` of a chunk of `chunk_size` bytes.
    pub fn map_ns(&self, chunk_size: u64) -> u64 {
        self.to_ns(interp_log(&MAP_PTS, chunk_size))
    }

    /// Per-call dispatch overhead (the user→driver transition plus argument
    /// validation): the fixed cost a batched entry point amortizes over its
    /// whole batch.
    pub fn dispatch_ns(&self) -> u64 {
        self.to_ns(DISPATCH_NORM)
    }

    /// Cost of one *batched* create of `n` chunks of `chunk_size` bytes:
    /// the full per-call cost once, then the dispatch-free marginal cost
    /// for the remaining `n - 1` chunks. Equals `n` single calls minus
    /// `(n-1)` amortized dispatches.
    pub fn create_batch_ns(&self, chunk_size: u64, n: u64) -> u64 {
        Self::amortized(self.create_ns(chunk_size), self.dispatch_ns(), n)
    }

    /// Cost of one *batched* map of `n` contiguous chunks of `chunk_size`
    /// bytes (same amortization as [`CostModel::create_batch_ns`]).
    pub fn map_range_ns(&self, chunk_size: u64, n: u64) -> u64 {
        Self::amortized(self.map_ns(chunk_size), self.dispatch_ns(), n)
    }

    fn amortized(per_call: u64, dispatch: u64, n: u64) -> u64 {
        match n {
            0 => 0,
            n => per_call + (n - 1) * per_call.saturating_sub(dispatch),
        }
    }

    /// Cost of one `cuMemUnmap`.
    pub fn unmap_ns(&self) -> u64 {
        self.to_ns(UNMAP_NORM)
    }

    /// Cost of one *batched* unmap covering `n` mapped chunks: the full
    /// per-call cost once, then the dispatch-free marginal cost for the
    /// remaining `n - 1` (same amortization as
    /// [`CostModel::create_batch_ns`]).
    pub fn unmap_range_ns(&self, n: u64) -> u64 {
        Self::amortized(self.unmap_ns(), self.dispatch_ns(), n)
    }

    /// Cost of one *batched* release of `n` physical handles (same
    /// amortization as [`CostModel::create_batch_ns`]).
    pub fn release_batch_ns(&self, n: u64) -> u64 {
        Self::amortized(self.release_ns(), self.dispatch_ns(), n)
    }

    /// Cost of one `cuMemSetAccess` covering one chunk of `chunk_size` bytes.
    /// Callers covering a range of `n` chunks charge this `n` times, matching
    /// the per-chunk accounting in the paper's Table 1.
    pub fn set_access_ns(&self, chunk_size: u64) -> u64 {
        self.to_ns(interp_log(&SET_ACCESS_PTS, chunk_size))
    }

    /// Cost of one `cuEventRecord` (dropping a completion marker into a
    /// stream's queue).
    pub fn event_record_ns(&self) -> u64 {
        self.to_ns(EVENT_RECORD_NORM)
    }

    /// Cost of one `cuEventQuery` (non-blocking completion poll).
    pub fn event_query_ns(&self) -> u64 {
        self.to_ns(EVENT_QUERY_NORM)
    }

    /// Fixed call cost of one `cuEventSynchronize`, *excluding* the wait:
    /// synchronizing an incomplete event additionally advances the clock to
    /// the event's completion time.
    pub fn event_sync_ns(&self) -> u64 {
        self.to_ns(EVENT_SYNC_NORM)
    }

    /// Host-side bookkeeping cost charged by pool allocators per operation.
    pub fn host_op_ns(&self) -> u64 {
        (HOST_OP_NS as f64 * self.scale) as u64
    }

    /// Cost of copying `size` bytes between host and device.
    pub fn memcpy_ns(&self, size: u64) -> u64 {
        ((size as f64 / COPY_BYTES_PER_NS) * self.scale) as u64
    }

    /// Normalized (Table-1 units) total cost of allocating a block of
    /// `block_size` bytes out of chunks of `chunk_size` bytes via the VMM
    /// path: one reserve plus per-chunk create + map + set-access.
    ///
    /// This is the quantity plotted in the paper's Figure 6.
    pub fn vmm_block_alloc_norm(&self, block_size: u64, chunk_size: u64) -> f64 {
        let chunks = block_size.div_ceil(chunk_size);
        RESERVE_NORM
            + chunks as f64
                * (interp_log(&CREATE_PTS, chunk_size)
                    + interp_log(&MAP_PTS, chunk_size)
                    + interp_log(&SET_ACCESS_PTS, chunk_size))
    }

    /// Normalized cost of `cudaMalloc(block_size)`, for the Figure 6 baseline.
    pub fn native_alloc_norm(&self, block_size: u64) -> f64 {
        MEM_ALLOC_FIXED + MEM_ALLOC_LINEAR_AT_2GIB * block_size as f64 / gib(2) as f64
    }
}

/// Piecewise-linear interpolation in `log2(size)`, clamped to the anchor
/// range (no extrapolation: measurements exist only inside it).
fn interp_log(points: &[(u64, f64)], size: u64) -> f64 {
    debug_assert!(points.len() >= 2);
    let x = (size.max(1) as f64).log2();
    let first = points[0];
    let last = points[points.len() - 1];
    if x <= (first.0 as f64).log2() {
        return first.1;
    }
    if x >= (last.0 as f64).log2() {
        return last.1;
    }
    for w in points.windows(2) {
        let (x0, y0) = ((w[0].0 as f64).log2(), w[0].1);
        let (x1, y1) = ((w[1].0 as f64).log2(), w[1].1);
        if x <= x1 {
            let t = (x - x0) / (x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    last.1
}

/// Returns the chunk sizes swept in the paper's Figure 6 (2 MB … 1 GB).
pub fn figure6_chunk_sizes() -> Vec<u64> {
    (1..=10).map(|i| mib(1) << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::{gib, mib};

    #[test]
    fn table1_totals_reproduce_at_anchors() {
        let m = CostModel::calibrated();
        // 2 GiB block out of 2 MiB chunks => 115.4 normalized (paper: 115.4).
        let t_2mb = m.vmm_block_alloc_norm(gib(2), mib(2));
        assert!((t_2mb - 115.4).abs() < 0.5, "got {t_2mb}");
        // 128 MiB chunks => 9.1.
        let t_128mb = m.vmm_block_alloc_norm(gib(2), mib(128));
        assert!((t_128mb - 9.1).abs() < 0.1, "got {t_128mb}");
        // 1 GiB chunks => 1.5.
        let t_1gb = m.vmm_block_alloc_norm(gib(2), mib(1024));
        assert!((t_1gb - 1.5).abs() < 0.05, "got {t_1gb}");
    }

    #[test]
    fn native_2gib_is_unit_cost() {
        let m = CostModel::calibrated();
        assert!((m.native_alloc_norm(gib(2)) - 1.0).abs() < 1e-9);
        assert_eq!(m.mem_alloc_ns(gib(2)), 1_000_000);
    }

    #[test]
    fn vmm_with_2mb_chunks_is_over_100x_native() {
        let m = CostModel::calibrated();
        let ratio = m.vmm_block_alloc_norm(gib(2), mib(2)) / m.native_alloc_norm(gib(2));
        assert!(ratio > 100.0, "expected >100x, got {ratio}");
    }

    #[test]
    fn interp_is_monotone_between_create_anchors() {
        // Between 2 MiB and 1 GiB, per-call create cost grows with chunk size.
        let sizes = figure6_chunk_sizes();
        let mut prev = 0.0;
        for s in sizes {
            let v = interp_log(&CREATE_PTS, s);
            assert!(v >= prev, "create cost decreased at {s}");
            prev = v;
        }
    }

    #[test]
    fn interp_clamps_outside_range() {
        assert_eq!(interp_log(&CREATE_PTS, 1), CREATE_PTS[0].1);
        assert_eq!(interp_log(&CREATE_PTS, gib(16)), CREATE_PTS[2].1);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        assert_eq!(m.mem_alloc_ns(gib(2)), 0);
        assert_eq!(m.create_ns(mib(2)), 0);
        assert_eq!(m.set_access_ns(mib(2)), 0);
        assert_eq!(m.host_op_ns(), 0);
        assert_eq!(m.memcpy_ns(mib(100)), 0);
        assert_eq!(m.create_batch_ns(mib(2), 100), 0);
        assert_eq!(m.map_range_ns(mib(2), 100), 0);
    }

    #[test]
    fn batch_costs_amortize_exactly_one_dispatch_per_extra_chunk() {
        let m = CostModel::calibrated();
        for n in [1u64, 2, 16, 512] {
            assert_eq!(
                m.create_batch_ns(mib(2), n),
                n * m.create_ns(mib(2)) - (n - 1) * m.dispatch_ns()
            );
            assert_eq!(
                m.map_range_ns(mib(2), n),
                n * m.map_ns(mib(2)) - (n - 1) * m.dispatch_ns()
            );
        }
        assert_eq!(m.create_batch_ns(mib(2), 0), 0);
        // The dispatch overhead never exceeds the cheapest per-call cost at
        // any Figure-6 chunk size, so marginal costs stay positive.
        for chunk in figure6_chunk_sizes() {
            assert!(m.dispatch_ns() < m.map_ns(chunk), "chunk {chunk}");
            assert!(m.dispatch_ns() < m.create_ns(chunk), "chunk {chunk}");
        }
    }

    #[test]
    fn figure6_sweep_has_ten_points() {
        let sizes = figure6_chunk_sizes();
        assert_eq!(sizes.len(), 10);
        assert_eq!(sizes[0], mib(2));
        assert_eq!(sizes[9], mib(1024));
    }

    #[test]
    fn event_calls_are_cheap_relative_to_allocation_work() {
        // The premise of event-guarded cross-stream reuse: an event
        // record+query pair must cost far less than the cheapest VMM
        // allocation call it saves.
        let m = CostModel::calibrated();
        assert!(m.event_record_ns() > 0 && m.event_query_ns() > 0);
        assert!(m.event_record_ns() + m.event_query_ns() < m.create_ns(mib(2)));
        assert!(m.event_sync_ns() < m.mem_alloc_ns(mib(2)));
        let z = CostModel::zero();
        assert_eq!(z.event_record_ns(), 0);
        assert_eq!(z.event_query_ns(), 0);
        assert_eq!(z.event_sync_ns(), 0);
    }

    #[test]
    fn per_chunk_cost_dominated_by_set_access_at_2mb() {
        // Paper: cuMemSetAccess is the bottleneck for small chunks.
        let sa = interp_log(&SET_ACCESS_PTS, mib(2));
        let cr = interp_log(&CREATE_PTS, mib(2));
        let mp = interp_log(&MAP_PTS, mib(2));
        assert!(sa > cr && sa > mp);
    }
}
