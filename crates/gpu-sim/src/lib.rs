//! Simulated GPU memory device and CUDA-style driver.
//!
//! The GMLake paper builds on CUDA's *low-level virtual memory management*
//! API (`cuMemAddressReserve` / `cuMemCreate` / `cuMemMap` /
//! `cuMemSetAccess` / `cuMemUnmap` / `cuMemRelease`). This crate provides a
//! software device with exactly those semantics plus the classic
//! `cudaMalloc`/`cudaFree` path, so the allocators above it can be developed
//! and evaluated without hardware:
//!
//! * **physical chunks** with handles that may be mapped at *multiple*
//!   virtual addresses simultaneously — the property that makes virtual
//!   memory stitching possible;
//! * **a virtual address space** with reservations, per-range mappings,
//!   access control and translation (reads/writes cross chunk boundaries
//!   transparently, proving stitched blocks behave contiguously);
//! * **a calibrated latency model** reproducing the paper's Table 1 and the
//!   115× VMM-vs-native gap of Figure 6, accumulated on a deterministic
//!   simulated clock;
//! * **deferred physical release** (`cuMemRelease` semantics): memory
//!   returns to the device only when the last mapping disappears.
//!
//! # Quick start
//!
//! ```
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//!
//! let drv = CudaDriver::new(DeviceConfig::small_test());
//! let g = drv.granularity(); // 2 MiB
//!
//! // Stitch two discontiguous physical chunks behind one contiguous VA.
//! let va = drv.mem_address_reserve(2 * g)?;
//! let (h1, h2) = (drv.mem_create(g)?, drv.mem_create(g)?);
//! drv.mem_map(va, g, 0, h1)?;
//! drv.mem_map(va.offset(g), g, 0, h2)?;
//! drv.mem_set_access(va, 2 * g, true)?;
//!
//! // A write spanning the chunk boundary behaves as if memory were flat.
//! drv.memcpy_htod(va.offset(g - 2), &[0xAB; 4])?;
//! # Ok::<(), gmlake_gpu_sim::DriverError>(())
//! ```

mod chunk;
mod clock;
mod cost;
mod device;
mod driver;
mod error;
mod event;
mod fault;
mod native;
mod vaspace;

pub use chunk::PhysHandle;
pub use clock::SimClock;
pub use cost::{figure6_chunk_sizes, CostModel};
pub use device::{ApiStats, DeviceConfig, DeviceSnapshot, DriverStats};
pub use driver::CudaDriver;
pub use error::{DriverError, DriverResult};
pub use event::{EventId, EventSource};
pub use fault::{FaultMode, FaultOp, FaultPlan, FaultRule};
pub use native::NativeAllocator;
