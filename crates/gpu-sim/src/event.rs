//! Simulated CUDA events and per-stream completion frontiers.
//!
//! Real CUDA streams are FIFO work queues that run asynchronously from the
//! host; `cuEventRecord` drops a marker into a stream and the event
//! completes once everything enqueued before it has executed. The simulator
//! models each stream with a single number — its **completion frontier**,
//! the simulated timestamp at which all work enqueued on it so far will
//! have finished — and an event records the frontier it was born under:
//!
//! * [`EventEngine::launch`] pushes a stream's frontier forward by the
//!   duration of an asynchronously launched kernel (`max(frontier, now) +
//!   duration`: a stream never runs ahead of the host's enqueue, and work
//!   on one stream is serial);
//! * [`EventEngine::record`] captures `max(frontier, now)` as the event's
//!   completion time;
//! * a query compares that completion time against the device clock — the
//!   host "catches up" to stream work by advancing the clock (driver-call
//!   costs, compute, explicit synchronization).
//!
//! Completed events are garbage-collected on query/synchronize; querying an
//! untracked event reports completion, matching the [`EventSource`]
//! contract (`gmlake-alloc-api`) the driver implements on top of this
//! engine.

use std::collections::HashMap;

use gmlake_alloc_api::StreamId;
pub use gmlake_alloc_api::{EventId, EventSource};

/// Per-stream completion frontiers plus the table of outstanding events.
/// Lives inside the driver's state, guarded by the driver lock.
#[derive(Debug, Default)]
pub(crate) struct EventEngine {
    /// Last minted event id (ids start at 1, never reused).
    next_id: u64,
    /// Outstanding events: id → simulated completion timestamp. Events
    /// whose completion time has passed are pruned on query/synchronize;
    /// events already complete at record time are never inserted.
    ready_at: HashMap<u64, u64>,
    /// Completion frontier per stream (absent = caught up with the host).
    frontiers: HashMap<u32, u64>,
}

impl EventEngine {
    /// The stream's completion frontier: the simulated time at which all
    /// work enqueued on it so far has finished (`now` if it is caught up).
    pub(crate) fn frontier(&self, stream: StreamId, now: u64) -> u64 {
        self.frontiers
            .get(&stream.as_u32())
            .copied()
            .unwrap_or(0)
            .max(now)
    }

    /// Enqueues `duration_ns` of asynchronous work on `stream` at host time
    /// `now`; returns the stream's new frontier.
    pub(crate) fn launch(&mut self, stream: StreamId, now: u64, duration_ns: u64) -> u64 {
        let end = self.frontier(stream, now) + duration_ns;
        self.frontiers.insert(stream.as_u32(), end);
        end
    }

    /// Records an event on `stream` at host time `now`; returns the event
    /// and its completion timestamp. Events completing at or before `now`
    /// are not tracked (they are already complete).
    pub(crate) fn record(&mut self, stream: StreamId, now: u64) -> (EventId, u64) {
        self.next_id += 1;
        let at = self.frontier(stream, now);
        if at > now {
            self.ready_at.insert(self.next_id, at);
        }
        (EventId::new(self.next_id), at)
    }

    /// The event's completion timestamp, or `None` if it is untracked
    /// (never recorded, already pruned, or complete at record time) — which
    /// callers must treat as complete.
    pub(crate) fn completion_of(&self, event: EventId) -> Option<u64> {
        self.ready_at.get(&event.as_u64()).copied()
    }

    /// Forgets `event` (after a query or synchronize observed completion).
    pub(crate) fn prune(&mut self, event: EventId) {
        self.ready_at.remove(&event.as_u64());
    }

    /// The latest frontier across every stream — where a full device
    /// synchronization lands the host clock.
    pub(crate) fn max_frontier(&self, now: u64) -> u64 {
        self.frontiers.values().copied().fold(now, u64::max)
    }

    /// Outstanding (tracked) events — telemetry for leak checks.
    pub(crate) fn outstanding(&self) -> usize {
        self.ready_at.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_starts_at_now_and_accumulates_serially() {
        let mut e = EventEngine::default();
        let s = StreamId(2);
        assert_eq!(e.frontier(s, 100), 100, "caught-up stream = host time");
        assert_eq!(e.launch(s, 100, 50), 150);
        // Second launch queues behind the first, not behind the host.
        assert_eq!(e.launch(s, 110, 40), 190);
        // A long-idle stream snaps back up to the host clock first.
        assert_eq!(e.launch(s, 1000, 10), 1010);
    }

    #[test]
    fn record_captures_the_frontier_and_skips_complete_events() {
        let mut e = EventEngine::default();
        let s = StreamId(0);
        // Nothing in flight: the event is complete at record time and is
        // not tracked.
        let (ev, at) = e.record(s, 42);
        assert_eq!(at, 42);
        assert_eq!(e.completion_of(ev), None, "untracked = complete");
        // In-flight work: tracked until pruned.
        e.launch(s, 42, 100);
        let (ev2, at2) = e.record(s, 42);
        assert_eq!(at2, 142);
        assert_eq!(e.completion_of(ev2), Some(142));
        assert_eq!(e.outstanding(), 1);
        e.prune(ev2);
        assert_eq!(e.outstanding(), 0);
        assert!(ev < ev2, "ids mint in record order");
    }

    #[test]
    fn streams_are_independent_and_max_frontier_covers_all() {
        let mut e = EventEngine::default();
        e.launch(StreamId(0), 0, 100);
        e.launch(StreamId(1), 0, 300);
        assert_eq!(e.frontier(StreamId(0), 0), 100);
        assert_eq!(e.frontier(StreamId(1), 0), 300);
        assert_eq!(e.frontier(StreamId(7), 0), 0, "untouched stream");
        assert_eq!(e.max_frontier(0), 300);
        assert_eq!(e.max_frontier(500), 500, "host already past every stream");
    }
}
