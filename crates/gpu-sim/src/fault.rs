//! Driver fault injection: deterministic, seedable failure schedules.
//!
//! A [`FaultPlan`] installed on a [`CudaDriver`](crate::CudaDriver) makes
//! selected driver entry points fail *before any device mutation* — the
//! injected failure is indistinguishable from a real driver rejection and
//! preserves the driver's strong exception safety (a failing call leaves
//! the device untouched). Three schedule shapes compose freely:
//!
//! * **transient** — fail exactly the Nth call of an op, then disarm
//!   ([`FaultPlan::fail_nth`]); the retry succeeds, modeling a glitch;
//! * **persistent** — fail every call of an op from the Nth onward until
//!   the plan is cleared ([`FaultPlan::fail_from`]), modeling a wedged
//!   driver or exhausted resource class;
//! * **probabilistic** — fail roughly one in `one_in` faultable calls,
//!   driven by a seeded xorshift PRNG ([`FaultPlan::with_probabilistic`]),
//!   for soak runs.
//!
//! Calls are counted per [`FaultOp`] from the moment the plan is
//! installed, so `fail_nth(FaultOp::Create, 3)` always means "the third
//! create after installation" regardless of prior traffic — the property
//! that makes chaos schedules replayable.

use crate::error::DriverError;

/// Driver entry points that can be targeted by fault injection.
///
/// Batched and singular variants of the same API share one op (e.g.
/// `mem_create` and `mem_create_batch` both count as [`FaultOp::Create`]):
/// an allocator that batches must survive the same schedules as one that
/// does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// `mem_alloc` (native `cudaMalloc` path).
    MemAlloc,
    /// `mem_free` (native `cudaFree` path).
    MemFree,
    /// `mem_address_reserve`.
    AddressReserve,
    /// `mem_address_free`.
    AddressFree,
    /// `mem_create` / `mem_create_batch`.
    Create,
    /// `mem_release` / `mem_release_batch`.
    Release,
    /// `mem_map` / `mem_map_range`.
    Map,
    /// `mem_unmap` / `mem_unmap_range`.
    Unmap,
    /// `mem_set_access`.
    SetAccess,
    /// `event_record` / `event_record_if_pending`. These entry points are
    /// infallible in the API; an injected fault degrades them to a
    /// stream-synchronizing slow path instead of an error (see
    /// [`CudaDriver::event_record`](crate::CudaDriver::event_record)).
    EventRecord,
}

impl FaultOp {
    /// Number of distinct ops (sizes the per-op call counters).
    pub const COUNT: usize = 10;

    /// Every op, in declaration order.
    pub const ALL: [FaultOp; FaultOp::COUNT] = [
        FaultOp::MemAlloc,
        FaultOp::MemFree,
        FaultOp::AddressReserve,
        FaultOp::AddressFree,
        FaultOp::Create,
        FaultOp::Release,
        FaultOp::Map,
        FaultOp::Unmap,
        FaultOp::SetAccess,
        FaultOp::EventRecord,
    ];

    /// Dense index for counter arrays and telemetry payloads.
    pub fn index(self) -> usize {
        match self {
            FaultOp::MemAlloc => 0,
            FaultOp::MemFree => 1,
            FaultOp::AddressReserve => 2,
            FaultOp::AddressFree => 3,
            FaultOp::Create => 4,
            FaultOp::Release => 5,
            FaultOp::Map => 6,
            FaultOp::Unmap => 7,
            FaultOp::SetAccess => 8,
            FaultOp::EventRecord => 9,
        }
    }

    /// Stable name used in error messages and snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultOp::MemAlloc => "mem_alloc",
            FaultOp::MemFree => "mem_free",
            FaultOp::AddressReserve => "mem_address_reserve",
            FaultOp::AddressFree => "mem_address_free",
            FaultOp::Create => "mem_create",
            FaultOp::Release => "mem_release",
            FaultOp::Map => "mem_map",
            FaultOp::Unmap => "mem_unmap",
            FaultOp::SetAccess => "mem_set_access",
            FaultOp::EventRecord => "event_record",
        }
    }
}

/// Whether a deterministic rule fires once or keeps firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fire on exactly the Nth matching call, then disarm (the retry
    /// succeeds).
    Transient,
    /// Fire on every matching call from the Nth onward, until the plan is
    /// cleared or replaced.
    Persistent,
}

/// One deterministic fault rule: fail calls of `op` at/after the `nth`
/// matching call (1-based) with `error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Targeted entry point.
    pub op: FaultOp,
    /// 1-based call ordinal (counted from plan installation) the rule
    /// arms at.
    pub nth: u64,
    /// Transient (fire once) or persistent (fire from `nth` onward).
    pub mode: FaultMode,
    /// Error to inject; `None` injects [`DriverError::Injected`].
    pub error: Option<DriverError>,
}

/// A fault schedule: deterministic per-op rules plus an optional seeded
/// probabilistic failure rate. Install with
/// [`CudaDriver::set_fault_plan`](crate::CudaDriver::set_fault_plan).
///
/// # Example
///
/// ```
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig, DriverError, FaultOp, FaultPlan};
///
/// let d = CudaDriver::new(DeviceConfig::small_test());
/// d.set_fault_plan(FaultPlan::new().fail_nth(FaultOp::Create, 2));
/// let g = d.granularity();
/// assert!(d.mem_create(g).is_ok());
/// assert_eq!(
///     d.mem_create(g).unwrap_err(),
///     DriverError::Injected { op: "mem_create" }
/// );
/// assert!(d.mem_create(g).is_ok(), "transient: the retry succeeds");
/// assert_eq!(d.stats().injected_faults, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// `(seed, one_in)`: every faultable call fails with probability
    /// `1/one_in`.
    prob: Option<(u64, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until rules are added).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Transient rule: fail exactly the `nth` call (1-based) of `op` with
    /// [`DriverError::Injected`].
    #[must_use]
    pub fn fail_nth(self, op: FaultOp, nth: u64) -> Self {
        self.rule(op, nth, FaultMode::Transient, None)
    }

    /// Transient rule with a chosen error (e.g. make the 3rd `mem_create`
    /// report [`DriverError::OutOfMemory`]).
    #[must_use]
    pub fn fail_nth_with(self, op: FaultOp, nth: u64, error: DriverError) -> Self {
        self.rule(op, nth, FaultMode::Transient, Some(error))
    }

    /// Persistent rule: fail every call of `op` from the `nth` onward with
    /// [`DriverError::Injected`].
    #[must_use]
    pub fn fail_from(self, op: FaultOp, nth: u64) -> Self {
        self.rule(op, nth, FaultMode::Persistent, None)
    }

    /// Persistent rule with a chosen error.
    #[must_use]
    pub fn fail_from_with(self, op: FaultOp, nth: u64, error: DriverError) -> Self {
        self.rule(op, nth, FaultMode::Persistent, Some(error))
    }

    /// Adds a seeded probabilistic mode: every faultable call additionally
    /// fails with probability `1/one_in` (after deterministic rules are
    /// consulted). Deterministic for a fixed seed and call sequence.
    ///
    /// # Panics
    ///
    /// Panics if `one_in` is zero.
    #[must_use]
    pub fn with_probabilistic(mut self, seed: u64, one_in: u64) -> Self {
        assert!(one_in > 0, "one_in must be >= 1");
        self.prob = Some((seed, one_in));
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.prob.is_none()
    }

    fn rule(mut self, op: FaultOp, nth: u64, mode: FaultMode, error: Option<DriverError>) -> Self {
        assert!(nth >= 1, "call ordinals are 1-based");
        self.rules.push(FaultRule {
            op,
            nth,
            mode,
            error,
        });
        self
    }
}

/// Armed plan state held by the driver: per-op call counters, rule
/// consumption flags, and the probabilistic PRNG.
#[derive(Debug)]
pub(crate) struct FaultState {
    rules: Vec<(FaultRule, bool)>,
    counters: [u64; FaultOp::COUNT],
    /// `(prng_state, one_in)`.
    prob: Option<(u64, u64)>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            rules: plan.rules.into_iter().map(|r| (r, false)).collect(),
            counters: [0; FaultOp::COUNT],
            // xorshift64 state must be nonzero; fold the seed through a
            // golden-ratio constant so seed 0 is usable.
            prob: plan
                .prob
                .map(|(seed, one_in)| ((seed ^ 0x9E37_79B9_7F4A_7C15) | 1, one_in)),
        }
    }

    /// Counts one call of `op`; returns the error to inject, if any.
    pub(crate) fn check(&mut self, op: FaultOp) -> Option<DriverError> {
        self.counters[op.index()] += 1;
        let n = self.counters[op.index()];
        for (rule, consumed) in &mut self.rules {
            if rule.op != op || *consumed {
                continue;
            }
            let fires = match rule.mode {
                FaultMode::Transient => n == rule.nth,
                FaultMode::Persistent => n >= rule.nth,
            };
            if fires {
                if rule.mode == FaultMode::Transient {
                    *consumed = true;
                }
                return Some(
                    rule.error
                        .clone()
                        .unwrap_or(DriverError::Injected { op: op.as_str() }),
                );
            }
        }
        if let Some((state, one_in)) = &mut self.prob {
            // xorshift64: deterministic for a fixed seed + call sequence.
            let mut x = *state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *state = x;
            if x % *one_in == 0 {
                return Some(DriverError::Injected { op: op.as_str() });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(plan: FaultPlan) -> FaultState {
        FaultState::new(plan)
    }

    #[test]
    fn transient_fires_exactly_once() {
        let mut s = armed(FaultPlan::new().fail_nth(FaultOp::Create, 2));
        assert!(s.check(FaultOp::Create).is_none());
        assert_eq!(
            s.check(FaultOp::Create),
            Some(DriverError::Injected { op: "mem_create" })
        );
        for _ in 0..10 {
            assert!(s.check(FaultOp::Create).is_none());
        }
    }

    #[test]
    fn persistent_fires_from_nth_onward() {
        let mut s = armed(FaultPlan::new().fail_from(FaultOp::Map, 3));
        assert!(s.check(FaultOp::Map).is_none());
        assert!(s.check(FaultOp::Map).is_none());
        for _ in 0..5 {
            assert!(s.check(FaultOp::Map).is_some());
        }
        // Other ops are unaffected.
        assert!(s.check(FaultOp::Create).is_none());
    }

    #[test]
    fn chosen_error_is_injected_verbatim() {
        let oom = DriverError::OutOfMemory {
            requested: 1,
            in_use: 2,
            capacity: 3,
        };
        let mut s = armed(FaultPlan::new().fail_nth_with(FaultOp::Create, 1, oom.clone()));
        assert_eq!(s.check(FaultOp::Create), Some(oom));
    }

    #[test]
    fn counters_are_per_op() {
        let mut s = armed(
            FaultPlan::new()
                .fail_nth(FaultOp::Create, 2)
                .fail_nth(FaultOp::Unmap, 1),
        );
        assert!(s.check(FaultOp::Unmap).is_some(), "unmap #1 fires");
        assert!(s.check(FaultOp::Create).is_none(), "create #1 clean");
        assert!(s.check(FaultOp::Create).is_some(), "create #2 fires");
    }

    #[test]
    fn probabilistic_is_deterministic_per_seed_and_roughly_calibrated() {
        let count = |seed: u64| {
            let mut s = armed(FaultPlan::new().with_probabilistic(seed, 100));
            (0..10_000)
                .filter(|_| s.check(FaultOp::Create).is_some())
                .count()
        };
        assert_eq!(count(42), count(42), "same seed, same schedule");
        let hits = count(42);
        // 1-in-100 over 10k calls: expect ~100, allow a generous band.
        assert!((30..300).contains(&hits), "got {hits} injections");
        // Seed 0 must be usable (xorshift state is made nonzero).
        let _ = count(0);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        assert!(FaultPlan::new().is_empty());
        let mut s = armed(FaultPlan::new());
        for op in FaultOp::ALL {
            assert!(s.check(op).is_none());
        }
    }

    #[test]
    fn op_indexes_are_dense_and_names_unique() {
        let mut seen = std::collections::HashSet::new();
        for (i, op) in FaultOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert!(seen.insert(op.as_str()));
        }
    }
}
