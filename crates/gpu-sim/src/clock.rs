//! Simulated monotonic clock.
//!
//! All driver operations and workload compute phases advance this clock, so
//! throughput numbers (samples/s of *simulated* time) are deterministic and
//! independent of the host machine.

/// A monotonically increasing virtual clock in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub const fn new() -> Self {
        SimClock { now_ns: 0 }
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub const fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the clock by `delta_ns` and returns the new time.
    #[inline]
    pub fn advance(&mut self, delta_ns: u64) -> u64 {
        self.now_ns += delta_ns;
        self.now_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(SimClock::default(), SimClock::new());
    }
}
