//! Virtual address space: reservations, mappings, translation.
//!
//! Mirrors the CUDA VMM model: `cuMemAddressReserve` carves a contiguous VA
//! range out of a huge address space; `cuMemMap` binds sub-ranges of it to
//! physical handles; `cuMemSetAccess` enables access; reads and writes
//! translate through the mapping (and may cross chunk boundaries, which is
//! what makes stitched blocks look contiguous to tensors).

use std::collections::BTreeMap;

use gmlake_alloc_api::VirtAddr;

use crate::chunk::PhysHandle;
use crate::error::{DriverError, DriverResult};

/// Base of the simulated device VA space (arbitrary, recognizable).
const VA_BASE: u64 = 0x7000_0000_0000;

/// One mapping of a physical handle into a reservation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MapEntry {
    pub len: u64,
    pub handle: PhysHandle,
    pub handle_off: u64,
    pub access: bool,
}

/// A reserved VA range and its mappings (keyed by offset within the range).
#[derive(Debug, Default)]
pub(crate) struct Reservation {
    pub size: u64,
    pub maps: BTreeMap<u64, MapEntry>,
}

/// A translated extent of a VA range: `len` bytes at `handle_off` within
/// `handle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ResolvedExtent {
    pub handle: PhysHandle,
    pub handle_off: u64,
    pub len: u64,
}

/// The device's virtual address space.
#[derive(Debug)]
pub(crate) struct VaSpace {
    next_va: u64,
    reservations: BTreeMap<u64, Reservation>,
    pub reserved_total: u64,
}

impl Default for VaSpace {
    fn default() -> Self {
        VaSpace {
            next_va: VA_BASE,
            reservations: BTreeMap::new(),
            reserved_total: 0,
        }
    }
}

impl VaSpace {
    pub fn new() -> Self {
        VaSpace::default()
    }

    /// Reserves `size` bytes of VA, aligned to `align` (a power of two).
    /// Addresses are never reused; the 64-bit space is effectively infinite
    /// for simulation purposes.
    pub fn reserve(&mut self, size: u64, align: u64) -> DriverResult<VirtAddr> {
        if size == 0 {
            return Err(DriverError::ZeroSize);
        }
        debug_assert!(align.is_power_of_two());
        let start = (self.next_va + align - 1) & !(align - 1);
        self.next_va = start + size;
        self.reservations.insert(
            start,
            Reservation {
                size,
                maps: BTreeMap::new(),
            },
        );
        self.reserved_total += size;
        Ok(VirtAddr::new(start))
    }

    /// Frees a reservation. It must start exactly at `va`, have the given
    /// `size`, and hold no mappings.
    pub fn address_free(&mut self, va: VirtAddr, size: u64) -> DriverResult<()> {
        let start = va.as_u64();
        let res = self
            .reservations
            .get(&start)
            .ok_or(DriverError::InvalidAddress(va))?;
        if res.size != size {
            return Err(DriverError::InvalidAddress(va));
        }
        if !res.maps.is_empty() {
            return Err(DriverError::ReservationBusy(va));
        }
        self.reservations.remove(&start);
        self.reserved_total -= size;
        Ok(())
    }

    /// Finds the reservation containing `va`, returning `(start, &res)`.
    fn containing(&self, va: VirtAddr) -> DriverResult<(u64, &Reservation)> {
        let a = va.as_u64();
        let (start, res) = self
            .reservations
            .range(..=a)
            .next_back()
            .ok_or(DriverError::InvalidAddress(va))?;
        if a >= start + res.size {
            return Err(DriverError::InvalidAddress(va));
        }
        Ok((*start, res))
    }

    fn containing_mut(&mut self, va: VirtAddr) -> DriverResult<(u64, &mut Reservation)> {
        let a = va.as_u64();
        let (start, res) = self
            .reservations
            .range_mut(..=a)
            .next_back()
            .ok_or(DriverError::InvalidAddress(va))?;
        if a >= start + res.size {
            return Err(DriverError::InvalidAddress(va));
        }
        Ok((*start, res))
    }

    /// Maps `len` bytes of `handle` (starting at `handle_off`) at `va`.
    /// The range must lie inside one reservation and not overlap existing
    /// mappings. Access starts disabled, as in CUDA.
    pub fn map(
        &mut self,
        va: VirtAddr,
        len: u64,
        handle: PhysHandle,
        handle_off: u64,
    ) -> DriverResult<()> {
        if len == 0 {
            return Err(DriverError::ZeroSize);
        }
        let (start, res) = self.containing_mut(va)?;
        let off = va.as_u64() - start;
        if off + len > res.size {
            return Err(DriverError::InvalidAddress(va));
        }
        // Overlap with predecessor?
        if let Some((&poff, pentry)) = res.maps.range(..=off).next_back() {
            if poff + pentry.len > off {
                return Err(DriverError::AlreadyMapped(va));
            }
        }
        // Overlap with successor?
        if let Some((&soff, _)) = res.maps.range(off..).next() {
            if soff < off + len {
                return Err(DriverError::AlreadyMapped(VirtAddr::new(start + soff)));
            }
        }
        res.maps.insert(
            off,
            MapEntry {
                len,
                handle,
                handle_off,
                access: false,
            },
        );
        Ok(())
    }

    /// Collects the map entries that exactly tile `[va, va+len)`.
    ///
    /// Errors with [`DriverError::NotMapped`] on gaps and
    /// [`DriverError::PartialUnmap`] if the range splits an entry.
    fn covering_offsets(
        start: u64,
        res: &Reservation,
        va: VirtAddr,
        len: u64,
    ) -> DriverResult<Vec<u64>> {
        let off = va.as_u64() - start;
        let end = off + len;
        // An entry straddling the left edge means a split.
        if let Some((&poff, pentry)) = res.maps.range(..off).next_back() {
            if poff + pentry.len > off {
                return Err(DriverError::PartialUnmap(va));
            }
        }
        let mut cursor = off;
        let mut found = Vec::new();
        for (&eoff, entry) in res.maps.range(off..) {
            if eoff >= end {
                break;
            }
            if eoff != cursor {
                return Err(DriverError::NotMapped(VirtAddr::new(start + cursor)));
            }
            if eoff + entry.len > end {
                return Err(DriverError::PartialUnmap(VirtAddr::new(start + eoff)));
            }
            found.push(eoff);
            cursor = eoff + entry.len;
        }
        if cursor != end {
            return Err(DriverError::NotMapped(VirtAddr::new(start + cursor)));
        }
        Ok(found)
    }

    /// Unmaps `[va, va+len)`, which must exactly tile whole map entries.
    /// Returns the physical handles whose mappings were removed (with
    /// multiplicity), so the caller can decrement their map counts.
    pub fn unmap(&mut self, va: VirtAddr, len: u64) -> DriverResult<Vec<PhysHandle>> {
        if len == 0 {
            return Err(DriverError::ZeroSize);
        }
        let (start, res) = self.containing_mut(va)?;
        let offsets = Self::covering_offsets(start, res, va, len)?;
        let mut handles = Vec::with_capacity(offsets.len());
        for off in offsets {
            let entry = res.maps.remove(&off).expect("offset collected above");
            handles.push(entry.handle);
        }
        Ok(handles)
    }

    /// Enables or disables access on `[va, va+len)`, which must be fully
    /// mapped. Returns the byte lengths of the entries touched (the driver
    /// charges `cuMemSetAccess` cost per entry, matching the paper's
    /// per-chunk accounting).
    pub fn set_access(&mut self, va: VirtAddr, len: u64, enabled: bool) -> DriverResult<Vec<u64>> {
        if len == 0 {
            return Err(DriverError::ZeroSize);
        }
        let (start, res) = self.containing_mut(va)?;
        let offsets = Self::covering_offsets(start, res, va, len)?;
        let mut lens = Vec::with_capacity(offsets.len());
        for off in offsets {
            let entry = res.maps.get_mut(&off).expect("offset collected above");
            entry.access = enabled;
            lens.push(entry.len);
        }
        Ok(lens)
    }

    /// Translates `[va, va+len)` into physical extents. The range must be
    /// fully mapped with access enabled.
    pub fn resolve(&self, va: VirtAddr, len: u64) -> DriverResult<Vec<ResolvedExtent>> {
        if len == 0 {
            return Err(DriverError::ZeroSize);
        }
        let (start, res) = self.containing(va)?;
        let off = va.as_u64() - start;
        let end = off + len;
        let mut cursor = off;
        let mut out = Vec::new();
        // The first entry may start before `off`.
        let mut iter_start = off;
        if let Some((&poff, pentry)) = res.maps.range(..=off).next_back() {
            if poff + pentry.len > off {
                iter_start = poff;
            }
        }
        for (&eoff, entry) in res.maps.range(iter_start..) {
            if eoff >= end {
                break;
            }
            if eoff > cursor {
                return Err(DriverError::NotMapped(VirtAddr::new(start + cursor)));
            }
            if !entry.access {
                return Err(DriverError::AccessDenied(VirtAddr::new(start + eoff)));
            }
            let take_from = cursor.max(eoff);
            let take_to = (eoff + entry.len).min(end);
            if take_to > take_from {
                out.push(ResolvedExtent {
                    handle: entry.handle,
                    handle_off: entry.handle_off + (take_from - eoff),
                    len: take_to - take_from,
                });
                cursor = take_to;
            }
        }
        if cursor != end {
            return Err(DriverError::NotMapped(VirtAddr::new(start + cursor)));
        }
        Ok(out)
    }

    /// Number of live reservations.
    pub fn reservation_count(&self) -> usize {
        self.reservations.len()
    }

    /// Total number of live mappings across all reservations.
    pub fn mapping_count(&self) -> usize {
        self.reservations.values().map(|r| r.maps.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(n: u64) -> PhysHandle {
        PhysHandle(n)
    }

    #[test]
    fn reserve_is_aligned_and_disjoint() {
        let mut va = VaSpace::new();
        let a = va.reserve(100, 4096).unwrap();
        let b = va.reserve(100, 4096).unwrap();
        assert_eq!(a.as_u64() % 4096, 0);
        assert_eq!(b.as_u64() % 4096, 0);
        assert!(b.as_u64() >= a.as_u64() + 100);
        assert_eq!(va.reserved_total, 200);
        assert_eq!(va.reservation_count(), 2);
    }

    #[test]
    fn zero_reserve_rejected() {
        let mut va = VaSpace::new();
        assert_eq!(va.reserve(0, 4096).unwrap_err(), DriverError::ZeroSize);
    }

    #[test]
    fn map_then_resolve_across_chunks() {
        let mut va = VaSpace::new();
        let base = va.reserve(8, 2).unwrap();
        va.map(base, 4, handle(1), 0).unwrap();
        va.map(base.offset(4), 4, handle(2), 16).unwrap();
        va.set_access(base, 8, true).unwrap();
        let extents = va.resolve(base.offset(2), 4).unwrap();
        assert_eq!(
            extents,
            vec![
                ResolvedExtent {
                    handle: handle(1),
                    handle_off: 2,
                    len: 2
                },
                ResolvedExtent {
                    handle: handle(2),
                    handle_off: 16,
                    len: 2
                },
            ]
        );
    }

    #[test]
    fn overlapping_map_rejected() {
        let mut va = VaSpace::new();
        let base = va.reserve(16, 2).unwrap();
        va.map(base, 8, handle(1), 0).unwrap();
        assert!(matches!(
            va.map(base.offset(4), 4, handle(2), 0).unwrap_err(),
            DriverError::AlreadyMapped(_)
        ));
        assert!(matches!(
            va.map(base, 8, handle(2), 0).unwrap_err(),
            DriverError::AlreadyMapped(_)
        ));
        // Mapping beyond the reservation fails.
        assert!(matches!(
            va.map(base.offset(12), 8, handle(2), 0).unwrap_err(),
            DriverError::InvalidAddress(_)
        ));
    }

    #[test]
    fn resolve_requires_access() {
        let mut va = VaSpace::new();
        let base = va.reserve(4, 2).unwrap();
        va.map(base, 4, handle(1), 0).unwrap();
        assert!(matches!(
            va.resolve(base, 4).unwrap_err(),
            DriverError::AccessDenied(_)
        ));
        va.set_access(base, 4, true).unwrap();
        assert_eq!(va.resolve(base, 4).unwrap().len(), 1);
    }

    #[test]
    fn resolve_detects_gaps() {
        let mut va = VaSpace::new();
        let base = va.reserve(12, 2).unwrap();
        va.map(base, 4, handle(1), 0).unwrap();
        va.map(base.offset(8), 4, handle(2), 0).unwrap();
        va.set_access(base, 4, true).unwrap();
        va.set_access(base.offset(8), 4, true).unwrap();
        assert!(matches!(
            va.resolve(base, 12).unwrap_err(),
            DriverError::NotMapped(_)
        ));
    }

    #[test]
    fn unmap_must_cover_whole_entries() {
        let mut va = VaSpace::new();
        let base = va.reserve(8, 2).unwrap();
        va.map(base, 8, handle(1), 0).unwrap();
        assert!(matches!(
            va.unmap(base, 4).unwrap_err(),
            DriverError::PartialUnmap(_)
        ));
        assert!(matches!(
            va.unmap(base.offset(4), 4).unwrap_err(),
            DriverError::PartialUnmap(_)
        ));
        let handles = va.unmap(base, 8).unwrap();
        assert_eq!(handles, vec![handle(1)]);
        assert_eq!(va.mapping_count(), 0);
    }

    #[test]
    fn unmap_multiple_entries_returns_all_handles() {
        let mut va = VaSpace::new();
        let base = va.reserve(12, 2).unwrap();
        va.map(base, 4, handle(1), 0).unwrap();
        va.map(base.offset(4), 4, handle(2), 0).unwrap();
        va.map(base.offset(8), 4, handle(1), 4).unwrap();
        let handles = va.unmap(base, 12).unwrap();
        assert_eq!(handles, vec![handle(1), handle(2), handle(1)]);
    }

    #[test]
    fn unmap_gap_is_not_mapped() {
        let mut va = VaSpace::new();
        let base = va.reserve(12, 2).unwrap();
        va.map(base, 4, handle(1), 0).unwrap();
        va.map(base.offset(8), 4, handle(2), 0).unwrap();
        assert!(matches!(
            va.unmap(base, 12).unwrap_err(),
            DriverError::NotMapped(_)
        ));
    }

    #[test]
    fn address_free_requires_empty_and_exact() {
        let mut va = VaSpace::new();
        let base = va.reserve(8, 2).unwrap();
        va.map(base, 8, handle(1), 0).unwrap();
        assert!(matches!(
            va.address_free(base, 8).unwrap_err(),
            DriverError::ReservationBusy(_)
        ));
        va.unmap(base, 8).unwrap();
        assert!(matches!(
            va.address_free(base, 4).unwrap_err(),
            DriverError::InvalidAddress(_)
        ));
        va.address_free(base, 8).unwrap();
        assert_eq!(va.reservation_count(), 0);
        assert_eq!(va.reserved_total, 0);
    }

    #[test]
    fn set_access_reports_entry_lengths() {
        let mut va = VaSpace::new();
        let base = va.reserve(12, 2).unwrap();
        va.map(base, 4, handle(1), 0).unwrap();
        va.map(base.offset(4), 8, handle(2), 0).unwrap();
        let lens = va.set_access(base, 12, true).unwrap();
        assert_eq!(lens, vec![4, 8]);
    }

    #[test]
    fn addresses_outside_any_reservation_are_invalid() {
        let mut va = VaSpace::new();
        let base = va.reserve(8, 2).unwrap();
        let past = VirtAddr::new(base.as_u64() + 8);
        assert!(matches!(
            va.map(past, 2, handle(1), 0).unwrap_err(),
            DriverError::InvalidAddress(_)
        ));
        assert!(matches!(
            va.resolve(VirtAddr::new(1), 1).unwrap_err(),
            DriverError::InvalidAddress(_)
        ));
    }
}
