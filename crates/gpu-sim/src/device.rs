//! Device configuration and driver-level telemetry.

use crate::cost::CostModel;
use gmlake_alloc_api::{gib, mib};

/// Configuration of a simulated GPU memory device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Human-readable device name (reports only).
    pub name: String,
    /// Physical memory capacity in bytes.
    pub capacity: u64,
    /// VMM allocation granularity in bytes (2 MiB on NVIDIA hardware).
    pub granularity: u64,
    /// When `true`, physical chunks carry real host bytes so reads/writes
    /// through mapped VAs work (slow, for tests). When `false`, the device is
    /// accounting-only (fast, for 80 GiB-scale benchmarks).
    pub backing: bool,
    /// Latency model for driver calls.
    pub cost: CostModel,
}

impl DeviceConfig {
    /// An NVIDIA A100-80GB-like device: 80 GiB, 2 MiB granularity, no byte
    /// backing, calibrated cost model. This is the configuration used by all
    /// paper-reproduction benchmarks.
    pub fn a100_80g() -> Self {
        DeviceConfig {
            name: "sim-a100-80g".to_owned(),
            capacity: gib(80),
            granularity: mib(2),
            backing: false, // accounting-only at 80 GiB scale
            cost: CostModel::calibrated(),
        }
    }

    /// A tiny device (256 MiB) with byte backing and a zero-cost model, for
    /// unit and property tests that verify semantics, not performance.
    pub fn small_test() -> Self {
        DeviceConfig {
            name: "sim-test-256m".to_owned(),
            capacity: mib(256),
            granularity: mib(2),
            backing: true,
            cost: CostModel::zero(),
        }
    }

    /// Sets the capacity in bytes.
    #[must_use]
    pub fn with_capacity(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }

    /// Enables or disables byte backing.
    #[must_use]
    pub fn with_backing(mut self, backing: bool) -> Self {
        self.backing = backing;
        self
    }

    /// Replaces the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the VMM granularity (tests only; hardware uses 2 MiB).
    #[must_use]
    pub fn with_granularity(mut self, granularity: u64) -> Self {
        assert!(granularity.is_power_of_two());
        self.granularity = granularity;
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::a100_80g()
    }
}

/// Call count and accumulated simulated time for one API entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApiStats {
    /// Number of successful calls.
    pub calls: u64,
    /// Simulated nanoseconds spent in them.
    pub time_ns: u64,
}

impl ApiStats {
    pub(crate) fn record(&mut self, ns: u64) {
        self.calls += 1;
        self.time_ns += ns;
    }
}

/// Per-API telemetry for a device, mirroring the rows of the paper's Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// `cudaMalloc` (native path).
    pub mem_alloc: ApiStats,
    /// `cudaFree` (native path).
    pub mem_free: ApiStats,
    /// `cuMemAddressReserve`.
    pub address_reserve: ApiStats,
    /// `cuMemAddressFree`.
    pub address_free: ApiStats,
    /// `cuMemCreate`.
    pub create: ApiStats,
    /// `cuMemRelease`.
    pub release: ApiStats,
    /// `cuMemMap`.
    pub map: ApiStats,
    /// `cuMemUnmap`.
    pub unmap: ApiStats,
    /// `cuMemSetAccess`.
    pub set_access: ApiStats,
    /// Host/device copies and memsets.
    pub memcpy: ApiStats,
    /// `cuEventRecord`.
    pub event_record: ApiStats,
    /// `cuEventQuery`.
    pub event_query: ApiStats,
    /// `cuEventSynchronize` / `cuCtxSynchronize` — `time_ns` includes the
    /// simulated wait for incomplete work, not just the call overhead.
    pub event_sync: ApiStats,
    /// Asynchronous kernel/work launches (`stream_launch`).
    pub launch: ApiStats,
    /// Faults injected by an installed [`FaultPlan`](crate::FaultPlan).
    /// Injected calls are rejected before mutating the device, so they are
    /// **not** counted in the per-API [`ApiStats`] above or in
    /// [`DriverStats::total_calls`].
    pub injected_faults: u64,
}

impl DriverStats {
    /// Total simulated time spent in VMM calls (reserve/create/map/
    /// set-access/unmap/release/address-free).
    pub fn vmm_time_ns(&self) -> u64 {
        self.address_reserve.time_ns
            + self.address_free.time_ns
            + self.create.time_ns
            + self.release.time_ns
            + self.map.time_ns
            + self.unmap.time_ns
            + self.set_access.time_ns
    }

    /// Total simulated time spent in native allocation calls.
    pub fn native_time_ns(&self) -> u64 {
        self.mem_alloc.time_ns + self.mem_free.time_ns
    }

    /// Total driver time (excluding copies).
    pub fn allocator_time_ns(&self) -> u64 {
        self.vmm_time_ns() + self.native_time_ns()
    }

    /// Total simulated time spent in the event/synchronization APIs
    /// (record + query + synchronize, waits included).
    pub fn event_time_ns(&self) -> u64 {
        self.event_record.time_ns + self.event_query.time_ns + self.event_sync.time_ns
    }

    /// Total driver entries across every API (copies, events, and launches
    /// included). Batched entry points (`mem_create_batch`,
    /// `mem_map_range`) count as one call each, so this is the number of
    /// lock round-trips an allocator cost the device — the quantity
    /// batching drives down.
    pub fn total_calls(&self) -> u64 {
        self.mem_alloc.calls
            + self.mem_free.calls
            + self.address_reserve.calls
            + self.address_free.calls
            + self.create.calls
            + self.release.calls
            + self.map.calls
            + self.unmap.calls
            + self.set_access.calls
            + self.memcpy.calls
            + self.event_record.calls
            + self.event_query.calls
            + self.event_sync.calls
            + self.launch.calls
    }
}

/// A point-in-time view of device occupancy (all counters in bytes unless
/// noted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceSnapshot {
    /// Physical bytes currently allocated.
    pub phys_in_use: u64,
    /// High-water mark of `phys_in_use`.
    pub peak_phys_in_use: u64,
    /// Cumulative physical bytes ever created.
    pub phys_created_total: u64,
    /// Virtual bytes currently reserved.
    pub va_reserved: u64,
    /// Live physical handles (count).
    pub handles: u64,
    /// Live VA reservations (count).
    pub reservations: u64,
    /// Live mappings (count).
    pub mappings: u64,
    /// Simulated clock (ns).
    pub clock_ns: u64,
}

impl DeviceSnapshot {
    /// `true` when the device holds no memory and no address space — the
    /// expected state after every allocator has been dropped.
    pub fn is_quiescent(&self) -> bool {
        self.phys_in_use == 0 && self.handles == 0 && self.reservations == 0 && self.mappings == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_defaults() {
        let c = DeviceConfig::a100_80g();
        assert_eq!(c.capacity, gib(80));
        assert_eq!(c.granularity, mib(2));
        assert!(!c.backing);
    }

    #[test]
    fn builders_chain() {
        let c = DeviceConfig::small_test()
            .with_capacity(mib(64))
            .with_backing(false)
            .with_granularity(mib(1));
        assert_eq!(c.capacity, mib(64));
        assert!(!c.backing);
        assert_eq!(c.granularity, mib(1));
    }

    #[test]
    fn api_stats_accumulate() {
        let mut s = ApiStats::default();
        s.record(10);
        s.record(5);
        assert_eq!(s.calls, 2);
        assert_eq!(s.time_ns, 15);
    }

    #[test]
    fn driver_stats_time_partitions() {
        let mut s = DriverStats::default();
        s.mem_alloc.record(100);
        s.create.record(40);
        s.map.record(2);
        s.set_access.record(8);
        assert_eq!(s.native_time_ns(), 100);
        assert_eq!(s.vmm_time_ns(), 50);
        assert_eq!(s.allocator_time_ns(), 150);
        assert_eq!(s.total_calls(), 4);
    }

    #[test]
    fn quiescence_check() {
        let mut snap = DeviceSnapshot::default();
        assert!(snap.is_quiescent());
        snap.phys_in_use = 1;
        assert!(!snap.is_quiescent());
    }
}
