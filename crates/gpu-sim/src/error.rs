//! Driver error type, mirroring the failure modes of the CUDA driver API.

use std::error::Error;
use std::fmt;

use gmlake_alloc_api::VirtAddr;

/// Errors returned by the simulated CUDA driver.
///
/// Every operation validates its arguments (C-VALIDATE) and fails without
/// mutating device state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// Physical memory exhausted (`CUDA_ERROR_OUT_OF_MEMORY`).
    OutOfMemory {
        /// Bytes requested by the failing call.
        requested: u64,
        /// Physical bytes currently in use on the device.
        in_use: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// A handle that was never created, or was already released and fully
    /// unmapped (`CUDA_ERROR_INVALID_HANDLE`).
    InvalidHandle(u64),
    /// A handle was released and can no longer be mapped.
    HandleReleased(u64),
    /// An address outside any reservation, or a range crossing reservation
    /// boundaries (`CUDA_ERROR_INVALID_VALUE`).
    InvalidAddress(VirtAddr),
    /// A size/offset/address not aligned to the allocation granularity.
    Misaligned {
        /// The offending value.
        value: u64,
        /// Required alignment in bytes.
        granularity: u64,
    },
    /// A zero-size operation was requested.
    ZeroSize,
    /// The target VA range overlaps an existing mapping.
    AlreadyMapped(VirtAddr),
    /// The VA range is not (fully) mapped.
    NotMapped(VirtAddr),
    /// The mapping exists but access was never enabled via `mem_set_access`
    /// (reads/writes through it fault, as on real hardware).
    AccessDenied(VirtAddr),
    /// `mem_address_free` on a reservation that still has live mappings.
    ReservationBusy(VirtAddr),
    /// An `unmap` range that splits a mapping entry instead of covering it.
    PartialUnmap(VirtAddr),
    /// A map would extend past the end of the physical allocation.
    HandleRangeOutOfBounds {
        /// Handle's raw id.
        handle: u64,
        /// Requested offset within the handle.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Handle size.
        size: u64,
    },
    /// Data-path operation on a device configured without byte backing.
    BackingDisabled,
    /// A fault injected by an installed
    /// [`FaultPlan`](crate::FaultPlan) — no real-hardware analog. The
    /// failing call left the device untouched, exactly like every other
    /// rejection.
    Injected {
        /// Driver entry point the fault was injected at (see
        /// [`FaultOp::as_str`](crate::FaultOp::as_str)).
        op: &'static str,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes with {in_use}/{capacity} in use"
            ),
            DriverError::InvalidHandle(h) => write!(f, "invalid physical handle {h}"),
            DriverError::HandleReleased(h) => {
                write!(f, "physical handle {h} was released and cannot be mapped")
            }
            DriverError::InvalidAddress(va) => write!(f, "invalid device address {va}"),
            DriverError::Misaligned { value, granularity } => write!(
                f,
                "value {value} is not aligned to the {granularity}-byte granularity"
            ),
            DriverError::ZeroSize => write!(f, "zero-size operation"),
            DriverError::AlreadyMapped(va) => write!(f, "address {va} is already mapped"),
            DriverError::NotMapped(va) => write!(f, "address {va} is not mapped"),
            DriverError::AccessDenied(va) => {
                write!(f, "access to {va} was not enabled via mem_set_access")
            }
            DriverError::ReservationBusy(va) => {
                write!(f, "reservation at {va} still has live mappings")
            }
            DriverError::PartialUnmap(va) => {
                write!(
                    f,
                    "unmap range at {va} splits a mapping instead of covering it"
                )
            }
            DriverError::HandleRangeOutOfBounds {
                handle,
                offset,
                len,
                size,
            } => write!(
                f,
                "map of {len} bytes at offset {offset} exceeds handle {handle} of size {size}"
            ),
            DriverError::BackingDisabled => write!(
                f,
                "data-path operation on a device configured without byte backing"
            ),
            DriverError::Injected { op } => write!(f, "injected fault at {op}"),
        }
    }
}

impl Error for DriverError {}

/// Convenience alias used across the driver.
pub type DriverResult<T> = Result<T, DriverError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<DriverError> = vec![
            DriverError::OutOfMemory {
                requested: 1,
                in_use: 2,
                capacity: 3,
            },
            DriverError::InvalidHandle(7),
            DriverError::HandleReleased(7),
            DriverError::InvalidAddress(VirtAddr::new(0x10)),
            DriverError::Misaligned {
                value: 3,
                granularity: 2,
            },
            DriverError::ZeroSize,
            DriverError::AlreadyMapped(VirtAddr::new(1)),
            DriverError::NotMapped(VirtAddr::new(1)),
            DriverError::AccessDenied(VirtAddr::new(1)),
            DriverError::ReservationBusy(VirtAddr::new(1)),
            DriverError::PartialUnmap(VirtAddr::new(1)),
            DriverError::HandleRangeOutOfBounds {
                handle: 1,
                offset: 2,
                len: 3,
                size: 4,
            },
            DriverError::BackingDisabled,
            DriverError::Injected { op: "mem_create" },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<DriverError>();
    }
}
