//! Physical memory handle table.
//!
//! `cuMemCreate` returns an opaque handle to physical memory; the handle can
//! be mapped at multiple virtual addresses simultaneously (that property is
//! exactly what GMLake's stitching exploits: an sBlock remaps the chunks of
//! its pBlocks without unmapping them). `cuMemRelease` only drops the
//! creation reference — physical memory is returned to the device when the
//! last mapping disappears.

use std::collections::HashMap;

use crate::error::{DriverError, DriverResult};

/// Opaque handle to a physical memory allocation, as returned by
/// [`CudaDriver::mem_create`](crate::CudaDriver::mem_create).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysHandle(pub(crate) u64);

impl PhysHandle {
    /// Raw numeric id (for diagnostics).
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PhysHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "phys#{}", self.0)
    }
}

#[derive(Debug)]
pub(crate) struct PhysEntry {
    pub size: u64,
    /// Number of live VA mappings referencing this handle.
    pub map_count: u32,
    /// Whether `mem_release` was called (creation reference dropped).
    pub released: bool,
    /// Backing bytes when the device is configured with `backing = true`.
    pub bytes: Option<Box<[u8]>>,
}

/// Table of all live physical allocations plus capacity accounting.
#[derive(Debug, Default)]
pub(crate) struct PhysTable {
    next_id: u64,
    entries: HashMap<u64, PhysEntry>,
    pub in_use: u64,
    pub peak_in_use: u64,
    pub created_total: u64,
}

impl PhysTable {
    pub fn new() -> Self {
        PhysTable::default()
    }

    /// Creates a physical allocation of `size` bytes, enforcing `capacity`.
    pub fn create(&mut self, size: u64, capacity: u64, backing: bool) -> DriverResult<PhysHandle> {
        if size == 0 {
            return Err(DriverError::ZeroSize);
        }
        if self.in_use + size > capacity {
            return Err(DriverError::OutOfMemory {
                requested: size,
                in_use: self.in_use,
                capacity,
            });
        }
        self.next_id += 1;
        let bytes = if backing {
            Some(vec![0u8; size as usize].into_boxed_slice())
        } else {
            None
        };
        self.entries.insert(
            self.next_id,
            PhysEntry {
                size,
                map_count: 0,
                released: false,
                bytes,
            },
        );
        self.in_use += size;
        self.created_total += size;
        if self.in_use > self.peak_in_use {
            self.peak_in_use = self.in_use;
        }
        Ok(PhysHandle(self.next_id))
    }

    fn entry(&self, h: PhysHandle) -> DriverResult<&PhysEntry> {
        self.entries
            .get(&h.0)
            .ok_or(DriverError::InvalidHandle(h.0))
    }

    fn entry_mut(&mut self, h: PhysHandle) -> DriverResult<&mut PhysEntry> {
        self.entries
            .get_mut(&h.0)
            .ok_or(DriverError::InvalidHandle(h.0))
    }

    /// Size of the allocation behind `h`.
    pub fn size_of(&self, h: PhysHandle) -> DriverResult<u64> {
        Ok(self.entry(h)?.size)
    }

    /// Registers one more VA mapping on `h`. Fails if the handle was released
    /// (CUDA forbids new mappings of released handles).
    pub fn add_map(&mut self, h: PhysHandle) -> DriverResult<()> {
        let e = self.entry_mut(h)?;
        if e.released {
            return Err(DriverError::HandleReleased(h.0));
        }
        e.map_count += 1;
        Ok(())
    }

    /// Removes one VA mapping from `h`; frees the physical memory if the
    /// handle was released and this was the last mapping.
    pub fn remove_map(&mut self, h: PhysHandle) -> DriverResult<()> {
        let e = self.entry_mut(h)?;
        debug_assert!(e.map_count > 0, "map_count underflow on {h}");
        e.map_count -= 1;
        if e.map_count == 0 && e.released {
            self.destroy(h);
        }
        Ok(())
    }

    /// Validates that `h` exists and still holds its creation reference —
    /// the all-or-nothing precheck of a batched release, run over the whole
    /// batch before anything is mutated.
    pub fn check_releasable(&self, h: PhysHandle) -> DriverResult<()> {
        let e = self.entry(h)?;
        if e.released {
            return Err(DriverError::InvalidHandle(h.0));
        }
        Ok(())
    }

    /// Drops the creation reference. Physical memory is freed immediately if
    /// no mapping remains, otherwise when the last mapping is removed.
    pub fn release(&mut self, h: PhysHandle) -> DriverResult<()> {
        let e = self.entry_mut(h)?;
        if e.released {
            return Err(DriverError::InvalidHandle(h.0));
        }
        e.released = true;
        if e.map_count == 0 {
            self.destroy(h);
        }
        Ok(())
    }

    fn destroy(&mut self, h: PhysHandle) {
        if let Some(e) = self.entries.remove(&h.0) {
            self.in_use -= e.size;
        }
    }

    /// Reads `buf.len()` bytes starting at `offset` within `h`.
    pub fn read(&self, h: PhysHandle, offset: u64, buf: &mut [u8]) -> DriverResult<()> {
        let e = self.entry(h)?;
        let bytes = e.bytes.as_ref().ok_or(DriverError::BackingDisabled)?;
        let start = offset as usize;
        buf.copy_from_slice(&bytes[start..start + buf.len()]);
        Ok(())
    }

    /// Writes `data` starting at `offset` within `h`.
    pub fn write(&mut self, h: PhysHandle, offset: u64, data: &[u8]) -> DriverResult<()> {
        let e = self.entry_mut(h)?;
        let bytes = e.bytes.as_mut().ok_or(DriverError::BackingDisabled)?;
        let start = offset as usize;
        bytes[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Number of live handles (diagnostics / leak checks).
    pub fn handle_count(&self) -> usize {
        self.entries.len()
    }

    /// Current map count of a handle (diagnostics).
    #[allow(dead_code)]
    pub fn map_count(&self, h: PhysHandle) -> DriverResult<u32> {
        Ok(self.entry(h)?.map_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 1024;

    #[test]
    fn create_respects_capacity() {
        let mut t = PhysTable::new();
        let h = t.create(512, CAP, false).unwrap();
        assert_eq!(t.size_of(h).unwrap(), 512);
        assert_eq!(t.in_use, 512);
        let err = t.create(513, CAP, false).unwrap_err();
        assert!(matches!(
            err,
            DriverError::OutOfMemory { requested: 513, .. }
        ));
        // State unchanged after failure.
        assert_eq!(t.in_use, 512);
        assert_eq!(t.handle_count(), 1);
    }

    #[test]
    fn zero_size_rejected() {
        let mut t = PhysTable::new();
        assert_eq!(t.create(0, CAP, false).unwrap_err(), DriverError::ZeroSize);
    }

    #[test]
    fn release_without_maps_frees_immediately() {
        let mut t = PhysTable::new();
        let h = t.create(256, CAP, false).unwrap();
        t.release(h).unwrap();
        assert_eq!(t.in_use, 0);
        assert_eq!(t.handle_count(), 0);
        assert!(matches!(
            t.release(h).unwrap_err(),
            DriverError::InvalidHandle(_)
        ));
    }

    #[test]
    fn release_with_live_maps_defers_free() {
        let mut t = PhysTable::new();
        let h = t.create(256, CAP, false).unwrap();
        t.add_map(h).unwrap();
        t.add_map(h).unwrap(); // second VA (stitched view)
        t.release(h).unwrap();
        assert_eq!(t.in_use, 256, "still mapped: memory must survive");
        t.remove_map(h).unwrap();
        assert_eq!(t.in_use, 256);
        t.remove_map(h).unwrap();
        assert_eq!(t.in_use, 0, "last unmap frees the released handle");
        assert_eq!(t.handle_count(), 0);
    }

    #[test]
    fn released_handle_cannot_gain_new_maps() {
        let mut t = PhysTable::new();
        let h = t.create(128, CAP, false).unwrap();
        t.add_map(h).unwrap();
        t.release(h).unwrap();
        assert_eq!(t.add_map(h).unwrap_err(), DriverError::HandleReleased(h.0));
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut t = PhysTable::new();
        let a = t.create(300, CAP, false).unwrap();
        let _b = t.create(300, CAP, false).unwrap();
        t.release(a).unwrap();
        assert_eq!(t.in_use, 300);
        assert_eq!(t.peak_in_use, 600);
        assert_eq!(t.created_total, 600);
    }

    #[test]
    fn backing_read_write_roundtrip() {
        let mut t = PhysTable::new();
        let h = t.create(64, CAP, true).unwrap();
        t.write(h, 8, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        t.read(h, 8, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        // Fresh memory is zeroed.
        let mut head = [9u8; 8];
        t.read(h, 0, &mut head).unwrap();
        assert_eq!(head, [0u8; 8]);
    }

    #[test]
    fn data_path_requires_backing() {
        let mut t = PhysTable::new();
        let h = t.create(64, CAP, false).unwrap();
        assert_eq!(
            t.write(h, 0, &[1]).unwrap_err(),
            DriverError::BackingDisabled
        );
        let mut buf = [0u8; 1];
        assert_eq!(
            t.read(h, 0, &mut buf).unwrap_err(),
            DriverError::BackingDisabled
        );
    }
}
