//! Memory statistics, matching the metrics defined in the paper (§5.1).
//!
//! * **active memory** — bytes currently allocated to live tensors;
//! * **reserved memory** — bytes of physical GPU memory the allocator holds
//!   (active + cached);
//! * **utilization ratio** — peak active / peak reserved;
//! * **fragmentation ratio** — `1 − utilization` (the paper's definition for
//!   arbitrary-size blocks, replacing page-based FMFI).

use std::fmt;

/// Counters exposed by every allocator through
/// [`GpuAllocator::stats`](crate::GpuAllocator::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemStats {
    /// Bytes currently allocated to live tensors.
    pub active_bytes: u64,
    /// Physical bytes this allocator currently holds on the device.
    pub reserved_bytes: u64,
    /// High-water mark of `active_bytes`.
    pub peak_active_bytes: u64,
    /// High-water mark of `reserved_bytes`.
    pub peak_reserved_bytes: u64,
    /// Number of `allocate` calls that succeeded.
    pub alloc_count: u64,
    /// Number of `deallocate` calls that succeeded.
    pub free_count: u64,
    /// Number of `allocate` calls that returned `OutOfMemory`.
    pub oom_count: u64,
    /// Bytes requested across all successful allocations (pre-rounding).
    pub requested_bytes_total: u64,
}

impl MemStats {
    /// Peak utilization ratio: peak active / peak reserved, in `[0, 1]`.
    ///
    /// Returns 1.0 when nothing was ever reserved (an empty run wastes
    /// nothing).
    pub fn utilization(&self) -> f64 {
        if self.peak_reserved_bytes == 0 {
            1.0
        } else {
            self.peak_active_bytes as f64 / self.peak_reserved_bytes as f64
        }
    }

    /// Fragmentation ratio as defined by the paper: `1 − utilization`.
    pub fn fragmentation(&self) -> f64 {
        1.0 - self.utilization()
    }

    /// Number of allocations currently live.
    pub fn live_allocations(&self) -> u64 {
        self.alloc_count - self.free_count
    }

    /// Records a successful allocation of `size` bytes requested as
    /// `requested` bytes. Intended for allocator implementations.
    pub fn on_alloc(&mut self, requested: u64, size: u64) {
        self.alloc_count += 1;
        self.requested_bytes_total += requested;
        self.active_bytes += size;
        if self.active_bytes > self.peak_active_bytes {
            self.peak_active_bytes = self.active_bytes;
        }
    }

    /// Records a successful deallocation of `size` bytes.
    pub fn on_free(&mut self, size: u64) {
        debug_assert!(self.active_bytes >= size, "active accounting underflow");
        self.free_count += 1;
        self.active_bytes -= size;
    }

    /// Updates reserved bytes (cached + active physical memory).
    pub fn set_reserved(&mut self, reserved: u64) {
        self.reserved_bytes = reserved;
        if reserved > self.peak_reserved_bytes {
            self.peak_reserved_bytes = reserved;
        }
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "active {:.2} GiB (peak {:.2}), reserved {:.2} GiB (peak {:.2}), util {:.1}%",
            self.active_bytes as f64 / (1u64 << 30) as f64,
            self.peak_active_bytes as f64 / (1u64 << 30) as f64,
            self.reserved_bytes as f64 / (1u64 << 30) as f64,
            self.peak_reserved_bytes as f64 / (1u64 << 30) as f64,
            self.utilization() * 100.0
        )
    }
}

/// Post-rollback driver-fault residue counters, mirrored from the concrete
/// allocator's fault journal (GMLake's transactional recovery bookkeeping)
/// into the implementation-neutral API so profilers and snapshots can
/// surface orphan accounting without downcasting the core.
///
/// All counters are cumulative over the allocator's lifetime. A leak-free
/// allocator reports zero orphans; `failed_ops` alone merely counts faults
/// that were rolled back cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultJournalStats {
    /// Driver operations that faulted and were rolled back.
    pub failed_ops: u64,
    /// Virtual-address reservations the rollback could not return.
    pub orphan_vas: u64,
    /// Bytes of virtual address space held by orphaned reservations.
    pub orphan_va_bytes: u64,
    /// Physical chunks the rollback could not return to the device.
    pub orphan_chunks: u64,
}

impl FaultJournalStats {
    /// `true` when no rollback left residue behind (orphan counters zero).
    pub fn is_leak_free(&self) -> bool {
        self.orphan_vas == 0 && self.orphan_va_bytes == 0 && self.orphan_chunks == 0
    }
}

/// Difference between two snapshots, for per-phase accounting in the
/// replayer and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StatsDelta {
    /// Allocations performed in the window.
    pub allocs: u64,
    /// Deallocations performed in the window.
    pub frees: u64,
    /// Bytes requested in the window.
    pub requested_bytes: u64,
}

impl StatsDelta {
    /// Computes `now − before` over the monotone counters.
    pub fn between(before: &MemStats, now: &MemStats) -> Self {
        StatsDelta {
            allocs: now.alloc_count - before.alloc_count,
            frees: now.free_count - before.free_count,
            requested_bytes: now.requested_bytes_total - before.requested_bytes_total,
        }
    }

    /// Mean requested allocation size in the window (bytes); 0 if none.
    pub fn mean_request(&self) -> u64 {
        self.requested_bytes.checked_div(self.allocs).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_empty_stats_is_one() {
        let s = MemStats::default();
        assert_eq!(s.utilization(), 1.0);
        assert_eq!(s.fragmentation(), 0.0);
    }

    #[test]
    fn peaks_track_high_water_marks() {
        let mut s = MemStats::default();
        s.on_alloc(100, 128);
        s.set_reserved(256);
        s.on_alloc(50, 64);
        s.set_reserved(512);
        s.on_free(128);
        s.set_reserved(384);
        assert_eq!(s.active_bytes, 64);
        assert_eq!(s.peak_active_bytes, 192);
        assert_eq!(s.reserved_bytes, 384);
        assert_eq!(s.peak_reserved_bytes, 512);
        assert!((s.utilization() - 192.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn live_allocation_count() {
        let mut s = MemStats::default();
        s.on_alloc(1, 1);
        s.on_alloc(1, 1);
        s.on_free(1);
        assert_eq!(s.live_allocations(), 1);
    }

    #[test]
    fn delta_between_snapshots() {
        let mut s = MemStats::default();
        s.on_alloc(100, 128);
        let before = s;
        s.on_alloc(300, 384);
        s.on_alloc(100, 128);
        s.on_free(128);
        let d = StatsDelta::between(&before, &s);
        assert_eq!(d.allocs, 2);
        assert_eq!(d.frees, 1);
        assert_eq!(d.requested_bytes, 400);
        assert_eq!(d.mean_request(), 200);
    }

    #[test]
    fn display_mentions_utilization() {
        let mut s = MemStats::default();
        s.on_alloc(1 << 30, 1 << 30);
        s.set_reserved(2 << 30);
        assert!(s.to_string().contains("util 50.0%"));
    }
}
