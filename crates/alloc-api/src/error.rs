//! Error type shared by all allocators.

use std::error::Error;
use std::fmt;

use crate::types::AllocationId;

/// Errors returned by [`GpuAllocator`](crate::GpuAllocator) implementations.
///
/// Allocators must provide *strong exception safety*: a failed call leaves the
/// allocator and the device in the state they had before the call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The device cannot satisfy the request, even after the allocator
    /// released every cached block it could (the PyTorch `empty_cache` retry
    /// and GMLake's `StitchFree` fallback have already been attempted).
    OutOfMemory {
        /// Bytes the caller asked for.
        requested: u64,
        /// Bytes currently reserved by this allocator (cached + active).
        reserved: u64,
        /// Total device capacity in bytes.
        capacity: u64,
    },
    /// A zero-byte allocation was requested.
    ZeroSize,
    /// `deallocate` was called with an identifier that is not live.
    UnknownAllocation(AllocationId),
    /// An allocator was constructed from an invalid configuration (e.g. a
    /// [`DeviceAllocatorConfig`](crate::DeviceAllocatorConfig) with zero
    /// streams). Carries a human-readable description of the offending knob.
    InvalidConfig(String),
    /// The underlying driver rejected an operation; carries the driver's
    /// rendered message. This indicates a bug in the allocator, not a
    /// recoverable condition.
    Driver(String),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                reserved,
                capacity,
            } => write!(
                f,
                "out of memory: requested {} bytes, reserved {} of {} capacity",
                requested, reserved, capacity
            ),
            AllocError::ZeroSize => write!(f, "zero-size allocation is not allowed"),
            AllocError::UnknownAllocation(id) => {
                write!(f, "unknown or already-freed allocation {id}")
            }
            AllocError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AllocError::Driver(msg) => write!(f, "driver error: {msg}"),
        }
    }
}

impl Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AllocError::OutOfMemory {
            requested: 100,
            reserved: 50,
            capacity: 120,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("50"));
        assert!(s.contains("120"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<AllocError>();
    }

    #[test]
    fn unknown_allocation_names_the_id() {
        let e = AllocError::UnknownAllocation(AllocationId::new(9));
        assert!(e.to_string().contains("alloc#9"));
    }

    #[test]
    fn invalid_config_carries_the_description() {
        let e = AllocError::InvalidConfig("streams must be >= 1".to_owned());
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.to_string().contains("streams"));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(AllocError::ZeroSize);
        assert!(e.source().is_none());
    }
}
