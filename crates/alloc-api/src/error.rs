//! Error type shared by all allocators.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::types::AllocationId;

/// Errors returned by [`GpuAllocator`](crate::GpuAllocator) implementations.
///
/// Allocators must provide *strong exception safety*: a failed call leaves the
/// allocator and the device in the state they had before the call.
#[derive(Debug, Clone)]
pub enum AllocError {
    /// The device cannot satisfy the request, even after the allocator
    /// released every cached block it could (the PyTorch `empty_cache` retry
    /// and GMLake's `StitchFree` fallback have already been attempted).
    OutOfMemory {
        /// Bytes the caller asked for.
        requested: u64,
        /// Bytes currently reserved by this allocator (cached + active).
        reserved: u64,
        /// Total device capacity in bytes.
        capacity: u64,
    },
    /// A zero-byte allocation was requested.
    ZeroSize,
    /// `deallocate` was called with an identifier that is not live.
    UnknownAllocation(AllocationId),
    /// An allocator was constructed from an invalid configuration (e.g. a
    /// [`DeviceAllocatorConfig`](crate::DeviceAllocatorConfig) with zero
    /// streams). Carries a human-readable description of the offending knob.
    InvalidConfig(String),
    /// The underlying driver rejected an operation; carries the driver's
    /// rendered message. This indicates a bug in the allocator, not a
    /// recoverable condition.
    Driver(String),
    /// A tenant-scoped allocation would push the tenant past its byte
    /// quota. Emitted by multi-tenant front-ends (the `gmlake-serving`
    /// crate) *before* the device is consulted, so one tenant exhausting
    /// its budget never manifests as a device-level
    /// [`AllocError::OutOfMemory`] for everyone else. Recoverable: the
    /// tenant can free memory and retry, or the caller can shed load.
    QuotaExceeded {
        /// Opaque tenant identifier (the serving layer's `TenantId`).
        tenant: u64,
        /// Bytes the tenant asked for.
        requested: u64,
        /// Bytes the tenant currently has live.
        used: u64,
        /// The tenant's byte quota.
        quota: u64,
    },
    /// A driver call failed mid-operation and the allocator rolled the
    /// operation back transactionally: partial create/map work was
    /// unwound, the allocator's invariants hold, and the request simply
    /// was not served. Unlike [`AllocError::Driver`], this is a
    /// *recoverable* condition — a retry (possibly after backoff, a cache
    /// flush, or with stitching disabled) is legitimate. The original
    /// driver error is preserved for [`Error::source`] chains.
    DriverFault {
        /// The allocator operation that failed (e.g. `"stitch"`,
        /// `"alloc_new_pblock"`).
        op: &'static str,
        /// The underlying driver error.
        source: Arc<dyn Error + Send + Sync>,
    },
}

impl AllocError {
    /// Builds a [`AllocError::DriverFault`] from any driver error type.
    pub fn driver_fault(op: &'static str, source: impl Error + Send + Sync + 'static) -> Self {
        AllocError::DriverFault {
            op,
            source: Arc::new(source),
        }
    }
}

/// Equality compares [`AllocError::DriverFault`] sources by rendered
/// message — the source is a type-erased trait object, and tests want
/// structural comparison of the rest of the enum to keep working.
impl PartialEq for AllocError {
    fn eq(&self, other: &Self) -> bool {
        use AllocError::*;
        match (self, other) {
            (
                OutOfMemory {
                    requested: r1,
                    reserved: v1,
                    capacity: c1,
                },
                OutOfMemory {
                    requested: r2,
                    reserved: v2,
                    capacity: c2,
                },
            ) => r1 == r2 && v1 == v2 && c1 == c2,
            (ZeroSize, ZeroSize) => true,
            (UnknownAllocation(a), UnknownAllocation(b)) => a == b,
            (InvalidConfig(a), InvalidConfig(b)) => a == b,
            (Driver(a), Driver(b)) => a == b,
            (
                QuotaExceeded {
                    tenant: t1,
                    requested: r1,
                    used: u1,
                    quota: q1,
                },
                QuotaExceeded {
                    tenant: t2,
                    requested: r2,
                    used: u2,
                    quota: q2,
                },
            ) => t1 == t2 && r1 == r2 && u1 == u2 && q1 == q2,
            (DriverFault { op: o1, source: s1 }, DriverFault { op: o2, source: s2 }) => {
                o1 == o2 && s1.to_string() == s2.to_string()
            }
            _ => false,
        }
    }
}

impl Eq for AllocError {}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                reserved,
                capacity,
            } => write!(
                f,
                "out of memory: requested {} bytes, reserved {} of {} capacity",
                requested, reserved, capacity
            ),
            AllocError::ZeroSize => write!(f, "zero-size allocation is not allowed"),
            AllocError::UnknownAllocation(id) => {
                write!(f, "unknown or already-freed allocation {id}")
            }
            AllocError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AllocError::Driver(msg) => write!(f, "driver error: {msg}"),
            AllocError::QuotaExceeded {
                tenant,
                requested,
                used,
                quota,
            } => write!(
                f,
                "tenant {} quota exceeded: requested {} bytes with {} of {} already used",
                tenant, requested, used, quota
            ),
            AllocError::DriverFault { op, source } => {
                write!(f, "driver fault during {op} (rolled back): {source}")
            }
        }
    }
}

impl Error for AllocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AllocError::DriverFault { source, .. } => {
                Some(source.as_ref() as &(dyn Error + 'static))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AllocError::OutOfMemory {
            requested: 100,
            reserved: 50,
            capacity: 120,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("50"));
        assert!(s.contains("120"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<AllocError>();
    }

    #[test]
    fn unknown_allocation_names_the_id() {
        let e = AllocError::UnknownAllocation(AllocationId::new(9));
        assert!(e.to_string().contains("alloc#9"));
    }

    #[test]
    fn invalid_config_carries_the_description() {
        let e = AllocError::InvalidConfig("streams must be >= 1".to_owned());
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.to_string().contains("streams"));
    }

    #[test]
    fn quota_exceeded_names_tenant_and_budget() {
        let e = AllocError::QuotaExceeded {
            tenant: 7,
            requested: 64,
            used: 90,
            quota: 128,
        };
        let s = e.to_string();
        assert!(s.contains("tenant 7"));
        assert!(s.contains("64"));
        assert!(s.contains("90"));
        assert!(s.contains("128"));
        assert_eq!(e.clone(), e);
        assert_ne!(
            e,
            AllocError::QuotaExceeded {
                tenant: 8,
                requested: 64,
                used: 90,
                quota: 128,
            }
        );
        assert_ne!(e, AllocError::ZeroSize);
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(AllocError::ZeroSize);
        assert!(e.source().is_none());
    }

    #[derive(Debug, PartialEq)]
    struct FakeDriverError(&'static str);

    impl fmt::Display for FakeDriverError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "fake driver says: {}", self.0)
        }
    }

    impl Error for FakeDriverError {}

    #[test]
    fn driver_fault_chains_its_source() {
        let e = AllocError::driver_fault("stitch", FakeDriverError("map failed"));
        assert!(e.to_string().contains("stitch"));
        assert!(e.to_string().contains("map failed"));
        let src = e.source().expect("fault carries a source");
        assert_eq!(src.to_string(), "fake driver says: map failed");
        assert!(src.downcast_ref::<FakeDriverError>().is_some());
    }

    #[test]
    fn driver_fault_equality_compares_op_and_message() {
        let a = AllocError::driver_fault("stitch", FakeDriverError("x"));
        let b = AllocError::driver_fault("stitch", FakeDriverError("x"));
        let c = AllocError::driver_fault("split", FakeDriverError("x"));
        let d = AllocError::driver_fault("stitch", FakeDriverError("y"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, AllocError::ZeroSize);
        // Clone shares the Arc'd source.
        assert_eq!(a.clone(), a);
    }
}
