//! Allocation requests and the handle returned for a live allocation.

use crate::types::{AllocTag, AllocationId, VirtAddr};

/// A request for device memory.
///
/// ```
/// use gmlake_alloc_api::{AllocRequest, AllocTag, mib};
///
/// let req = AllocRequest::new(mib(20)).with_tag(AllocTag::Gradient);
/// assert_eq!(req.tag, AllocTag::Gradient);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AllocRequest {
    /// Requested size in bytes (the tensor's logical size, before any
    /// allocator-internal rounding).
    pub size: u64,
    /// Telemetry tag; does not affect placement.
    pub tag: AllocTag,
}

impl AllocRequest {
    /// Creates a request for `size` bytes with the default tag.
    pub fn new(size: u64) -> Self {
        AllocRequest {
            size,
            tag: AllocTag::Unspecified,
        }
    }

    /// Sets the telemetry tag.
    #[must_use]
    pub fn with_tag(mut self, tag: AllocTag) -> Self {
        self.tag = tag;
        self
    }
}

impl From<u64> for AllocRequest {
    fn from(size: u64) -> Self {
        AllocRequest::new(size)
    }
}

/// A live allocation: the handle an allocator returns to the tensor layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Allocation {
    /// Identifier to pass to [`GpuAllocator::deallocate`](crate::GpuAllocator::deallocate).
    pub id: AllocationId,
    /// Device virtual address of the first byte. The full `size` bytes behind
    /// it are contiguous in the virtual address space (that is GMLake's whole
    /// point: physical backing may be stitched from non-contiguous chunks).
    pub va: VirtAddr,
    /// Usable size in bytes (≥ the requested size after rounding).
    pub size: u64,
    /// The size originally requested, before rounding.
    pub requested: u64,
}

impl Allocation {
    /// Returns bytes lost to size rounding for this allocation.
    pub fn rounding_waste(&self) -> u64 {
        self.size - self.requested
    }

    /// Returns the one-past-the-end virtual address.
    pub fn end(&self) -> VirtAddr {
        self.va.offset(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::mib;

    #[test]
    fn request_builder_sets_fields() {
        let r = AllocRequest::new(123).with_tag(AllocTag::Weight);
        assert_eq!(r.size, 123);
        assert_eq!(r.tag, AllocTag::Weight);
    }

    #[test]
    fn request_from_size() {
        let r: AllocRequest = mib(1).into();
        assert_eq!(r.size, mib(1));
        assert_eq!(r.tag, AllocTag::Unspecified);
    }

    #[test]
    fn allocation_waste_and_end() {
        let a = Allocation {
            id: AllocationId::new(1),
            va: VirtAddr::new(0x1000),
            size: 2048,
            requested: 2000,
        };
        assert_eq!(a.rounding_waste(), 48);
        assert_eq!(a.end(), VirtAddr::new(0x1000 + 2048));
    }
}
