//! Stream-completion events: the synchronization primitive behind safe
//! cross-stream block reuse.
//!
//! A block freed from a different stream than the one it was allocated on
//! cannot be reused until the freeing stream's in-flight work has finished
//! with it. CUDA expresses that with events (`cuEventRecord` /
//! `cuEventQuery`), and PyTorch's caching allocator records one on every
//! cross-stream free, re-pooling the block once the event completes. The
//! [`EventSource`] trait is this crate's abstraction of that primitive, so
//! the [`DeviceAllocator`](crate::DeviceAllocator) front-end can park a
//! cross-stream-freed block in a *pending ring* and promote it back to its
//! owning stream's free list — one shard lock, no core-mutex round trip —
//! as soon as its event reports completion.
//!
//! Two reference implementations live here for tests and benches:
//! [`ImmediateEvents`] (every event is already complete — streams that are
//! always caught up) and [`ManualEvents`] (completion is advanced
//! explicitly — deterministic pending→ready transitions). The simulated
//! CUDA driver (`gmlake-gpu-sim`'s `CudaDriver`) provides the
//! paper-faithful implementation: events ride the simulated clock and
//! per-stream completion frontiers, and every `record`/`query`/
//! `synchronize` is costed as a driver call.

use parking_lot::Mutex;

use crate::types::{EventId, StreamId};

/// A source of stream-completion events, the synchronization primitive the
/// [`DeviceAllocator`](crate::DeviceAllocator) uses to guard cross-stream
/// block reuse (CUDA's `cuEventRecord` / `cuEventQuery` /
/// `cuEventSynchronize`).
///
/// # Ordering contract
///
/// This trait carries the safety rules that make event-guarded reuse sound;
/// implementors and callers must uphold all of them:
///
/// * **Completion is monotone.** Once [`EventSource::query`] has returned
///   `true` for an event, it must return `true` forever; an event recorded
///   on a stream completes no earlier than every event previously recorded
///   on the same stream.
/// * **Record captures the stream's past, not its future.** An event
///   completes only after all work enqueued on `stream` *before* the
///   [`EventSource::record`] call has finished; work enqueued afterwards
///   must not delay it indefinitely being observed as complete.
/// * **`synchronize` blocks until completion.** After
///   [`EventSource::synchronize`] returns, [`EventSource::query`] on the
///   same event must return `true`.
/// * **No re-entry.** The allocator invokes these methods while holding one
///   of its internal shard locks, so an implementation must never call back
///   into the allocator (directly or via another thread it blocks on) —
///   doing so deadlocks. Treat an `EventSource` as a *leaf* in the lock
///   order: it may take its own internal locks but must acquire nothing
///   that can wait on an allocator lock.
/// * **Unknown events count as complete.** Callers may drop an [`EventId`]
///   without querying it to completion, and an implementation may garbage-
///   collect completed events; querying an id it no longer tracks must
///   return `true` (the conservative direction would wedge blocks forever,
///   the chosen direction merely re-enables reuse of a block whose event
///   was already observed complete).
pub trait EventSource: Send + Sync {
    /// Records an event on `stream`, returning its identifier. The event
    /// completes once all work enqueued on `stream` so far has finished.
    fn record(&self, stream: StreamId) -> EventId;

    /// Like [`EventSource::record`], but returns `None` when the event
    /// would already be complete at record time (the stream has no work in
    /// flight) — letting the caller skip tracking it entirely. The default
    /// conservatively records and returns `Some`; sources that can answer
    /// cheaply (the simulated driver knows its stream frontiers) override
    /// this, which is what lets a caught-up cross-stream free re-pool its
    /// block in one call instead of a record + query round trip.
    fn try_record(&self, stream: StreamId) -> Option<EventId> {
        Some(self.record(stream))
    }

    /// Polls `event` without blocking: `true` once it has completed (always
    /// `true` for an event this source no longer tracks).
    fn query(&self, event: EventId) -> bool;

    /// Blocks (in simulation: advances time) until `event` has completed.
    fn synchronize(&self, event: EventId);
}

/// An [`EventSource`] whose events are always already complete — the
/// behaviour of streams that never run ahead of the host.
///
/// Useful as the best-case reference in benches (cross-stream reuse with
/// zero event latency) and in tests that only exercise routing, not
/// pending→ready transitions.
///
/// ```
/// use gmlake_alloc_api::{EventSource, ImmediateEvents, StreamId};
/// let events = ImmediateEvents;
/// let ev = events.record(StreamId(3));
/// assert!(events.query(ev));
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct ImmediateEvents;

impl EventSource for ImmediateEvents {
    fn record(&self, _stream: StreamId) -> EventId {
        EventId::new(0)
    }

    fn try_record(&self, _stream: StreamId) -> Option<EventId> {
        None // every event is complete at record time
    }

    fn query(&self, _event: EventId) -> bool {
        true
    }

    fn synchronize(&self, _event: EventId) {}
}

/// An [`EventSource`] whose completion is advanced explicitly by the test
/// harness — the deterministic way to script pending→ready transitions.
///
/// Events complete along a single global timeline: identifiers are minted
/// sequentially and [`ManualEvents::complete_through`] marks every event up
/// to (and including) a given id complete. This is a *stronger* ordering
/// than a per-stream frontier (completing a later event completes all
/// earlier ones, across streams), which satisfies the monotonicity half of
/// the [`EventSource`] contract while keeping tests free of
/// stream-interleaving ambiguity.
///
/// ```
/// use gmlake_alloc_api::{EventSource, ManualEvents, StreamId};
/// let events = ManualEvents::new();
/// let ev = events.record(StreamId(1));
/// assert!(!events.query(ev), "nothing completed yet");
/// events.complete_all();
/// assert!(events.query(ev));
/// ```
#[derive(Debug, Default)]
pub struct ManualEvents {
    state: Mutex<ManualState>,
}

#[derive(Debug, Default)]
struct ManualState {
    /// Last minted event id (ids start at 1).
    recorded: u64,
    /// Every event with `id <= completed` has completed.
    completed: u64,
}

impl ManualEvents {
    /// Creates a source with no events recorded.
    pub fn new() -> Self {
        ManualEvents::default()
    }

    /// Marks every event recorded so far as complete.
    pub fn complete_all(&self) {
        let mut g = self.state.lock();
        g.completed = g.recorded;
    }

    /// Marks every event up to and including `event` as complete (no-op if
    /// that point has already been passed).
    pub fn complete_through(&self, event: EventId) {
        let mut g = self.state.lock();
        g.completed = g.completed.max(event.as_u64());
    }

    /// Number of recorded events that have not completed yet.
    pub fn pending(&self) -> u64 {
        let g = self.state.lock();
        g.recorded - g.completed
    }
}

impl EventSource for ManualEvents {
    fn record(&self, _stream: StreamId) -> EventId {
        let mut g = self.state.lock();
        g.recorded += 1;
        EventId::new(g.recorded)
    }

    fn query(&self, event: EventId) -> bool {
        event.as_u64() <= self.state.lock().completed
    }

    fn synchronize(&self, event: EventId) {
        // The host blocking on an event IS what completes it here: the
        // manual source has no background progress of its own.
        self.complete_through(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_events_are_always_complete() {
        let e = ImmediateEvents;
        let ev = e.record(StreamId(5));
        assert!(e.query(ev));
        e.synchronize(ev); // no-op, must not panic
    }

    #[test]
    fn manual_events_complete_in_order() {
        let e = ManualEvents::new();
        let a = e.record(StreamId(0));
        let b = e.record(StreamId(1));
        assert!(a < b, "ids are minted sequentially");
        assert_eq!(e.pending(), 2);
        assert!(!e.query(a) && !e.query(b));
        e.complete_through(a);
        assert!(e.query(a));
        assert!(!e.query(b), "later event still pending");
        assert_eq!(e.pending(), 1);
        e.complete_all();
        assert!(e.query(b));
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn manual_synchronize_forces_completion() {
        let e = ManualEvents::new();
        let a = e.record(StreamId(0));
        let b = e.record(StreamId(0));
        e.synchronize(b);
        assert!(
            e.query(a),
            "synchronizing a later event completes earlier ones"
        );
        assert!(e.query(b));
    }

    #[test]
    fn complete_through_never_regresses() {
        let e = ManualEvents::new();
        let a = e.record(StreamId(0));
        let b = e.record(StreamId(0));
        e.complete_through(b);
        e.complete_through(a); // lower watermark: must not un-complete b
        assert!(e.query(b));
    }

    #[test]
    fn try_record_default_records_while_immediate_skips() {
        let m = ManualEvents::new();
        let ev = m.try_record(StreamId(0));
        assert!(ev.is_some(), "the conservative default records an event");
        assert_eq!(m.pending(), 1);
        assert!(
            ImmediateEvents.try_record(StreamId(0)).is_none(),
            "always-complete sources report nothing to wait for"
        );
    }

    #[test]
    fn sources_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImmediateEvents>();
        assert_send_sync::<ManualEvents>();
    }
}
