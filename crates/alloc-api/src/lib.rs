//! Shared allocator interface for the GMLake reproduction.
//!
//! This crate defines the vocabulary that every allocator in the workspace
//! speaks: byte-size helpers, allocation identifiers and requests, memory
//! statistics, error types, and the [`GpuAllocator`] trait implemented by
//! * the native pass-through allocator (`gmlake-gpu-sim`),
//! * the PyTorch-style caching allocator (`gmlake-caching`), and
//! * the GMLake virtual-memory-stitching allocator (`gmlake-core`).
//!
//! The trait mirrors the narrow interface a deep-learning framework exposes to
//! its tensor layer: `allocate`, `deallocate`, plus the cache-management hooks
//! (`release_cached`, `iteration_boundary`) that PyTorch exposes as
//! `empty_cache()` and that GMLake uses to exploit training periodicity.
//!
//! # Example
//!
//! ```
//! use gmlake_alloc_api::{AllocRequest, AllocTag, mib};
//!
//! let req = AllocRequest::new(mib(96)).with_tag(AllocTag::Activation);
//! assert_eq!(req.size, 96 * 1024 * 1024);
//! ```

mod error;
mod request;
mod stats;
mod traits;
mod types;

pub use error::AllocError;
pub use request::{AllocRequest, Allocation};
pub use stats::{MemStats, StatsDelta};
pub use traits::{share, GpuAllocator, SharedAllocator};
pub use types::{
    gib, kib, mib, AllocTag, AllocationId, VirtAddr, BYTES_PER_GIB, BYTES_PER_KIB, BYTES_PER_MIB,
};
