//! Shared allocator interface for the GMLake reproduction.
//!
//! This crate defines the vocabulary that every allocator in the workspace
//! speaks: byte-size helpers, allocation identifiers and requests, memory
//! statistics, error types, and the two-layer allocator API:
//!
//! * [`AllocatorCore`] — the single-owner `&mut self` *backend* trait,
//!   implemented by the native pass-through allocator (`gmlake-gpu-sim`),
//!   the PyTorch-style caching allocator (`gmlake-caching`), and the GMLake
//!   virtual-memory-stitching allocator (`gmlake-core`);
//! * [`DeviceAllocator`] — the cloneable, `Send + Sync`, `&self`
//!   *front-end* that wraps any core and is the only type concurrent
//!   callers (the runtime's pool service, replayers, benches) speak to. It
//!   shards small allocation traffic into per-size-class free-list caches —
//!   partitioned per logical GPU stream ([`StreamId`]), with PyTorch's
//!   event-guarded cross-stream reuse rule (an [`EventSource`] turns
//!   cross-stream frees into pending-ring parks promoted on event
//!   completion; without one the conservative through-the-core rule
//!   applies) — so threads and streams never contend with each other or
//!   with stitch work.
//!
//! The trait mirrors the narrow interface a deep-learning framework exposes to
//! its tensor layer: `allocate`, `deallocate`, plus the cache-management hooks
//! (`release_cached`, `iteration_boundary`) that PyTorch exposes as
//! `empty_cache()` and that GMLake uses to exploit training periodicity.
//!
//! # Example
//!
//! ```
//! use gmlake_alloc_api::{AllocRequest, AllocTag, mib};
//!
//! let req = AllocRequest::new(mib(96)).with_tag(AllocTag::Activation);
//! assert_eq!(req.size, 96 * 1024 * 1024);
//! ```

#![warn(missing_docs)]

mod device;
mod error;
mod events;
mod request;
mod stats;
mod traits;
mod types;

pub use device::{
    DeviceAllocator, DeviceAllocatorConfig, DeviceCacheStats, MAX_SHARDS, MAX_STREAMS,
};
pub use error::AllocError;
pub use events::{EventSource, ImmediateEvents, ManualEvents};
pub use request::{AllocRequest, Allocation};
pub use stats::{FaultJournalStats, MemStats, StatsDelta};
pub use traits::AllocatorCore;
#[allow(deprecated)]
pub use traits::{share, GpuAllocator, SharedAllocator};
pub use types::{
    gib, kib, mib, AllocTag, AllocationId, EventId, StreamId, VirtAddr, BYTES_PER_GIB,
    BYTES_PER_KIB, BYTES_PER_MIB,
};
