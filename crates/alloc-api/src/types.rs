//! Fundamental value types: byte-size helpers, addresses, identifiers, tags.

use std::fmt;

/// Number of bytes in one KiB.
pub const BYTES_PER_KIB: u64 = 1024;
/// Number of bytes in one MiB.
pub const BYTES_PER_MIB: u64 = 1024 * 1024;
/// Number of bytes in one GiB.
pub const BYTES_PER_GIB: u64 = 1024 * 1024 * 1024;

/// Converts a KiB count to bytes.
///
/// ```
/// assert_eq!(gmlake_alloc_api::kib(4), 4096);
/// ```
#[inline]
pub const fn kib(n: u64) -> u64 {
    n * BYTES_PER_KIB
}

/// Converts a MiB count to bytes.
///
/// ```
/// assert_eq!(gmlake_alloc_api::mib(2), 2 * 1024 * 1024);
/// ```
#[inline]
pub const fn mib(n: u64) -> u64 {
    n * BYTES_PER_MIB
}

/// Converts a GiB count to bytes.
///
/// ```
/// assert_eq!(gmlake_alloc_api::gib(80), 80 * 1024 * 1024 * 1024);
/// ```
#[inline]
pub const fn gib(n: u64) -> u64 {
    n * BYTES_PER_GIB
}

/// A device virtual address, as handed to tensors.
///
/// Addresses are opaque: arithmetic is deliberately limited to offsetting,
/// which is what a framework needs to address into a tensor.
///
/// ```
/// use gmlake_alloc_api::VirtAddr;
/// let va = VirtAddr::new(0x7000_0000_0000);
/// assert_eq!(va.offset(16).as_u64(), 0x7000_0000_0010);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// A null (unmapped) address.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates an address from a raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw numeric address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Self {
        VirtAddr(self.0 + bytes)
    }

    /// Returns `true` if this is the null address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// Identifier of a live allocation, unique within one allocator instance.
///
/// Returned by [`GpuAllocator::allocate`](crate::GpuAllocator::allocate) and
/// consumed by [`GpuAllocator::deallocate`](crate::GpuAllocator::deallocate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AllocationId(u64);

impl AllocationId {
    /// Creates an identifier from a raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        AllocationId(raw)
    }

    /// Returns the raw numeric identifier.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AllocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc#{}", self.0)
    }
}

/// Identifies one logical GPU stream (execution queue) within a device.
///
/// Streams order the kernels that *use* memory: a block freed and
/// reallocated on the same stream is safe to reuse immediately (stream
/// order guarantees the old user finished before the new one starts), while
/// handing a block to a *different* stream requires synchronization.
/// PyTorch's caching allocator encodes this as per-stream pools with
/// event-guarded cross-stream reuse; the
/// [`DeviceAllocator`](crate::DeviceAllocator) front-end mirrors the rule
/// with per-stream cache partitions and a conservative
/// free-through-the-core path for cross-stream frees.
///
/// `StreamId(0)` is the default stream; every stream-oblivious entry point
/// (`allocate` / `deallocate`) runs on it.
///
/// ```
/// use gmlake_alloc_api::StreamId;
/// assert_eq!(StreamId::DEFAULT, StreamId(0));
/// assert_eq!(format!("{}", StreamId(3)), "stream3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreamId(pub u32);

impl StreamId {
    /// The default stream, used by every stream-oblivious call.
    pub const DEFAULT: StreamId = StreamId(0);

    /// Creates a stream identifier from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        StreamId(raw)
    }

    /// Returns the raw stream index.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// `true` for the default stream.
    #[inline]
    pub const fn is_default(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

impl From<u32> for StreamId {
    fn from(raw: u32) -> Self {
        StreamId(raw)
    }
}

/// Identifier of a recorded stream event, unique within one
/// [`EventSource`](crate::EventSource) instance.
///
/// An event is a marker dropped into a stream's work queue by
/// [`EventSource::record`](crate::EventSource::record): it *completes* once
/// every operation enqueued on that stream before the record has finished.
/// Identifiers are minted in record order and never reused, so they also
/// give a global happens-before timeline: within one stream, a later event
/// can only complete after an earlier one.
///
/// ```
/// use gmlake_alloc_api::EventId;
/// let ev = EventId::new(7);
/// assert_eq!(ev.as_u64(), 7);
/// assert_eq!(format!("{ev}"), "event#7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventId(u64);

impl EventId {
    /// Creates an identifier from a raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        EventId(raw)
    }

    /// Returns the raw numeric identifier.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

/// Semantic label of an allocation, used by the workload generator so that
/// traces stay interpretable and by tests to assert per-category accounting.
///
/// Tags never change allocator behaviour; they are telemetry only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AllocTag {
    /// No specific label.
    #[default]
    Unspecified,
    /// Model weights (parameters).
    Weight,
    /// Gradients of weights.
    Gradient,
    /// Optimizer state (e.g. Adam moments, master weights).
    OptimizerState,
    /// Forward activations.
    Activation,
    /// LoRA adapter matrices (low-rank A/B factors).
    LoraAdapter,
    /// Communication / ZeRO gather-scatter transients.
    Communication,
    /// Host-offload staging buffers.
    Staging,
    /// Scratch space for kernels (workspace).
    Workspace,
}

impl AllocTag {
    /// All tag values, useful for exhaustive per-tag accounting.
    pub const ALL: [AllocTag; 9] = [
        AllocTag::Unspecified,
        AllocTag::Weight,
        AllocTag::Gradient,
        AllocTag::OptimizerState,
        AllocTag::Activation,
        AllocTag::LoraAdapter,
        AllocTag::Communication,
        AllocTag::Staging,
        AllocTag::Workspace,
    ];

    /// Short human-readable name (fixed width friendly).
    pub fn name(self) -> &'static str {
        match self {
            AllocTag::Unspecified => "unspec",
            AllocTag::Weight => "weight",
            AllocTag::Gradient => "grad",
            AllocTag::OptimizerState => "optim",
            AllocTag::Activation => "activ",
            AllocTag::LoraAdapter => "lora",
            AllocTag::Communication => "comm",
            AllocTag::Staging => "stage",
            AllocTag::Workspace => "work",
        }
    }
}

impl fmt::Display for AllocTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_helpers_compose() {
        assert_eq!(kib(1), 1024);
        assert_eq!(mib(1), 1024 * kib(1));
        assert_eq!(gib(1), 1024 * mib(1));
        assert_eq!(gib(80), 80 * BYTES_PER_GIB);
    }

    #[test]
    fn virt_addr_offset_and_display() {
        let va = VirtAddr::new(0x1000);
        assert_eq!(va.offset(0x20).as_u64(), 0x1020);
        assert_eq!(format!("{va}"), "0x000000001000");
        assert!(!va.is_null());
        assert!(VirtAddr::NULL.is_null());
    }

    #[test]
    fn virt_addr_orders_numerically() {
        assert!(VirtAddr::new(1) < VirtAddr::new(2));
        assert_eq!(VirtAddr::from(7u64), VirtAddr::new(7));
    }

    #[test]
    fn allocation_id_roundtrip() {
        let id = AllocationId::new(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(format!("{id}"), "alloc#42");
    }

    #[test]
    fn tags_have_unique_names() {
        let mut names: Vec<&str> = AllocTag::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AllocTag::ALL.len());
    }

    #[test]
    fn tag_default_is_unspecified() {
        assert_eq!(AllocTag::default(), AllocTag::Unspecified);
    }

    #[test]
    fn stream_id_default_and_display() {
        assert_eq!(StreamId::default(), StreamId::DEFAULT);
        assert!(StreamId::DEFAULT.is_default());
        assert!(!StreamId::new(2).is_default());
        assert_eq!(StreamId::from(7u32).as_u32(), 7);
        assert_eq!(format!("{}", StreamId(1)), "stream1");
        assert!(StreamId(1) < StreamId(2));
    }
}
