//! The concurrent allocator front-end: a cloneable, `Send + Sync`
//! [`DeviceAllocator`] that wraps any [`AllocatorCore`] and shards small
//! allocation traffic away from the core's mutex.
//!
//! # Why a front-end?
//!
//! GMLake's promise is that defragmentation stays off the training critical
//! path — but a shared pool whose every operation funnels through one mutex
//! re-serializes the ranks at the allocator instead. The front-end splits
//! the traffic the way PyTorch's stream-aware caching allocator does:
//!
//! * **Small requests** (below the stitch threshold, 2 MiB by default) are
//!   served from N sharded per-size-class free-list caches, each guarded by
//!   its own lock. A request's size class picks its shard; the shard holds
//!   the class's free list, the live table of the ids it minted, and the
//!   statistics counters, so a warm allocate/deallocate pair costs exactly
//!   one short shard-lock acquisition each — threads working on different
//!   size classes never contend, and none of them ever waits behind stitch
//!   work.
//! * **Large / stitch requests** (at or above the threshold — the traffic
//!   GMLake exists for) are served from one *large bank* per stream: an
//!   exact-size, exact-stream hit costs one bank-lock acquisition, misses
//!   optimistically re-scan the bank while the core's commit-time mutex is
//!   contended, and cross-stream large frees take the same event guard as
//!   the small shards (see [`DeviceAllocatorConfig::max_cached_large_per_bank`]).
//! * **Cold misses** on either route fall back to the wrapped core behind
//!   a single mutex — the commit-time lock under which splits and stitches
//!   commit transactionally.
//!
//! # Stream-aware routing
//!
//! On top of the size-class sharding, the front-end partitions its cache by
//! **logical GPU stream** ([`StreamId`]): the shard array is organized as
//! one *bank* of size-class shards per configured stream
//! ([`DeviceAllocatorConfig::streams`], default 1), and
//! [`DeviceAllocator::alloc_on_stream`] routes a request to its stream's
//! bank. Warm allocations on different streams therefore never touch the
//! same lock — not even for identical sizes — which is what keeps
//! independent GPU streams from serializing at the allocator.
//!
//! Reuse follows PyTorch's event-guarded rule:
//!
//! * a free issued on the **same stream** the block was allocated on parks
//!   the block in that stream's free list for immediate reuse (stream order
//!   already guarantees the previous user finished);
//! * a **cross-stream** free ([`DeviceAllocator::free_on_stream`] with a
//!   different stream than the allocating one) never lands in a free list
//!   directly. When the front-end was built with an [`EventSource`]
//!   (see [`DeviceAllocator::with_config_and_events`]), the free **records
//!   an event on the freeing stream** and parks the block in the owning
//!   shard's *pending ring*; the allocation path and
//!   [`DeviceAllocator::process_events`] promote blocks whose events have
//!   completed back into the owning stream's free list — so a completed
//!   cross-stream block is reusable with one shard-lock acquisition instead
//!   of a core-mutex round trip. Without an event source (the default), the
//!   block is returned to the core, the conservative pre-event rule: it can
//!   only come back to *any* stream through the core mutex, a full
//!   synchronization point standing in for the event.
//!
//! Both halves of the rule compare **exact** [`StreamId`]s: every parked
//! block carries the stream that parked it, so even when distinct stream
//! ids fold onto the same bank (ids at or above the configured stream
//! count), an allocation only reuses a block its own stream parked —
//! another stream's block in the shared free list is simply skipped.
//!
//! [`DeviceAllocator::allocate`] / [`DeviceAllocator::deallocate`] are the
//! stream-oblivious entry points: they run on [`StreamId::DEFAULT`], so
//! single-stream callers see exactly the pre-stream behaviour (and pay no
//! extra cost — one bank is the PR 3 layout).
//!
//! Front-end ids encode their shard in the low bits (and live in the upper
//! half of the id space, disjoint from every core's sequential ids), so a
//! deallocation routes back to the owning shard — and thereby the owning
//! stream's bank — without any shared lookup.
//!
//! The cache is transparent: blocks parked in a shard remain "live" from
//! the core's perspective and are returned to it by [`DeviceAllocator::flush`]
//! (which [`DeviceAllocator::release_cached`], [`DeviceAllocator::compact`],
//! and the out-of-memory retry path run automatically), so defragmentation
//! and OOM rescue still see every cached byte.
//!
//! # Example
//!
//! ```
//! use gmlake_alloc_api::{AllocRequest, DeviceAllocator, kib};
//! # use gmlake_alloc_api::{AllocatorCore, AllocError, Allocation, AllocationId, MemStats, VirtAddr};
//! # #[derive(Default)]
//! # struct TestCore { next: u64, live: std::collections::HashMap<AllocationId, u64>, stats: MemStats }
//! # impl AllocatorCore for TestCore {
//! #     fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
//! #         if req.size == 0 { return Err(AllocError::ZeroSize); }
//! #         self.next += 1;
//! #         let id = AllocationId::new(self.next);
//! #         self.live.insert(id, req.size);
//! #         self.stats.on_alloc(req.size, req.size);
//! #         let r = self.stats.active_bytes;
//! #         self.stats.set_reserved(r);
//! #         Ok(Allocation { id, va: VirtAddr::new(self.next << 20), size: req.size, requested: req.size })
//! #     }
//! #     fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
//! #         let size = self.live.remove(&id).ok_or(AllocError::UnknownAllocation(id))?;
//! #         self.stats.on_free(size);
//! #         Ok(())
//! #     }
//! #     fn stats(&self) -> MemStats { self.stats }
//! #     fn name(&self) -> &'static str { "test-core" }
//! # }
//! let pool = DeviceAllocator::new(TestCore::default());
//! std::thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let pool = pool.clone();
//!         s.spawn(move || {
//!             for _ in 0..64 {
//!                 let a = pool.allocate(AllocRequest::new(kib(64 + t))).unwrap();
//!                 pool.deallocate(a.id).unwrap();
//!             }
//!         });
//!     }
//! });
//! let stats = pool.stats();
//! assert_eq!(stats.alloc_count, 4 * 64);
//! assert_eq!(stats.active_bytes, 0);
//! ```

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use gmlake_telemetry::{EventKind, PoolTelemetry};
use parking_lot::Mutex;

use crate::error::AllocError;
use crate::events::EventSource;
use crate::request::{AllocRequest, Allocation};
use crate::stats::MemStats;
use crate::traits::AllocatorCore;
use crate::types::{mib, AllocationId, EventId, StreamId, VirtAddr};

/// Front-end allocation ids live in the top half of the id space so they can
/// never collide with a core's sequential ids.
const FRONT_ID_BASE: u64 = 1 << 63;

/// Marks a front-end id as minted by the *large* route (the per-stream
/// large banks) rather than a small-path shard. Small ids never reach this
/// bit (`next_seq << shard_bits` stays far below 2^62), so the three id
/// spaces — core-sequential, front-end small, front-end large — are
/// disjoint and a free routes without any shared lookup.
const LARGE_ID_BIT: u64 = 1 << 62;

/// Smallest size class (bytes): requests below this round up to it.
const MIN_CLASS: u64 = 512;

/// Upper bound on [`DeviceAllocatorConfig::streams`] (1024). A power of two,
/// so any accepted value rounds up to at most the bound itself — the
/// power-of-two round-up at construction can never overflow.
pub const MAX_STREAMS: usize = 1 << 10;

/// Upper bound on [`DeviceAllocatorConfig::shards`] per bank (1024). With
/// [`MAX_STREAMS`] this caps the shard array at 2^20 entries, keeping the
/// `banks * shards` product far from overflow.
pub const MAX_SHARDS: usize = 1 << 10;

/// Multiply-shift hasher for the shard maps: every key is a `u64` (size
/// class or front-end id), so a single multiply + xor-shift beats the
/// default SipHash by a wide margin on the hot path.
#[derive(Default)]
struct U64MixHasher(u64);

impl Hasher for U64MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused on the hot path).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
}

type U64Map<V> = HashMap<u64, V, BuildHasherDefault<U64MixHasher>>;

/// Tuning knobs of the [`DeviceAllocator`] front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAllocatorConfig {
    /// Requests strictly below this size take the sharded fast path
    /// (default: 2 MiB, GMLake's stitch threshold — everything the stitching
    /// machinery would not touch anyway). `0` disables the fast path
    /// entirely, degenerating to the single-mutex behaviour of the old
    /// `SharedAllocator`; benches use this as the contention baseline.
    pub small_threshold: u64,
    /// Number of cache shards *per stream bank* (rounded up to a power of
    /// two, default 16).
    ///
    /// Must be in `1..=MAX_SHARDS`: [`DeviceAllocatorConfig::validate`]
    /// rejects values outside the range (surfaced by the `try_*`
    /// constructors as [`AllocError::InvalidConfig`]); the infallible
    /// constructors clamp via [`DeviceAllocatorConfig::normalized`].
    pub shards: usize,
    /// Maximum cached blocks per size class; overflowing frees go straight
    /// back to the core (default 64).
    pub max_cached_per_class: usize,
    /// Capacity of each shard's pending event ring (default 64) — the
    /// cross-stream-freed blocks that may wait on event completion per
    /// shard, **across all of the shard's size classes** (a coarser
    /// granularity than `max_cached_per_class`, which is per class).
    /// A full ring sends further cross-stream frees through the core
    /// fallback; `0` disables event parking entirely, restoring the
    /// conservative pre-event rule even when an
    /// [`EventSource`](crate::EventSource) is configured.
    pub pending_ring_cap: usize,
    /// Number of logical GPU streams to partition the cache for (rounded up
    /// to a power of two, default 1). Each stream gets its own bank of
    /// `shards` size-class shards, so warm allocations on different streams
    /// never share a lock. Stream ids at or above the configured count fold
    /// onto the existing banks (placement only: folded streams share locks
    /// and free lists, but every parked block is tagged with the exact
    /// [`StreamId`] that parked it, and both reuse and the cross-stream
    /// free guard compare exact ids — a folded stream never receives
    /// another stream's block except through the core mutex).
    ///
    /// Must be in `1..=MAX_STREAMS` (stream 0 is the default stream):
    /// [`DeviceAllocatorConfig::validate`] rejects values outside the
    /// range, and the fallible constructors
    /// ([`DeviceAllocator::try_with_config`],
    /// [`DeviceAllocator::try_from_boxed`]) surface that as
    /// [`AllocError::InvalidConfig`] instead of panicking; the infallible
    /// constructors clamp via [`DeviceAllocatorConfig::normalized`].
    pub streams: usize,
    /// Maximum blocks cached per *stream bank* on the large route (default
    /// 32). Requests at or above `small_threshold` are served from a
    /// per-stream large bank: an exact-size, exact-stream hit costs one
    /// bank-lock acquisition and never touches the core mutex, and a
    /// same-stream free parks its block in the bank up to this cap.
    /// Unlike `max_cached_per_class` this cap is per bank across all sizes
    /// (large sizes are few and big — a handful of parked multi-MiB blocks
    /// is already a lot of memory).
    ///
    /// `0` disables the large route entirely: every large allocation and
    /// free goes through the core mutex (the pre-PR 9 behaviour, and the
    /// single-mutex baseline `bench_pr9` compares against). Note
    /// `small_threshold == 0` also bypasses the large banks — that knob
    /// documents itself as degenerating to the single-mutex
    /// `SharedAllocator`, and the large cache would silently break that
    /// contract for the benches built on it.
    pub max_cached_large_per_bank: usize,
}

impl Default for DeviceAllocatorConfig {
    fn default() -> Self {
        DeviceAllocatorConfig {
            small_threshold: mib(2),
            shards: 16,
            max_cached_per_class: 64,
            pending_ring_cap: 64,
            streams: 1,
            max_cached_large_per_bank: 32,
        }
    }
}

impl DeviceAllocatorConfig {
    /// Sets the fast-path threshold (`0` disables the fast path).
    #[must_use]
    pub fn with_small_threshold(mut self, small_threshold: u64) -> Self {
        self.small_threshold = small_threshold;
        self
    }

    /// Sets the shard count (rounded up to a power of two at construction;
    /// see [`DeviceAllocatorConfig::shards`]). Values outside
    /// `1..=MAX_SHARDS` are invalid and are reported by
    /// [`DeviceAllocatorConfig::validate`] / the `try_*` constructors as
    /// [`AllocError::InvalidConfig`] — never a panic.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-size-class cache capacity.
    #[must_use]
    pub fn with_max_cached_per_class(mut self, max: usize) -> Self {
        self.max_cached_per_class = max;
        self
    }

    /// Sets the per-shard pending event ring capacity (`0` disables event
    /// parking; see [`DeviceAllocatorConfig::pending_ring_cap`]).
    #[must_use]
    pub fn with_pending_ring_cap(mut self, cap: usize) -> Self {
        self.pending_ring_cap = cap;
        self
    }

    /// Sets the stream count (rounded up to a power of two at construction;
    /// see [`DeviceAllocatorConfig::streams`]). Values outside
    /// `1..=MAX_STREAMS` are invalid and are reported by
    /// [`DeviceAllocatorConfig::validate`] / the `try_*` constructors as
    /// [`AllocError::InvalidConfig`] — never a panic.
    #[must_use]
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Sets the per-bank large-route cache capacity (`0` disables the
    /// large route; see
    /// [`DeviceAllocatorConfig::max_cached_large_per_bank`]).
    #[must_use]
    pub fn with_max_cached_large_per_bank(mut self, max: usize) -> Self {
        self.max_cached_large_per_bank = max;
        self
    }

    /// Checks the configuration for values no allocator can be built from.
    ///
    /// Every check here must have a repair in
    /// [`DeviceAllocatorConfig::normalized`] — the two functions are the
    /// strict and the forgiving face of the same rules, and the infallible
    /// constructors rely on `normalized()` output always validating.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidConfig`] if `streams` is 0 (there is always at
    /// least the default stream) or above [`MAX_STREAMS`], or if `shards`
    /// is 0 (every bank needs a shard) or above [`MAX_SHARDS`]. The upper
    /// bounds keep the power-of-two round-up and the `banks * shards`
    /// product at construction from overflowing — out-of-range values are
    /// an error here, never a panic.
    pub fn validate(&self) -> Result<(), AllocError> {
        if self.streams == 0 {
            return Err(AllocError::InvalidConfig(
                "streams must be >= 1 (stream 0 is the default stream)".to_owned(),
            ));
        }
        if self.streams > MAX_STREAMS {
            return Err(AllocError::InvalidConfig(format!(
                "streams must be <= {MAX_STREAMS} (got {})",
                self.streams
            )));
        }
        if self.shards == 0 {
            return Err(AllocError::InvalidConfig(
                "shards must be >= 1 (every stream bank needs a shard)".to_owned(),
            ));
        }
        if self.shards > MAX_SHARDS {
            return Err(AllocError::InvalidConfig(format!(
                "shards must be <= {MAX_SHARDS} (got {})",
                self.shards
            )));
        }
        Ok(())
    }

    /// Repairs every value [`DeviceAllocatorConfig::validate`] would
    /// reject (currently: `streams` and `shards` are clamped into
    /// `1..=MAX_STREAMS` / `1..=MAX_SHARDS`), so the result always
    /// validates. This is what the infallible constructors
    /// ([`DeviceAllocator::with_config`] / [`DeviceAllocator::from_boxed`])
    /// apply instead of erroring.
    #[must_use]
    pub fn normalized(mut self) -> Self {
        self.streams = self.streams.clamp(1, MAX_STREAMS);
        self.shards = self.shards.clamp(1, MAX_SHARDS);
        self
    }
}

/// A core allocation parked in (or in flight between) the shard caches.
#[derive(Debug, Clone, Copy)]
struct CachedBlock {
    /// The id the wrapped core knows this block by.
    core_id: AllocationId,
    va: VirtAddr,
    size: u64,
    /// The stream the block was allocated on — carried through the free
    /// lists so reuse can compare exact [`StreamId`]s. A free issued on the
    /// same stream may recycle the block in place, and a parked block is
    /// only ever handed back to that same stream; any other stream (even
    /// one folded onto the same bank) must receive it through the core
    /// mutex (the cross-stream reuse guard).
    stream: StreamId,
}

/// A live small allocation handed out under a front-end id.
#[derive(Debug, Clone, Copy)]
struct LiveSmall {
    block: CachedBlock,
    /// Size class of the original request — the free-list key the block
    /// returns to on deallocation.
    class: u64,
}

/// A cross-stream-freed block waiting in a shard's pending ring for its
/// event to complete before it may re-enter the owning stream's free list.
#[derive(Debug, Clone, Copy)]
struct PendingBlock {
    /// The parked block; `block.stream` is still the *owning* (allocating)
    /// stream — the only stream allowed to reuse it after promotion.
    block: CachedBlock,
    /// Free-list key the block is promoted under.
    class: u64,
    /// Event recorded on the *freeing* stream at free time: once it
    /// completes, that stream's in-flight work is done with the block.
    event: EventId,
    /// The freeing stream the event was recorded on. Events of one stream
    /// complete FIFO, so the promotion sweep queries at most one
    /// incomplete event per distinct freeing stream.
    freed_from: StreamId,
}

/// A live large allocation handed out under a front-end large id.
#[derive(Debug, Clone, Copy)]
struct LiveLarge {
    block: CachedBlock,
    /// The exact bytes the caller asked for — the free-list key the block
    /// returns to on deallocation. The large route reuses only on exact
    /// requested size (no class rounding above the stitch threshold), so
    /// the core's `requested` ledger needs no inflation correction.
    requested: u64,
}

/// A cross-stream-freed *large* block waiting in its bank's pending ring
/// for the freeing stream's event to complete (same guard as the small
/// path's [`PendingBlock`], keyed by requested size instead of class).
#[derive(Debug, Clone, Copy)]
struct LargePending {
    block: CachedBlock,
    /// Free-list key the block is promoted under (exact requested size).
    requested: u64,
    event: EventId,
    freed_from: StreamId,
}

/// One per-stream **large bank**: the front-end cache that takes warm
/// large/stitch traffic off the core mutex. One bank per stream bank, one
/// lock per bank — threads on different streams never share it, and a warm
/// exact-size hit or same-stream park costs one bank-lock acquisition with
/// zero core traffic.
///
/// Reuse is exact on `(requested size, StreamId)`: the stream tag is the
/// *original* id (folded streams share a bank for placement only), and
/// cross-stream frees go through the same event guard as the small shards
/// (pend in the ring, or record + synchronize before the core fallback).
///
/// `epoch` counts free-list inserts. The allocation miss path records it,
/// releases the bank lock, and — while the core commit lock is contended —
/// optimistically re-scans the bank whenever the epoch moved: a concurrent
/// free can satisfy the request more cheaply than a core split/stitch, and
/// an unchanged epoch makes the re-check O(1).
#[derive(Debug, Default)]
struct LargeBank {
    /// Free large blocks keyed by exact requested size.
    free: U64Map<Vec<CachedBlock>>,
    /// Front-end large id -> live allocation (this is what lets the free
    /// path know the *allocating* stream of a large block — the
    /// prerequisite for the cross-stream event guard).
    live: U64Map<LiveLarge>,
    /// Cross-stream-freed blocks waiting on event completion.
    pending: VecDeque<LargePending>,
    next_seq: u64,
    stats: ShardStats,
    /// Bumped on every free-list insert; see the type docs.
    epoch: u64,
}

impl LargeBank {
    /// Mints a fresh front-end large id owned by bank `index`: the bank
    /// index rides in the low bits, [`LARGE_ID_BIT`] marks the large route,
    /// and the top bit marks the id as front-end-minted.
    #[inline]
    fn mint(&mut self, index: usize, bank_bits: u32) -> u64 {
        self.next_seq += 1;
        FRONT_ID_BASE | LARGE_ID_BIT | (self.next_seq << bank_bits) | index as u64
    }

    /// Takes an exact-size block parked by exactly `stream`, if any.
    /// A drained stack stays in the map: the same size is about to be
    /// parked again on the warm cycle, and leaving the entry saves a hash
    /// remove + re-insert per hit (drains `clear()` the map wholesale).
    fn take(&mut self, requested: u64, stream: StreamId) -> Option<CachedBlock> {
        let stack = self.free.get_mut(&requested)?;
        let pos = stack.iter().rposition(|b| b.stream == stream)?;
        let block = stack.swap_remove(pos);
        self.stats.cached_bytes -= block.size;
        self.stats.cached_blocks -= 1;
        Some(block)
    }

    /// Parks `block` in the free list under `requested`, bumping the epoch.
    fn park(&mut self, block: CachedBlock, requested: u64) {
        self.stats.cached_bytes += block.size;
        self.stats.cached_blocks += 1;
        self.free.entry(requested).or_default().push(block);
        self.epoch += 1;
    }

    /// Moves every pending block whose event has completed into its free
    /// list; returns how many were promoted. Same FIFO-per-freeing-stream
    /// query discipline as [`Shard::promote_completed`].
    fn promote_completed(&mut self, events: &dyn EventSource) -> u64 {
        let mut promoted = 0;
        let mut stalled: Vec<StreamId> = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            let p = &self.pending[i];
            if stalled.contains(&p.freed_from) {
                i += 1;
                continue;
            }
            if events.query(p.event) {
                let p = self.pending.remove(i).expect("index checked");
                self.stats.pending_bytes -= p.block.size;
                self.stats.pending_blocks -= 1;
                self.stats.event_promotions += 1;
                self.park(p.block, p.requested);
                promoted += 1;
            } else {
                stalled.push(p.freed_from);
                i += 1;
            }
        }
        promoted
    }
}

/// Counters reconciling one shard's fast-path activity with the core's
/// `MemStats`. Guarded by the shard lock, so the hot path pays no atomic
/// read-modify-writes; [`DeviceAllocator::stats`] aggregates across shards.
///
/// A cache *hit* hands out a block the core still counts as active, and a
/// cached *free* parks a block the core never sees freed — these counters
/// carry the difference, so the aggregate stays exact whenever the pool is
/// quiescent (and a faithful snapshot under concurrency).
#[derive(Debug, Default, Clone, Copy)]
struct ShardStats {
    /// Allocations served from the cache (the core saw nothing).
    hits: u64,
    /// Fast-path allocations that fell through to the core.
    misses: u64,
    /// Frees absorbed by the fast path (the core saw nothing — yet).
    fast_frees: u64,
    /// Core-side deallocations performed for cache maintenance (flush,
    /// per-class overflow, and cross-stream fallbacks); each undoes the
    /// core-visible half of a free already counted in `fast_frees`.
    cache_returns: u64,
    /// Cross-stream frees that recorded an event and parked the block in
    /// the pending ring (the event-guarded fast path — no core traffic).
    cross_stream_parked: u64,
    /// Cross-stream frees returned to the core instead: no event source is
    /// configured, or the pending ring was full (a subset of
    /// `cache_returns`).
    cross_stream_fallback: u64,
    /// Pending-ring blocks promoted into a free list after their event
    /// completed.
    event_promotions: u64,
    /// Bytes requested by cache hits (the core never saw the requests).
    requested: u64,
    /// Bytes of size-class rounding the core recorded as "requested" on
    /// fast-path misses, subtracted back out of the aggregate.
    requested_inflation: u64,
    /// Bytes currently parked in this shard's free lists (active from the
    /// core's perspective, free from the caller's).
    cached_bytes: u64,
    /// Blocks currently parked in this shard's free lists.
    cached_blocks: u64,
    /// Bytes currently waiting in this shard's pending ring (also active
    /// from the core's perspective, freed from the caller's — but not yet
    /// reusable).
    pending_bytes: u64,
    /// Blocks currently waiting in this shard's pending ring.
    pending_blocks: u64,
}

impl ShardStats {
    /// Adds `s` into `self` field-wise (the aggregation step of
    /// [`DeviceAllocator::stats`] / [`DeviceAllocator::cache_stats`], also
    /// used to fold the large banks' counters into the same reconciliation).
    fn absorb(&mut self, s: &ShardStats) {
        self.hits += s.hits;
        self.misses += s.misses;
        self.fast_frees += s.fast_frees;
        self.cache_returns += s.cache_returns;
        self.cross_stream_parked += s.cross_stream_parked;
        self.cross_stream_fallback += s.cross_stream_fallback;
        self.event_promotions += s.event_promotions;
        self.requested += s.requested;
        self.requested_inflation += s.requested_inflation;
        self.cached_bytes += s.cached_bytes;
        self.cached_blocks += s.cached_blocks;
        self.pending_bytes += s.pending_bytes;
        self.pending_blocks += s.pending_blocks;
    }
}

/// One shard: the free lists of the size classes that hash here, the live
/// table of the front-end ids this shard minted, its id sequence, and its
/// statistics — everything one warm allocate or deallocate touches, behind
/// one lock.
#[derive(Debug, Default)]
struct Shard {
    free: U64Map<Vec<CachedBlock>>,
    live: U64Map<LiveSmall>,
    /// Cross-stream-freed blocks waiting for their event to complete (in
    /// record order — within one freeing stream, completion is FIFO).
    pending: VecDeque<PendingBlock>,
    next_seq: u64,
    stats: ShardStats,
}

impl Shard {
    /// Mints a fresh front-end id owned by shard `index`: the shard index
    /// rides in the low bits (so deallocation routes back here without any
    /// shared lookup) and the top bit marks the id as front-end-minted.
    #[inline]
    fn mint(&mut self, index: usize, shard_bits: u32) -> u64 {
        self.next_seq += 1;
        FRONT_ID_BASE | (self.next_seq << shard_bits) | index as u64
    }

    /// Moves every pending block whose event has completed into its class
    /// free list; returns how many were promoted. Called under the shard
    /// lock; `events` is a lock-order leaf (see the [`EventSource`]
    /// ordering contract), so querying while holding the lock is safe.
    ///
    /// Events recorded from one freeing stream complete in FIFO order (the
    /// [`EventSource`] monotonicity rule), so once one entry of a stream
    /// reports incomplete, later entries of the same stream are skipped
    /// without querying — a sweep costs at most one query per *distinct*
    /// freeing stream with work in flight, not one per ring entry.
    ///
    /// Promotion may transiently push a class list past
    /// `max_cached_per_class`; the overshoot is bounded by the ring's own
    /// cap and drains as the owner allocates (or at the next flush), so no
    /// class can hoard unboundedly.
    fn promote_completed(&mut self, events: &dyn EventSource) -> u64 {
        let mut promoted = 0;
        // Freeing streams already seen incomplete this sweep (ring-bounded,
        // so a linear scan beats any set).
        let mut stalled: Vec<StreamId> = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            let p = &self.pending[i];
            if stalled.contains(&p.freed_from) {
                i += 1;
                continue;
            }
            if events.query(p.event) {
                let p = self.pending.remove(i).expect("index checked");
                self.stats.pending_bytes -= p.block.size;
                self.stats.pending_blocks -= 1;
                self.stats.cached_bytes += p.block.size;
                self.stats.cached_blocks += 1;
                self.stats.event_promotions += 1;
                self.free.entry(p.class).or_default().push(p.block);
                promoted += 1;
            } else {
                stalled.push(p.freed_from);
                i += 1;
            }
        }
        promoted
    }
}

/// Point-in-time cache telemetry (see [`DeviceAllocator::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceCacheStats {
    /// Fast-path allocations served without touching the core mutex.
    pub hits: u64,
    /// Fast-path allocations that fell through to the core.
    pub misses: u64,
    /// Bytes currently parked in the shard free lists.
    pub cached_bytes: u64,
    /// Blocks currently parked in the shard free lists.
    pub cached_blocks: u64,
    /// Cross-stream frees that recorded an event and parked the block in a
    /// pending ring — the event-guarded fast path, which touched no core
    /// state (requires an [`EventSource`]; see
    /// [`DeviceAllocator::with_config_and_events`]).
    pub cross_stream_parked: u64,
    /// Cross-stream frees conservatively returned to the core: no event
    /// source is configured, or the owning shard's pending ring was full.
    /// (Before the event subsystem, *every* cross-stream free took this
    /// path — the counter formerly named `cross_stream_returns`.)
    pub cross_stream_fallback: u64,
    /// Bytes currently waiting in the pending rings (freed by their
    /// cross-stream callers, not yet reusable).
    pub pending_bytes: u64,
    /// Blocks currently waiting in the pending rings.
    pub pending_blocks: u64,
    /// Pending blocks promoted to a free list after their event completed
    /// (cumulative).
    pub event_promotions: u64,
    /// Number of cache shards (across all stream banks).
    pub shards: usize,
    /// Number of per-stream shard banks.
    pub streams: usize,
}

struct Inner {
    core: Mutex<Box<dyn AllocatorCore + Send>>,
    /// Backend name, captured at construction so `name()` never locks.
    name: &'static str,
    small_threshold: u64,
    max_cached_per_class: usize,
    /// Per-shard pending event ring capacity (0 = event parking disabled).
    pending_ring_cap: usize,
    /// Number of per-stream shard banks (power of two).
    stream_banks: usize,
    /// Size-class shards per bank (power of two); the `shards` slice holds
    /// `stream_banks * class_shards` entries, bank-major.
    class_shards: usize,
    /// Mask of the class-shard index within one bank (`class_shards - 1`).
    class_mask: u64,
    /// Mask of the *global* shard index — the low bits of a front-end id
    /// (`stream_banks * class_shards - 1`).
    shard_mask: u64,
    shard_bits: u32,
    shards: Box<[Mutex<Shard>]>,
    /// Per-bank cap of the large route (0 = large route disabled).
    max_cached_large_per_bank: usize,
    /// Bits the large-id sequence is shifted past (`log2(stream_banks)`).
    bank_bits: u32,
    /// One large bank per stream bank (see [`LargeBank`]).
    large_banks: Box<[Mutex<LargeBank>]>,
    /// Stream-completion event source backing the cross-stream reuse fast
    /// path; `None` keeps the conservative free-through-the-core rule.
    events: Option<Arc<dyn EventSource>>,
    /// Optional observability sink: sampled alloc/free latencies and shard
    /// hit/miss/park/promote trace records. `None` costs one branch.
    telemetry: Option<Arc<PoolTelemetry>>,
}

/// The concurrent allocator front-end: cloneable, `Send + Sync`, `&self` on
/// every call. See the source module docs in `device.rs` and the
/// repository's `docs/streams-and-events.md` for the routing design.
///
/// This is the only type the runtime, the workload replayers, the examples,
/// and the benches speak to when a pool is shared between threads; the
/// wrapped [`AllocatorCore`] stays single-owner behind the front-end.
///
/// `DeviceAllocator` also implements [`AllocatorCore`] itself (delegating to
/// the `&self` methods), so trait-generic code such as the sequential
/// replayer drives a shared pool unmodified.
#[derive(Clone)]
pub struct DeviceAllocator {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for DeviceAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceAllocator")
            .field("name", &self.inner.name)
            .field("shards", &self.inner.shards.len())
            .field("small_threshold", &self.inner.small_threshold)
            .finish_non_exhaustive()
    }
}

/// Rounds a small request up to its size class (the next power of two, at
/// least [`MIN_CLASS`]). Classing at allocation time guarantees every cached
/// block in a class is large enough for every request of that class.
#[inline]
fn size_class(size: u64) -> u64 {
    size.next_power_of_two().max(MIN_CLASS)
}

/// Fibonacci hash of a size class into a shard index.
#[inline]
fn class_shard_index(class: u64, mask: u64) -> usize {
    ((class.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) & mask) as usize
}

impl DeviceAllocator {
    /// Wraps `core` with the default [`DeviceAllocatorConfig`].
    pub fn new<A: AllocatorCore + Send + 'static>(core: A) -> Self {
        Self::with_config(core, DeviceAllocatorConfig::default())
    }

    /// Wraps `core` with an explicit configuration. Invalid values are
    /// repaired via [`DeviceAllocatorConfig::normalized`] (`streams` and
    /// `shards` are clamped into `1..=MAX_STREAMS` / `1..=MAX_SHARDS`); use
    /// [`DeviceAllocator::try_with_config`] for strict validation.
    pub fn with_config<A: AllocatorCore + Send + 'static>(
        core: A,
        config: DeviceAllocatorConfig,
    ) -> Self {
        Self::from_boxed(Box::new(core), config)
    }

    /// Like [`DeviceAllocator::with_config`], but rejects an invalid
    /// configuration instead of normalizing it.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidConfig`] — see [`DeviceAllocatorConfig::validate`].
    pub fn try_with_config<A: AllocatorCore + Send + 'static>(
        core: A,
        config: DeviceAllocatorConfig,
    ) -> Result<Self, AllocError> {
        Self::try_from_boxed(Box::new(core), config)
    }

    /// Wraps `core` with an explicit configuration **and** a
    /// stream-completion [`EventSource`], enabling the event-guarded
    /// cross-stream reuse fast path: a cross-stream free records an event
    /// and parks the block in a pending ring instead of round-tripping
    /// through the core mutex (see `docs/streams-and-events.md` and
    /// [`DeviceAllocator::process_events`]).
    ///
    /// The source must uphold the [`EventSource`] ordering contract — in
    /// particular it must never call back into this allocator. When the
    /// wrapped core sits on a simulated device, pass a clone of the same
    /// `CudaDriver` so event completion rides the device's clock and
    /// per-stream frontiers.
    ///
    /// Invalid configuration values are repaired via
    /// [`DeviceAllocatorConfig::normalized`], as in
    /// [`DeviceAllocator::with_config`].
    pub fn with_config_and_events<A: AllocatorCore + Send + 'static>(
        core: A,
        config: DeviceAllocatorConfig,
        events: Arc<dyn EventSource>,
    ) -> Self {
        Self::try_from_boxed_with_events(Box::new(core), config.normalized(), Some(events))
            .expect("normalized() repairs everything validate() rejects")
    }

    /// Wraps an already-boxed core (the registry path of `gmlake-runtime`).
    /// Invalid values are repaired via [`DeviceAllocatorConfig::normalized`]
    /// (`streams` and `shards` are clamped into `1..=MAX_STREAMS` /
    /// `1..=MAX_SHARDS`); use [`DeviceAllocator::try_from_boxed`] for
    /// strict validation.
    pub fn from_boxed(core: Box<dyn AllocatorCore + Send>, config: DeviceAllocatorConfig) -> Self {
        Self::try_from_boxed(core, config.normalized())
            .expect("normalized() repairs everything validate() rejects")
    }

    /// Like [`DeviceAllocator::from_boxed`], but rejects an invalid
    /// configuration instead of normalizing it.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidConfig`] — see [`DeviceAllocatorConfig::validate`].
    pub fn try_from_boxed(
        core: Box<dyn AllocatorCore + Send>,
        config: DeviceAllocatorConfig,
    ) -> Result<Self, AllocError> {
        Self::try_from_boxed_with_events(core, config, None)
    }

    /// The most general constructor: an already-boxed core, a strict
    /// configuration, and an optional [`EventSource`] enabling the
    /// event-guarded cross-stream reuse path (see
    /// [`DeviceAllocator::with_config_and_events`]; `None` keeps the
    /// conservative free-through-the-core rule).
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidConfig`] — see [`DeviceAllocatorConfig::validate`].
    pub fn try_from_boxed_with_events(
        core: Box<dyn AllocatorCore + Send>,
        config: DeviceAllocatorConfig,
        events: Option<Arc<dyn EventSource>>,
    ) -> Result<Self, AllocError> {
        Self::try_build(core, config, events, None)
    }

    /// Wraps an already-boxed core with an attached [`PoolTelemetry`] sink
    /// (disabled sinks cost one relaxed atomic load per call; see the
    /// `gmlake-telemetry` crate docs for the overhead model). Invalid
    /// configuration values are repaired via
    /// [`DeviceAllocatorConfig::normalized`], as in
    /// [`DeviceAllocator::from_boxed`].
    pub fn from_boxed_with_telemetry(
        core: Box<dyn AllocatorCore + Send>,
        config: DeviceAllocatorConfig,
        telemetry: Arc<PoolTelemetry>,
    ) -> Self {
        Self::try_build(core, config.normalized(), None, Some(telemetry))
            .expect("normalized() repairs everything validate() rejects")
    }

    /// The most general constructor: an already-boxed core, a strict
    /// configuration, an optional [`EventSource`] (see
    /// [`DeviceAllocator::with_config_and_events`]), and an optional
    /// [`PoolTelemetry`] sink fed by the alloc/free fast paths.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidConfig`] — see [`DeviceAllocatorConfig::validate`].
    pub fn try_build(
        core: Box<dyn AllocatorCore + Send>,
        config: DeviceAllocatorConfig,
        events: Option<Arc<dyn EventSource>>,
        telemetry: Option<Arc<PoolTelemetry>>,
    ) -> Result<Self, AllocError> {
        config.validate()?;
        let class_shards = config.shards.next_power_of_two();
        let stream_banks = config.streams.next_power_of_two();
        let total = stream_banks * class_shards;
        let name = core.name();
        Ok(DeviceAllocator {
            inner: Arc::new(Inner {
                core: Mutex::new(core),
                name,
                small_threshold: config.small_threshold,
                max_cached_per_class: config.max_cached_per_class,
                pending_ring_cap: config.pending_ring_cap,
                stream_banks,
                class_shards,
                class_mask: class_shards as u64 - 1,
                shard_mask: total as u64 - 1,
                shard_bits: total.trailing_zeros(),
                shards: (0..total).map(|_| Mutex::default()).collect(),
                max_cached_large_per_bank: config.max_cached_large_per_bank,
                bank_bits: stream_banks.trailing_zeros(),
                large_banks: (0..stream_banks).map(|_| Mutex::default()).collect(),
                events,
                telemetry,
            }),
        })
    }

    /// The attached telemetry sink, if any — enable it to start recording,
    /// and snapshot it to export what was recorded.
    pub fn telemetry(&self) -> Option<&Arc<PoolTelemetry>> {
        self.inner.telemetry.as_ref()
    }

    /// Global shard index of `(stream, class)`: the stream's bank (stream
    /// ids beyond the configured banks fold modulo — placement only; reuse
    /// still compares the exact [`StreamId`] tag on each parked block),
    /// then the class hash within the bank.
    #[inline]
    fn shard_index(&self, stream: StreamId, class: u64) -> usize {
        let bank = stream.as_u32() as usize & (self.inner.stream_banks - 1);
        bank * self.inner.class_shards + class_shard_index(class, self.inner.class_mask)
    }

    /// Allocates through the core mutex; on out-of-memory, returns the shard
    /// caches to the core and retries once (the core's own OOM fallbacks
    /// cannot reach blocks parked in the front-end).
    ///
    /// The retry runs even when this thread's own `flush()` found the shards
    /// empty: a concurrent flush may have drained the shards but not yet
    /// handed its blocks to the core, and the retry — sequenced after that
    /// flush's core deallocations by the core lock — is what rescues the
    /// allocation in that window. The extra attempt only costs time on the
    /// already-failing error path.
    fn core_allocate(&self, req: AllocRequest) -> Result<Allocation, AllocError> {
        let first = self.inner.core.lock().allocate(req);
        let Err(AllocError::OutOfMemory { .. }) = &first else {
            return first;
        };
        self.flush();
        self.inner.core.lock().allocate(req)
    }

    fn allocate_small(
        &self,
        req: AllocRequest,
        stream: StreamId,
        tel: Option<&PoolTelemetry>,
    ) -> Result<Allocation, AllocError> {
        let class = size_class(req.size);
        let index = self.shard_index(stream, class);
        let shard = &self.inner.shards[index];
        {
            let mut guard = shard.lock();
            let g = &mut *guard;
            // Only a block parked by this exact stream is a hit: distinct
            // StreamIds folded onto the same bank share the free lists for
            // placement, but a block must never move between streams without
            // passing through the core. Scanning from the back keeps the
            // common case (every entry is this stream's) at plain-pop cost;
            // mixed stacks only exist when ids fold onto one bank.
            let take = |g: &mut Shard| {
                g.free.get_mut(&class).and_then(|stack| {
                    let pos = stack.iter().rposition(|b| b.stream == stream)?;
                    Some(stack.swap_remove(pos))
                })
            };
            let mut hit = take(g);
            if hit.is_none() && !g.pending.is_empty() {
                // The free list came up empty, but a cross-stream-freed
                // block may be waiting on a completed event: promote and
                // rescan — still one shard-lock acquisition, no core mutex.
                if let Some(events) = &self.inner.events {
                    if g.promote_completed(&**events) > 0 {
                        hit = take(g);
                    }
                }
            }
            if let Some(block) = hit {
                g.stats.cached_bytes -= block.size;
                g.stats.cached_blocks -= 1;
                g.stats.hits += 1;
                g.stats.requested += req.size;
                let id = g.mint(index, self.inner.shard_bits);
                g.live.insert(id, LiveSmall { block, class });
                if let Some(t) = tel {
                    t.record(EventKind::ShardHit, class, stream.as_u32() as u64, 0);
                }
                return Ok(Allocation {
                    id: AllocationId::new(id),
                    va: block.va,
                    size: block.size,
                    requested: req.size,
                });
            }
            g.stats.misses += 1;
        }
        // Miss: allocate the whole class size from the core (no shard lock
        // held), so the block can later serve any request of the class. The
        // core records `class` as requested; `requested_inflation` subtracts
        // the rounding back out.
        if let Some(t) = tel {
            t.record(EventKind::ShardMiss, class, stream.as_u32() as u64, 0);
        }
        let core_alloc = self.core_allocate(AllocRequest::new(class).with_tag(req.tag))?;
        let block = CachedBlock {
            core_id: core_alloc.id,
            va: core_alloc.va,
            size: core_alloc.size,
            stream,
        };
        let mut guard = shard.lock();
        let g = &mut *guard;
        g.stats.requested_inflation += class - req.size;
        let id = g.mint(index, self.inner.shard_bits);
        g.live.insert(id, LiveSmall { block, class });
        Ok(Allocation {
            id: AllocationId::new(id),
            va: block.va,
            size: block.size,
            requested: req.size,
        })
    }

    /// The bank index `stream` folds onto (placement only — guard and
    /// affinity decisions always compare the exact [`StreamId`] tag).
    #[inline]
    fn bank_index(&self, stream: StreamId) -> usize {
        stream.as_u32() as usize & (self.inner.stream_banks - 1)
    }

    /// Serves a large (at-or-above-threshold) request from `stream`'s large
    /// bank. BestFit-style candidate selection runs entirely outside the
    /// core mutex:
    ///
    /// 1. **Hit** — an exact-size block parked by this exact stream (with a
    ///    promote-and-rescan of the bank's pending ring on a first miss)
    ///    is handed out under one short bank-lock acquisition; the core
    ///    mutex is never touched.
    /// 2. **Miss** — the request must go to the core (whose mutex is the
    ///    *commit-time lock*: splits and stitches commit transactionally
    ///    under it). While that lock is contended, the miss path
    ///    optimistically re-scans its bank whenever the bank `epoch` moved:
    ///    a block freed concurrently by this stream satisfies the request
    ///    cheaper than waiting to run a core split/stitch. The epoch check
    ///    makes each revalidation O(1) when nothing changed.
    ///
    /// The bank lock and the core lock are never held simultaneously.
    fn allocate_large(
        &self,
        req: AllocRequest,
        stream: StreamId,
        tel: Option<&PoolTelemetry>,
    ) -> Result<Allocation, AllocError> {
        let index = self.bank_index(stream);
        let bank = &self.inner.large_banks[index];
        let mut epoch_seen;
        {
            let mut guard = bank.lock();
            let g = &mut *guard;
            let mut hit = g.take(req.size, stream);
            if hit.is_none() && !g.pending.is_empty() {
                if let Some(events) = &self.inner.events {
                    if g.promote_completed(&**events) > 0 {
                        hit = g.take(req.size, stream);
                    }
                }
            }
            if let Some(block) = hit {
                return Ok(self.commit_large_hit(g, index, block, req.size, stream, tel));
            }
            g.stats.misses += 1;
            epoch_seen = g.epoch;
        }
        if let Some(t) = tel {
            t.record(EventKind::ShardMiss, req.size, stream.as_u32() as u64, 0);
        }
        // Optimistic selection against the commit-time lock: try the core
        // mutex without blocking; while someone else is committing, watch
        // the bank epoch for a concurrent free that makes the trip
        // unnecessary. Neither lock is ever held while taking the other.
        let first = loop {
            if let Some(mut core) = self.inner.core.try_lock() {
                break core.alloc_on_stream(req, stream);
            }
            {
                let mut guard = bank.lock();
                let g = &mut *guard;
                if g.epoch != epoch_seen {
                    epoch_seen = g.epoch;
                    if let Some(block) = g.take(req.size, stream) {
                        return Ok(self.commit_large_hit(g, index, block, req.size, stream, tel));
                    }
                }
            }
            std::thread::yield_now();
        };
        let core_alloc = match first {
            Err(AllocError::OutOfMemory { .. }) => {
                // Same rescue as `core_allocate`: hand every front-end
                // cache (small shards AND large banks) back to the core and
                // retry once behind a plain lock.
                self.flush();
                self.inner.core.lock().alloc_on_stream(req, stream)?
            }
            other => other?,
        };
        // A core-served large allocation carries the same `Alloc` event it
        // did when the route was disabled and every large request went
        // straight through the core mutex.
        if let Some(t) = tel {
            t.record(EventKind::Alloc, core_alloc.size, stream.as_u32() as u64, 0);
        }
        let block = CachedBlock {
            core_id: core_alloc.id,
            va: core_alloc.va,
            size: core_alloc.size,
            stream,
        };
        let mut guard = bank.lock();
        let g = &mut *guard;
        let id = g.mint(index, self.inner.bank_bits);
        g.live.insert(
            id,
            LiveLarge {
                block,
                requested: req.size,
            },
        );
        Ok(Allocation {
            id: AllocationId::new(id),
            va: block.va,
            size: block.size,
            requested: req.size,
        })
    }

    /// Books a large-bank cache hit under the bank lock: counters, fresh
    /// front-end id, live entry. (`LargeBank::take` already removed the
    /// block from the free list and its cached counters.)
    fn commit_large_hit(
        &self,
        g: &mut LargeBank,
        index: usize,
        block: CachedBlock,
        requested: u64,
        stream: StreamId,
        tel: Option<&PoolTelemetry>,
    ) -> Allocation {
        g.stats.hits += 1;
        g.stats.requested += requested;
        let id = g.mint(index, self.inner.bank_bits);
        g.live.insert(id, LiveLarge { block, requested });
        if let Some(t) = tel {
            t.record(EventKind::ShardHit, requested, stream.as_u32() as u64, 0);
        }
        Allocation {
            id: AllocationId::new(id),
            va: block.va,
            size: block.size,
            requested,
        }
    }

    /// Allocates memory for `req` (see [`AllocatorCore::allocate`] for the
    /// contract) on the default stream. Small requests take the sharded
    /// fast path; everything else goes to the wrapped core.
    pub fn allocate(&self, req: AllocRequest) -> Result<Allocation, AllocError> {
        self.alloc_on_stream(req, StreamId::DEFAULT)
    }

    /// Allocates memory for `req` on behalf of `stream`: small requests are
    /// served from the stream's own bank of size-class shards, so warm
    /// allocations on different streams never contend on a lock. Large
    /// requests go to the core mutex regardless of stream (the core is a
    /// full synchronization point).
    ///
    /// # Errors
    ///
    /// See [`AllocatorCore::allocate`].
    pub fn alloc_on_stream(
        &self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        if req.size == 0 {
            return Err(AllocError::ZeroSize);
        }
        // Telemetry gate: `None` when detached, disabled, or not sampled
        // this call — everything below then skips all telemetry work.
        let tel = match &self.inner.telemetry {
            Some(t) if t.hot_sample() => Some(&**t),
            _ => None,
        };
        let start = tel.map(|_| std::time::Instant::now());
        let result = if req.size < self.inner.small_threshold {
            self.allocate_small(req, stream, tel)
        } else if self.inner.small_threshold > 0 && self.inner.max_cached_large_per_bank > 0 {
            self.allocate_large(req, stream, tel)
        } else {
            // Large route disabled (`max_cached_large_per_bank == 0`), or
            // the whole fast path is off (`small_threshold == 0`, the
            // single-mutex degeneration the benches baseline against):
            // straight through the core mutex, core id handed out.
            let result = self.core_allocate(req);
            if let (Some(t), Ok(a)) = (tel, &result) {
                t.record(EventKind::Alloc, a.size, stream.as_u32() as u64, 0);
            }
            result
        };
        if let (Some(t), Some(start)) = (tel, start) {
            t.alloc_ns().record(start.elapsed().as_nanos() as u64);
        }
        result
    }

    /// Releases the allocation identified by `id` (see
    /// [`AllocatorCore::deallocate`]) from the default stream. Small
    /// allocations made on the default stream are parked in their size
    /// class's shard for reuse instead of being returned to the core.
    pub fn deallocate(&self, id: AllocationId) -> Result<(), AllocError> {
        self.free_on_stream(id, StreamId::DEFAULT)
    }

    /// Releases the allocation identified by `id`, where the free is issued
    /// from `stream`.
    ///
    /// The block always routes back to the shard that minted its id (its
    /// allocating stream's bank — the id's low bits name it, no shared
    /// lookup). What happens there depends on the freeing stream:
    ///
    /// * **same stream** as the allocation: the block is parked in the
    ///   stream's free list for immediate reuse;
    /// * **different stream**, with an [`EventSource`] configured: an event
    ///   is recorded on the freeing stream and the block waits in the
    ///   shard's pending ring; once the event completes it is promoted back
    ///   into the *owning* stream's free list (by the allocation path or
    ///   [`DeviceAllocator::process_events`]) — PyTorch's event-guarded
    ///   cross-stream reuse rule, with no core-mutex round trip. When the
    ///   freeing stream is already caught up
    ///   ([`EventSource::try_record`] reports the event complete), the
    ///   park + promote pair collapses into one step: the block re-pools
    ///   into the owner's free list immediately;
    /// * **different stream**, without an event source (or with the ring
    ///   full): the block is returned to the core instead — it can only be
    ///   handed out again through the core mutex, a full synchronization
    ///   point standing in for the event.
    ///
    /// # Errors
    ///
    /// See [`AllocatorCore::deallocate`].
    pub fn free_on_stream(&self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        let tel = match &self.inner.telemetry {
            Some(t) if t.hot_sample() => Some(&**t),
            _ => None,
        };
        let start = tel.map(|_| std::time::Instant::now());
        let result = self.free_on_stream_impl(id, stream, tel);
        if let (Some(t), Some(start)) = (tel, start) {
            t.free_ns().record(start.elapsed().as_nanos() as u64);
        }
        result
    }

    fn free_on_stream_impl(
        &self,
        id: AllocationId,
        stream: StreamId,
        tel: Option<&PoolTelemetry>,
    ) -> Result<(), AllocError> {
        let raw = id.as_u64();
        if raw < FRONT_ID_BASE {
            // A core-minted id (the large route or the whole fast path is
            // disabled, or the id is unknown): the core owns it. Core ids
            // and front-end ids live in disjoint halves of the id space,
            // so a double-freed front-end id can never alias a core
            // allocation.
            return self.inner.core.lock().deallocate(id);
        }
        if raw & LARGE_ID_BIT != 0 {
            return self.free_large(id, stream, tel);
        }
        // The minting shard rides in the id's low bits; its lock covers the
        // live entry, the class free list, and the stats in one acquisition.
        let shard = &self.inner.shards[(raw & self.inner.shard_mask) as usize];
        // A cross-stream fallback with an event source must synchronize the
        // freeing stream before the core may re-serve the block (same rule
        // as `drain_to_core`); carried out of the lock scope.
        let mut sync_before_core = None;
        let to_core = {
            let mut guard = shard.lock();
            let g = &mut *guard;
            let Some(entry) = g.live.remove(&raw) else {
                return Err(AllocError::UnknownAllocation(id));
            };
            g.stats.fast_frees += 1;
            if entry.block.stream != stream {
                // Cross-stream free: the block must not be reusable until
                // the freeing stream's in-flight work is done with it. With
                // an event source, record an event on the freeing stream
                // and park the block in the pending ring (promotion hands
                // it back to the OWNING stream once the event completes);
                // without one — or when the ring is full — fall back to the
                // return-through-the-core rule.
                if let Some(events) = &self.inner.events {
                    if g.pending.len() < self.inner.pending_ring_cap {
                        match events.try_record(stream) {
                            Some(event) => {
                                g.stats.cross_stream_parked += 1;
                                g.stats.pending_bytes += entry.block.size;
                                g.stats.pending_blocks += 1;
                                g.pending.push_back(PendingBlock {
                                    block: entry.block,
                                    class: entry.class,
                                    event,
                                    freed_from: stream,
                                });
                                if let Some(t) = tel {
                                    t.record(
                                        EventKind::CrossStreamPark,
                                        entry.class,
                                        stream.as_u32() as u64,
                                        entry.block.stream.as_u32() as u64,
                                    );
                                }
                                return Ok(());
                            }
                            None => {
                                // The event is already complete at record
                                // time (the freeing stream has nothing in
                                // flight): skip the ring and park straight
                                // into the OWNER's free list — the
                                // park+promote pair collapsed into one
                                // step, one event-source call total.
                                let stack = g.free.entry(entry.class).or_default();
                                if stack.len() < self.inner.max_cached_per_class {
                                    g.stats.cross_stream_parked += 1;
                                    g.stats.event_promotions += 1;
                                    g.stats.cached_bytes += entry.block.size;
                                    g.stats.cached_blocks += 1;
                                    stack.push(entry.block);
                                    if let Some(t) = tel {
                                        t.record(
                                            EventKind::CrossStreamPark,
                                            entry.class,
                                            stream.as_u32() as u64,
                                            entry.block.stream.as_u32() as u64,
                                        );
                                    }
                                    return Ok(());
                                }
                                // Free list at cap: overflow to the core.
                                // No synchronization owed — the stream is
                                // caught up.
                            }
                        }
                    } else {
                        // Ring full: the block goes to the core, but the
                        // model still owes the freeing stream a
                        // synchronization — record the event now (under
                        // the shard lock, the source is a lock-order
                        // leaf) and wait it out after the lock drops,
                        // before the core can re-serve the block.
                        sync_before_core = Some(events.record(stream));
                    }
                }
                // Without an event source the core round trip itself is
                // the stand-in for the event: the core mutex is a full
                // synchronization point (the PR 4 conservative rule).
                g.stats.cross_stream_fallback += 1;
                g.stats.cache_returns += 1;
                Some(entry.block)
            } else {
                if let Some(t) = tel {
                    t.record(EventKind::Free, entry.block.size, stream.as_u32() as u64, 0);
                }
                let cap = self.inner.max_cached_per_class;
                let stack = g.free.entry(entry.class).or_default();
                if stack.len() < cap {
                    stack.push(entry.block);
                    g.stats.cached_bytes += entry.block.size;
                    g.stats.cached_blocks += 1;
                    None
                } else if let Some(pos) = stack.iter().position(|b| b.stream != stream) {
                    // Cap reached, but a folded stream's block holds a slot
                    // this stream can never reuse: evict it to the core and
                    // park ours, so an idle foreign stream cannot wedge the
                    // warm path of every stream sharing the shard.
                    let evicted = stack.swap_remove(pos);
                    stack.push(entry.block);
                    g.stats.cached_bytes += entry.block.size;
                    g.stats.cached_bytes -= evicted.size;
                    g.stats.cache_returns += 1;
                    Some(evicted)
                } else {
                    g.stats.cache_returns += 1;
                    Some(entry.block)
                }
            }
        };
        if let Some(block) = to_core {
            if let (Some(event), Some(events)) = (sync_before_core, &self.inner.events) {
                events.synchronize(event);
            }
            self.inner
                .core
                .lock()
                .deallocate(block.core_id)
                .expect("front-end owns every cached block");
        }
        Ok(())
    }

    /// Releases a large allocation minted by [`DeviceAllocator::allocate_large`].
    /// The owning bank rides in the id's low bits. Same event-guard rule as
    /// the small shards, with the bank-wide cache cap:
    ///
    /// * **same stream**: park in the bank's free list (up to
    ///   `max_cached_large_per_bank`), else return to the core;
    /// * **cross-stream**, events configured: pend in the bank's ring, or
    ///   — when the freeing stream is caught up — collapse straight into
    ///   the owner's free list; a full ring (or full cache) records the
    ///   event and **synchronizes it after the bank lock drops, before the
    ///   core may re-serve the block** (the `drain_to_core` rule — this is
    ///   the guard large frees used to bypass entirely);
    /// * **cross-stream**, no events: conservative core fallback (the core
    ///   mutex is the synchronization point standing in for the event).
    fn free_large(
        &self,
        id: AllocationId,
        stream: StreamId,
        tel: Option<&PoolTelemetry>,
    ) -> Result<(), AllocError> {
        let raw = id.as_u64();
        let bank = &self.inner.large_banks[(raw as usize) & (self.inner.stream_banks - 1)];
        let cap = self.inner.max_cached_large_per_bank;
        let mut sync_before_core = None;
        let to_core = {
            let mut guard = bank.lock();
            let g = &mut *guard;
            let Some(entry) = g.live.remove(&raw) else {
                return Err(AllocError::UnknownAllocation(id));
            };
            g.stats.fast_frees += 1;
            if entry.block.stream != stream {
                // Cross-stream large free: the block must not be reusable
                // (by anyone, on any stream) until the freeing stream's
                // in-flight work is done with it.
                if let Some(events) = &self.inner.events {
                    if g.pending.len() < self.inner.pending_ring_cap
                        && (g.stats.cached_blocks as usize) < cap
                    {
                        match events.try_record(stream) {
                            Some(event) => {
                                g.stats.cross_stream_parked += 1;
                                g.stats.pending_bytes += entry.block.size;
                                g.stats.pending_blocks += 1;
                                g.pending.push_back(LargePending {
                                    block: entry.block,
                                    requested: entry.requested,
                                    event,
                                    freed_from: stream,
                                });
                                if let Some(t) = tel {
                                    t.record(
                                        EventKind::CrossStreamPark,
                                        entry.requested,
                                        stream.as_u32() as u64,
                                        entry.block.stream.as_u32() as u64,
                                    );
                                }
                                return Ok(());
                            }
                            None => {
                                // Caught-up freeing stream: park + promote
                                // collapse into one step.
                                g.stats.cross_stream_parked += 1;
                                g.stats.event_promotions += 1;
                                g.park(entry.block, entry.requested);
                                if let Some(t) = tel {
                                    t.record(
                                        EventKind::CrossStreamPark,
                                        entry.requested,
                                        stream.as_u32() as u64,
                                        entry.block.stream.as_u32() as u64,
                                    );
                                }
                                return Ok(());
                            }
                        }
                    }
                    // Ring or cache full: the block goes to the core, but
                    // the freeing stream is still owed a synchronization —
                    // record now (the source is a lock-order leaf), wait it
                    // out after the lock drops, before the core can
                    // re-serve the block.
                    sync_before_core = Some(events.record(stream));
                }
                g.stats.cross_stream_fallback += 1;
                g.stats.cache_returns += 1;
                Some(entry.block)
            } else {
                if let Some(t) = tel {
                    t.record(EventKind::Free, entry.block.size, stream.as_u32() as u64, 0);
                }
                if (g.stats.cached_blocks as usize) < cap {
                    g.park(entry.block, entry.requested);
                    None
                } else {
                    g.stats.cache_returns += 1;
                    Some(entry.block)
                }
            }
        };
        if let Some(block) = to_core {
            if let (Some(event), Some(events)) = (sync_before_core, &self.inner.events) {
                events.synchronize(event);
            }
            self.inner
                .core
                .lock()
                .deallocate(block.core_id)
                .expect("front-end owns every cached large block");
        }
        Ok(())
    }

    /// Drains the free lists **and pending rings** of `shards` and hands
    /// the blocks to the core; returns the bytes handed back.
    ///
    /// Pending blocks are drained even when their event has not completed:
    /// handing a block to the core is a full synchronization point (the
    /// core mutex serializes against every stream), so the event is
    /// [`synchronize`](EventSource::synchronize)d — after the shard locks
    /// are released, before the core sees the block — exactly as PyTorch
    /// synchronizes outstanding events when `empty_cache` reclaims
    /// cross-stream blocks. Defrag and OOM rescue therefore always see
    /// every cached byte, including not-yet-completed cross-stream blocks.
    fn drain_to_core(&self, shards: &[Mutex<Shard>]) -> u64 {
        let mut blocks: Vec<CachedBlock> = Vec::new();
        let mut pending_events: Vec<EventId> = Vec::new();
        for shard in shards {
            let mut guard = shard.lock();
            let g = &mut *guard;
            for stack in g.free.values_mut() {
                for block in stack.iter() {
                    g.stats.cache_returns += 1;
                    g.stats.cached_bytes -= block.size;
                    g.stats.cached_blocks -= 1;
                }
                blocks.append(stack);
            }
            while let Some(p) = g.pending.pop_front() {
                g.stats.cache_returns += 1;
                g.stats.pending_bytes -= p.block.size;
                g.stats.pending_blocks -= 1;
                pending_events.push(p.event);
                blocks.push(p.block);
            }
        }
        if blocks.is_empty() {
            return 0;
        }
        if let Some(events) = &self.inner.events {
            for event in pending_events {
                events.synchronize(event);
            }
        }
        let mut bytes = 0;
        let mut core = self.inner.core.lock();
        for block in &blocks {
            bytes += block.size;
            core.deallocate(block.core_id)
                .expect("front-end owns every cached block");
        }
        bytes
    }

    /// Large-bank counterpart of [`DeviceAllocator::drain_to_core`]: drains
    /// the free lists and pending rings of `banks`, synchronizes the
    /// pending events after the bank locks drop, and hands every block to
    /// the core; returns the bytes handed back.
    fn drain_large_to_core(&self, banks: &[Mutex<LargeBank>]) -> u64 {
        let mut blocks: Vec<CachedBlock> = Vec::new();
        let mut pending_events: Vec<EventId> = Vec::new();
        for bank in banks {
            let mut guard = bank.lock();
            let g = &mut *guard;
            for stack in g.free.values_mut() {
                for block in stack.iter() {
                    g.stats.cache_returns += 1;
                    g.stats.cached_bytes -= block.size;
                    g.stats.cached_blocks -= 1;
                }
                blocks.append(stack);
            }
            g.free.clear();
            while let Some(p) = g.pending.pop_front() {
                g.stats.cache_returns += 1;
                g.stats.pending_bytes -= p.block.size;
                g.stats.pending_blocks -= 1;
                pending_events.push(p.event);
                blocks.push(p.block);
            }
        }
        if blocks.is_empty() {
            return 0;
        }
        if let Some(events) = &self.inner.events {
            for event in pending_events {
                events.synchronize(event);
            }
        }
        let mut bytes = 0;
        let mut core = self.inner.core.lock();
        for block in &blocks {
            bytes += block.size;
            core.deallocate(block.core_id)
                .expect("front-end owns every cached large block");
        }
        bytes
    }

    /// Sweeps every shard's pending ring, promoting each cross-stream-freed
    /// block whose event has completed into its owning stream's free list;
    /// returns how many blocks were promoted.
    ///
    /// The allocation path already promotes opportunistically (a free-list
    /// miss checks the shard's own ring before falling through to the
    /// core), so calling this is optional — it is the *proactive* sweep for
    /// natural synchronization points (iteration boundaries, scheduler
    /// ticks), keeping rings short when the owning stream goes idle. A
    /// no-op without an [`EventSource`].
    pub fn process_events(&self) -> u64 {
        let Some(events) = &self.inner.events else {
            return 0;
        };
        let mut promoted = 0;
        for shard in self.inner.shards.iter() {
            let mut guard = shard.lock();
            if !guard.pending.is_empty() {
                promoted += guard.promote_completed(&**events);
            }
        }
        for bank in self.inner.large_banks.iter() {
            let mut guard = bank.lock();
            if !guard.pending.is_empty() {
                promoted += guard.promote_completed(&**events);
            }
        }
        if promoted > 0 {
            if let Some(t) = &self.inner.telemetry {
                // A proactive sweep is rare (iteration boundaries), so it
                // is recorded whenever telemetry is on, not sampled.
                t.record(EventKind::EventPromotion, 0, promoted, 0);
            }
        }
        promoted
    }

    /// Returns every block parked in the shard caches — across **every**
    /// stream bank — to the wrapped core and reports the bytes handed back.
    /// The core decides what happens next (pool them, release them);
    /// flushing itself frees no physical memory.
    ///
    /// This is the flush the defrag/OOM paths run: defragmentation must see
    /// every cached byte, so it can never be scoped to one stream. Drains
    /// the large banks as well as the small shards.
    pub fn flush(&self) -> u64 {
        self.drain_to_core(&self.inner.shards) + self.drain_large_to_core(&self.inner.large_banks)
    }

    /// Returns the blocks parked in `stream`'s bank (only) to the wrapped
    /// core and reports the bytes handed back — the targeted variant of
    /// [`DeviceAllocator::flush`] for callers that want to retire one idle
    /// stream without disturbing the others' warm caches.
    ///
    /// **Folding caveat:** a stream id at or above the configured
    /// [`DeviceAllocatorConfig::streams`] count folds onto an existing bank
    /// (see the config docs), so this drains that *shared* bank — e.g.
    /// `flush_stream(StreamId(8))` on an 8-bank pool drains stream 0's
    /// warm cache too. Pass only configured stream ids when you want the
    /// flush to stay targeted.
    pub fn flush_stream(&self, stream: StreamId) -> u64 {
        let large = std::slice::from_ref(&self.inner.large_banks[self.bank_index(stream)]);
        self.drain_to_core(self.bank(stream)) + self.drain_large_to_core(large)
    }

    /// The slice of shards forming `stream`'s bank.
    #[inline]
    fn bank(&self, stream: StreamId) -> &[Mutex<Shard>] {
        let bank = stream.as_u32() as usize & (self.inner.stream_banks - 1);
        let n = self.inner.class_shards;
        &self.inner.shards[bank * n..(bank + 1) * n]
    }

    /// Sums the reconciliation counters of a slice of shards.
    fn sum_shards(shards: &[Mutex<Shard>]) -> ShardStats {
        let mut total = ShardStats::default();
        for shard in shards {
            total.absorb(&shard.lock().stats);
        }
        total
    }

    /// Sums the reconciliation counters of a slice of large banks.
    fn sum_large_banks(banks: &[Mutex<LargeBank>]) -> ShardStats {
        let mut total = ShardStats::default();
        for bank in banks {
            total.absorb(&bank.lock().stats);
        }
        total
    }

    /// Sums the per-shard reconciliation counters across every stream bank.
    fn shard_totals(&self) -> ShardStats {
        Self::sum_shards(&self.inner.shards)
    }

    /// Sums the large banks' reconciliation counters.
    fn large_totals(&self) -> ShardStats {
        Self::sum_large_banks(&self.inner.large_banks)
    }

    /// Memory statistics of the pool: the wrapped core's counters
    /// reconciled with the per-shard fast-path counters. Exact whenever the
    /// pool is quiescent; a faithful snapshot under concurrency.
    ///
    /// Blocks waiting in the pending rings count as *freed* here, exactly
    /// like blocks parked in the free lists: the caller relinquished them,
    /// only the event machinery still holds them back from reuse.
    ///
    /// Peak watermarks are measured at the core, so bytes parked in the
    /// shard caches count toward `peak_active_bytes` (an upper bound).
    pub fn stats(&self) -> MemStats {
        let mut fast = self.shard_totals();
        // The large banks reconcile through the same counters: a large hit
        // never reached the core (`hits`), a parked large free is freed
        // from the caller's view (`fast_frees` minus `cache_returns`), and
        // parked/pending large bytes are not active. The large route reuses
        // only on exact requested size, so `requested_inflation` stays 0 —
        // a block between selection and commit is counted exactly once
        // (live at the core, no longer cached here: `LargeBank::take`
        // removes it and its cached bytes under the same bank-lock
        // acquisition that books the hit).
        fast.absorb(&self.large_totals());
        let mut s = self.inner.core.lock().stats();
        s.alloc_count += fast.hits;
        s.free_count = (s.free_count + fast.fast_frees).saturating_sub(fast.cache_returns);
        s.requested_bytes_total =
            (s.requested_bytes_total + fast.requested).saturating_sub(fast.requested_inflation);
        s.active_bytes = s
            .active_bytes
            .saturating_sub(fast.cached_bytes + fast.pending_bytes);
        s
    }

    /// Projects summed shard counters into the public telemetry shape.
    fn cache_stats_of(fast: ShardStats, shards: usize, streams: usize) -> DeviceCacheStats {
        DeviceCacheStats {
            hits: fast.hits,
            misses: fast.misses,
            cached_bytes: fast.cached_bytes,
            cached_blocks: fast.cached_blocks,
            cross_stream_parked: fast.cross_stream_parked,
            cross_stream_fallback: fast.cross_stream_fallback,
            pending_bytes: fast.pending_bytes,
            pending_blocks: fast.pending_blocks,
            event_promotions: fast.event_promotions,
            shards,
            streams,
        }
    }

    /// Cache telemetry aggregated across every stream bank — small shards
    /// **and** large banks (see [`DeviceAllocator::large_cache_stats`] for
    /// the large route alone).
    pub fn cache_stats(&self) -> DeviceCacheStats {
        let mut fast = self.shard_totals();
        fast.absorb(&self.large_totals());
        Self::cache_stats_of(fast, self.inner.shards.len(), self.inner.stream_banks)
    }

    /// Cache telemetry of the large route only: the per-stream large banks'
    /// hits/misses, parked and pending blocks, and event-guard counters
    /// (`shards` reports the bank count). Empty unless requests at or above
    /// the threshold ran with `max_cached_large_per_bank > 0`.
    pub fn large_cache_stats(&self) -> DeviceCacheStats {
        Self::cache_stats_of(
            self.large_totals(),
            self.inner.large_banks.len(),
            self.inner.stream_banks,
        )
    }

    /// Cache telemetry of one stream's bank only (`shards` reports the
    /// bank's shard count, `streams` is 1). Includes the bank's pending-ring
    /// occupancy ([`DeviceCacheStats::pending_bytes`] /
    /// [`DeviceCacheStats::pending_blocks`]): cross-stream-freed blocks
    /// owned by this bank's streams that are still waiting on their event.
    ///
    /// **Folding caveat:** a stream id at or above the configured
    /// [`DeviceAllocatorConfig::streams`] count folds onto an existing bank
    /// (see the config docs), so the counters reported here are the shared
    /// bank's — they include activity from every stream folded onto it.
    pub fn stream_cache_stats(&self, stream: StreamId) -> DeviceCacheStats {
        let mut fast = Self::sum_shards(self.bank(stream));
        fast.absorb(&self.inner.large_banks[self.bank_index(stream)].lock().stats);
        Self::cache_stats_of(fast, self.inner.class_shards, 1)
    }

    /// Backend name, cached at construction (never takes a lock).
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// Forwards the iteration hint to the core (see
    /// [`AllocatorCore::iteration_boundary`]).
    pub fn iteration_boundary(&self) {
        self.inner.core.lock().iteration_boundary();
    }

    /// Flushes the shard caches into the core, then releases the core's
    /// cached memory (see [`AllocatorCore::release_cached`]). Returns the
    /// physical bytes released.
    pub fn release_cached(&self) -> u64 {
        self.flush();
        self.inner.core.lock().release_cached()
    }

    /// Flushes the shard caches into the core, then runs the core's
    /// proactive defrag pass (see [`AllocatorCore::compact`]). Returns the
    /// physical bytes released.
    pub fn compact(&self) -> u64 {
        self.flush();
        self.inner.core.lock().compact()
    }

    /// Instantaneous fragmentation ratio over the reconciled [`stats`]
    /// (bytes parked in shard caches count as reclaimable, not active).
    ///
    /// [`stats`]: DeviceAllocator::stats
    pub fn fragmentation(&self) -> f64 {
        let s = self.stats();
        if s.reserved_bytes == 0 {
            0.0
        } else {
            1.0 - s.active_bytes as f64 / s.reserved_bytes as f64
        }
    }

    /// Runs `f` with exclusive access to the wrapped core — the escape
    /// hatch for implementation-specific calls. The shard caches are *not*
    /// flushed first (call [`DeviceAllocator::flush`] if `f` needs to see
    /// every block); do not block inside `f`, every core-path caller waits.
    pub fn with_core<R>(&self, f: impl FnOnce(&mut dyn AllocatorCore) -> R) -> R {
        f(&mut **self.inner.core.lock())
    }

    /// Forwards [`AllocatorCore::set_stitch_enabled`] to the wrapped core.
    /// The shard caches are untouched — only the core's composition
    /// machinery is gated, so small-alloc fast paths stay warm while a
    /// circuit breaker holds stitching open.
    pub fn set_stitch_enabled(&self, enabled: bool) {
        self.inner.core.lock().set_stitch_enabled(enabled);
    }

    /// Forwards [`AllocatorCore::fault_journal_stats`] to the wrapped core
    /// without flushing the shard caches (journal counters live in the core
    /// and are unaffected by parked shard blocks).
    pub fn fault_journal_stats(&self) -> crate::stats::FaultJournalStats {
        self.inner.core.lock().fault_journal_stats()
    }

    /// Typed variant of [`DeviceAllocator::with_core`]: runs `f` on the
    /// wrapped core if it is a `T` (via [`AllocatorCore::as_any_mut`]),
    /// e.g. to read `GmLakeAllocator::state_counters` behind the
    /// type-erased front-end. Returns `None` when the core is not a `T`.
    pub fn with_core_as<T: AllocatorCore + 'static, R>(
        &self,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let mut guard = self.inner.core.lock();
        guard.as_any_mut()?.downcast_mut::<T>().map(f)
    }
}

/// `DeviceAllocator` is itself an [`AllocatorCore`] so trait-generic code
/// (the sequential replayer, ablation harnesses) can drive a shared pool;
/// every method delegates to the concurrent `&self` inherent API.
impl AllocatorCore for DeviceAllocator {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        DeviceAllocator::allocate(self, req)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        DeviceAllocator::deallocate(self, id)
    }

    fn alloc_on_stream(
        &mut self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        DeviceAllocator::alloc_on_stream(self, req, stream)
    }

    fn free_on_stream(&mut self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        DeviceAllocator::free_on_stream(self, id, stream)
    }

    fn stats(&self) -> MemStats {
        DeviceAllocator::stats(self)
    }

    fn name(&self) -> &'static str {
        DeviceAllocator::name(self)
    }

    fn iteration_boundary(&mut self) {
        DeviceAllocator::iteration_boundary(self)
    }

    fn process_events(&mut self) -> u64 {
        DeviceAllocator::process_events(self)
    }

    fn release_cached(&mut self) -> u64 {
        DeviceAllocator::release_cached(self)
    }

    fn compact(&mut self) -> u64 {
        DeviceAllocator::compact(self)
    }

    fn fragmentation(&self) -> f64 {
        DeviceAllocator::fragmentation(self)
    }

    fn set_stitch_enabled(&mut self, enabled: bool) {
        DeviceAllocator::set_stitch_enabled(self, enabled)
    }

    fn fault_journal_stats(&self) -> crate::stats::FaultJournalStats {
        DeviceAllocator::fault_journal_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ManualEvents;
    use std::collections::HashMap as StdHashMap;

    /// Test core with strict accounting and a bounded capacity.
    #[derive(Default)]
    struct TestCore {
        next: u64,
        live: StdHashMap<AllocationId, u64>,
        stats: MemStats,
        capacity: u64,
        released: u64,
    }

    impl TestCore {
        fn bounded(capacity: u64) -> Self {
            TestCore {
                capacity,
                ..TestCore::default()
            }
        }
    }

    impl AllocatorCore for TestCore {
        fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
            if req.size == 0 {
                return Err(AllocError::ZeroSize);
            }
            if self.capacity > 0 && self.stats.active_bytes + req.size > self.capacity {
                return Err(AllocError::OutOfMemory {
                    requested: req.size,
                    reserved: self.stats.reserved_bytes,
                    capacity: self.capacity,
                });
            }
            self.next += 1;
            let id = AllocationId::new(self.next);
            self.live.insert(id, req.size);
            self.stats.on_alloc(req.size, req.size);
            let r = self.stats.active_bytes;
            self.stats.set_reserved(r.max(self.stats.reserved_bytes));
            Ok(Allocation {
                id,
                va: VirtAddr::new(self.next << 24),
                size: req.size,
                requested: req.size,
            })
        }

        fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
            let size = self
                .live
                .remove(&id)
                .ok_or(AllocError::UnknownAllocation(id))?;
            self.stats.on_free(size);
            Ok(())
        }

        fn stats(&self) -> MemStats {
            self.stats
        }

        fn name(&self) -> &'static str {
            "test-core"
        }

        fn release_cached(&mut self) -> u64 {
            let r = self.stats.reserved_bytes - self.stats.active_bytes;
            self.released += r;
            let active = self.stats.active_bytes;
            self.stats.set_reserved(active);
            // set_reserved only raises the peak; force the current value.
            self.stats.reserved_bytes = active;
            r
        }
    }

    #[test]
    fn size_classes_round_up_to_powers_of_two() {
        assert_eq!(size_class(1), MIN_CLASS);
        assert_eq!(size_class(512), 512);
        assert_eq!(size_class(513), 1024);
        assert_eq!(size_class(mib(1)), mib(1));
        assert_eq!(size_class(mib(1) + 1), mib(2));
    }

    #[test]
    fn minted_ids_are_unique_and_route_back_to_their_shard() {
        let pool = DeviceAllocator::new(TestCore::default());
        let mask = pool.inner.shard_mask;
        let mut seen = std::collections::HashSet::new();
        for i in 0..200u64 {
            let size = 512 << (i % 8); // several classes, several shards
            let a = pool.allocate(AllocRequest::new(size)).unwrap();
            assert!(a.id.as_u64() >= FRONT_ID_BASE);
            assert!(seen.insert(a.id), "front-end ids are never reused");
            let class = size_class(size);
            assert_eq!(
                (a.id.as_u64() & mask) as usize,
                class_shard_index(class, mask),
                "the id's low bits name the minting shard"
            );
            pool.deallocate(a.id).unwrap();
        }
    }

    #[test]
    fn fast_path_reuses_blocks_without_touching_the_core() {
        let pool = DeviceAllocator::new(TestCore::default());
        let a = pool.allocate(AllocRequest::new(1000)).unwrap();
        assert!(a.size >= 1000);
        pool.deallocate(a.id).unwrap();
        // Same class: served from the shard cache — the core sees nothing.
        let b = pool.allocate(AllocRequest::new(900)).unwrap();
        assert_eq!(b.va, a.va, "the cached block was reused");
        assert!(b.size >= 900);
        assert_ne!(b.id, a.id, "front-end ids are never reused");
        pool.deallocate(b.id).unwrap();
        let cache = pool.cache_stats();
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.cached_blocks, 1);
        assert_eq!(pool.with_core(|c| c.stats().alloc_count), 1);
    }

    #[test]
    fn stats_reconcile_exactly_at_quiescence() {
        let pool = DeviceAllocator::new(TestCore::default());
        for _ in 0..5 {
            let a = pool.allocate(AllocRequest::new(700)).unwrap();
            pool.deallocate(a.id).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.alloc_count, 5);
        assert_eq!(s.free_count, 5);
        assert_eq!(s.active_bytes, 0);
        assert_eq!(s.requested_bytes_total, 5 * 700, "true requested bytes");
        // Flushing hands the cached block back to the core without
        // disturbing the caller-visible counters.
        assert_eq!(pool.flush(), 1024);
        let s = pool.stats();
        assert_eq!(s.alloc_count, 5);
        assert_eq!(s.free_count, 5);
        assert_eq!(s.active_bytes, 0);
        assert_eq!(pool.cache_stats().cached_blocks, 0);
    }

    #[test]
    fn double_free_of_a_front_end_id_is_reported() {
        let pool = DeviceAllocator::new(TestCore::default());
        let a = pool.allocate(AllocRequest::new(100)).unwrap();
        pool.deallocate(a.id).unwrap();
        assert_eq!(
            pool.deallocate(a.id).unwrap_err(),
            AllocError::UnknownAllocation(a.id)
        );
    }

    #[test]
    fn zero_size_rejected_without_locking_the_core() {
        let pool = DeviceAllocator::new(TestCore::default());
        let _hold = pool.inner.core.lock();
        // Must not deadlock: the zero-size check precedes any core access.
        assert_eq!(
            pool.allocate(AllocRequest::new(0)).unwrap_err(),
            AllocError::ZeroSize
        );
    }

    #[test]
    fn large_requests_bypass_the_shards() {
        // Large requests never touch the small size-class shards: they are
        // served by the per-stream large banks, under ids carrying
        // LARGE_ID_BIT, and a warm exact-size hit costs no core traffic.
        let pool = DeviceAllocator::new(TestCore::default());
        let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        assert!(a.id.as_u64() >= FRONT_ID_BASE, "front-end id handed out");
        assert_ne!(a.id.as_u64() & LARGE_ID_BIT, 0, "large-route id");
        assert_eq!(pool.cache_stats().misses, 1);
        pool.deallocate(a.id).unwrap();
        let large = pool.large_cache_stats();
        assert_eq!(large.cached_blocks, 1, "parked in the large bank");
        assert_eq!(pool.shard_totals().cached_blocks, 0, "shards untouched");
        assert_eq!(
            pool.deallocate(a.id).unwrap_err(),
            AllocError::UnknownAllocation(a.id),
            "large double-free detected by the bank's live table"
        );
        let b = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        assert_eq!(b.va, a.va, "exact-size reuse from the bank");
        assert_ne!(b.id, a.id, "front-end ids are never reused");
        assert_eq!(pool.with_core(|c| c.stats().alloc_count), 1, "one miss");
        pool.deallocate(b.id).unwrap();
        assert_eq!(pool.flush(), mib(8), "flush drains the large banks");
    }

    #[test]
    fn large_route_disabled_hands_out_core_ids() {
        // max_cached_large_per_bank == 0 is the single-mutex baseline: the
        // pre-PR 9 behaviour, and what bench_pr9 compares against.
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_max_cached_large_per_bank(0),
        );
        let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        assert!(a.id.as_u64() < FRONT_ID_BASE, "core id handed out");
        pool.deallocate(a.id).unwrap();
        assert_eq!(pool.large_cache_stats().cached_blocks, 0);
        assert_eq!(
            pool.deallocate(a.id).unwrap_err(),
            AllocError::UnknownAllocation(a.id),
            "large double-free detected by the core"
        );
    }

    #[test]
    fn cross_stream_large_free_waits_for_its_event_before_reuse() {
        // Satellite-1 regression pin: a large block freed on a
        // NON-allocating stream must not be reusable (by any path) until
        // the freeing stream's event completes — and once it is served
        // again, no event may still be outstanding.
        let (pool, events) = event_pool(u64::MAX);
        let a = pool
            .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        let large = pool.large_cache_stats();
        assert_eq!(large.cross_stream_parked, 1, "event recorded and parked");
        assert_eq!(large.pending_blocks, 1);
        assert_eq!(events.pending(), 1, "the guard event is outstanding");
        // The owner asks again while the event is incomplete: the bank must
        // NOT hand the block back; the request goes to the core instead.
        let b = pool
            .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(1))
            .unwrap();
        assert_ne!(b.va, a.va, "pending block must not be re-served");
        events.complete_all();
        let c = pool
            .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(1))
            .unwrap();
        assert_eq!(c.va, a.va, "promoted after completion and re-served");
        assert_eq!(events.pending(), 0, "no event outstanding before reuse");
        assert_eq!(pool.large_cache_stats().event_promotions, 1);
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
        pool.free_on_stream(c.id, StreamId(1)).unwrap();
    }

    #[test]
    fn cross_stream_large_fallback_synchronizes_before_the_core() {
        // Ring capacity 0 disables large event parking: the fallback must
        // still record an event on the freeing stream and synchronize it
        // before the core dealloc — the drain_to_core rule large frees
        // used to bypass entirely.
        let events = Arc::new(ManualEvents::new());
        let pool = DeviceAllocator::with_config_and_events(
            TestCore::default(),
            DeviceAllocatorConfig::default()
                .with_streams(2)
                .with_pending_ring_cap(0),
            events.clone(),
        );
        let a = pool
            .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        let large = pool.large_cache_stats();
        assert_eq!(large.cross_stream_fallback, 1, "fell back to the core");
        assert_eq!(
            events.pending(),
            0,
            "the guard event was recorded AND synchronized before the core \
             could re-serve the block"
        );
        assert_eq!(pool.with_core(|c| c.stats().free_count), 1);
    }

    #[test]
    fn folded_streams_large_path() {
        // Satellite-2 pin: streams folded onto the same bank (ids at or
        // above the configured stream count) share a bank for PLACEMENT
        // only. Affinity keys on the original StreamId — stream 5's parked
        // block is invisible to stream 1 even though both live in bank 1 —
        // and the cross-stream guard fires on original ids too.
        let (pool, events) = event_pool(u64::MAX); // 2 banks
        let a = pool
            .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(5))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(5)).unwrap(); // same stream: parks
        assert_eq!(pool.stream_cache_stats(StreamId(5)).cached_blocks, 1);
        // Stream 1 folds onto the same bank but must not receive 5's block.
        let b = pool
            .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(1))
            .unwrap();
        assert_ne!(b.va, a.va, "foreign folded block skipped");
        // A free of stream-1's block issued from stream 5 is cross-stream
        // (same bank, different original id): the event guard must fire.
        pool.free_on_stream(b.id, StreamId(5)).unwrap();
        let large = pool.large_cache_stats();
        assert_eq!(large.cross_stream_parked, 1, "guard keyed on original id");
        assert_eq!(events.pending(), 1);
        // Stream 5 still reuses its own block.
        let c = pool
            .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(5))
            .unwrap();
        assert_eq!(c.va, a.va, "affinity keyed on original id");
        pool.free_on_stream(c.id, StreamId(5)).unwrap();
        events.complete_all();
        pool.flush();
        assert_eq!(events.pending(), 0);
    }

    #[test]
    fn large_stats_reconcile_exactly_at_quiescence() {
        // Satellite-3 pin: hits, parked frees, and in-flight commits of the
        // large route never double-count as cached+active; at quiescence
        // the reconciled counters are exact.
        let pool = DeviceAllocator::new(TestCore::default());
        for _ in 0..5 {
            let a = pool.allocate(AllocRequest::new(mib(4))).unwrap();
            pool.deallocate(a.id).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.alloc_count, 5);
        assert_eq!(s.free_count, 5);
        assert_eq!(s.active_bytes, 0);
        assert_eq!(s.requested_bytes_total, 5 * mib(4), "exact requested");
        let large = pool.large_cache_stats();
        assert_eq!((large.hits, large.misses), (4, 1));
        assert_eq!(pool.flush(), mib(4));
        let s = pool.stats();
        assert_eq!(s.alloc_count, 5);
        assert_eq!(s.free_count, 5);
        assert_eq!(s.active_bytes, 0);
        assert_eq!(pool.large_cache_stats().cached_blocks, 0);
    }

    #[test]
    fn large_bank_cap_overflows_to_the_core() {
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_max_cached_large_per_bank(2),
        );
        let ids: Vec<_> = (0..4)
            .map(|_| pool.allocate(AllocRequest::new(mib(4))).unwrap().id)
            .collect();
        for id in ids {
            pool.deallocate(id).unwrap();
        }
        let large = pool.large_cache_stats();
        assert_eq!(large.cached_blocks, 2, "bank cap respected");
        assert_eq!(pool.with_core(|c| c.stats().free_count), 2, "2 overflowed");
        assert_eq!(pool.stats().active_bytes, 0);
    }

    #[test]
    fn large_oom_flushes_the_banks_and_retries() {
        // Capacity fits exactly one 4 MiB block: the parked large block
        // must be handed back to the core for the next allocation to
        // succeed (the flush-and-retry reaches the large banks).
        let pool = DeviceAllocator::new(TestCore::bounded(mib(4)));
        let a = pool.allocate(AllocRequest::new(mib(4))).unwrap();
        pool.deallocate(a.id).unwrap();
        assert_eq!(pool.large_cache_stats().cached_blocks, 1);
        let b = pool.allocate(AllocRequest::new(mib(3))).unwrap();
        assert_eq!(b.size, mib(3));
        pool.deallocate(b.id).unwrap();
        let s = pool.stats();
        assert_eq!(s.alloc_count, 2);
        assert_eq!(s.free_count, 2);
        assert_eq!(s.active_bytes, 0);
    }

    #[test]
    fn oom_flushes_the_shards_and_retries() {
        // Capacity fits exactly one 1 KiB class block. The cached block
        // must be handed back to the core for the second allocation to
        // succeed — the core alone could never free it.
        let pool = DeviceAllocator::new(TestCore::bounded(1024));
        let a = pool.allocate(AllocRequest::new(1000)).unwrap();
        pool.deallocate(a.id).unwrap();
        assert_eq!(pool.cache_stats().cached_blocks, 1);
        let b = pool.allocate(AllocRequest::new(600)).unwrap();
        assert!(b.size >= 600);
        pool.deallocate(b.id).unwrap();
        // 600 rounds to the 1024 class: the flush made room for it.
        let s = pool.stats();
        assert_eq!(s.alloc_count, 2);
        assert_eq!(s.free_count, 2);
        assert_eq!(s.active_bytes, 0);
    }

    #[test]
    fn per_class_cache_overflow_returns_to_the_core() {
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_max_cached_per_class(2),
        );
        let ids: Vec<_> = (0..4)
            .map(|_| pool.allocate(AllocRequest::new(800)).unwrap().id)
            .collect();
        for id in ids {
            pool.deallocate(id).unwrap();
        }
        assert_eq!(pool.cache_stats().cached_blocks, 2, "capped at 2");
        let s = pool.stats();
        assert_eq!(s.alloc_count, 4);
        assert_eq!(s.free_count, 4);
        assert_eq!(s.active_bytes, 0);
        assert_eq!(
            pool.with_core(|c| c.stats().live_allocations()),
            2,
            "only the cached blocks remain live in the core"
        );
    }

    #[test]
    fn release_cached_reaches_blocks_parked_in_shards() {
        let pool = DeviceAllocator::new(TestCore::default());
        let a = pool.allocate(AllocRequest::new(1024)).unwrap();
        pool.deallocate(a.id).unwrap();
        assert_eq!(pool.cache_stats().cached_bytes, 1024);
        let released = pool.release_cached();
        assert_eq!(released, 1024, "the parked block reached the device");
        assert_eq!(pool.cache_stats().cached_bytes, 0);
        assert_eq!(pool.stats().reserved_bytes, 0);
    }

    #[test]
    fn threshold_zero_disables_the_fast_path() {
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_small_threshold(0),
        );
        let a = pool.allocate(AllocRequest::new(100)).unwrap();
        assert!(a.id.as_u64() < FRONT_ID_BASE);
        pool.deallocate(a.id).unwrap();
        let c = pool.cache_stats();
        assert_eq!((c.hits, c.misses, c.cached_blocks), (0, 0, 0));
    }

    #[test]
    fn front_end_is_send_sync_clone() {
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<DeviceAllocator>();
    }

    #[test]
    fn zero_streams_is_an_error_not_a_panic() {
        let cfg = DeviceAllocatorConfig::default().with_streams(0);
        assert!(matches!(
            cfg.validate(),
            Err(AllocError::InvalidConfig(msg)) if msg.contains("streams")
        ));
        let err = DeviceAllocator::try_with_config(TestCore::default(), cfg.clone()).unwrap_err();
        assert!(matches!(err, AllocError::InvalidConfig(_)));
        let err = DeviceAllocator::try_from_boxed(Box::new(TestCore::default()), cfg.clone())
            .unwrap_err();
        assert!(matches!(err, AllocError::InvalidConfig(_)));
        // The infallible constructors normalize instead of panicking.
        let pool = DeviceAllocator::with_config(TestCore::default(), cfg);
        assert_eq!(pool.cache_stats().streams, 1);
    }

    #[test]
    fn zero_shards_is_an_error_not_a_panic() {
        let cfg = DeviceAllocatorConfig::default().with_shards(0);
        assert!(matches!(
            cfg.validate(),
            Err(AllocError::InvalidConfig(msg)) if msg.contains("shards")
        ));
        let err = DeviceAllocator::try_with_config(TestCore::default(), cfg.clone()).unwrap_err();
        assert!(matches!(err, AllocError::InvalidConfig(_)));
        // The infallible constructors normalize instead of panicking.
        let pool = DeviceAllocator::with_config(TestCore::default(), cfg);
        assert_eq!(pool.cache_stats().shards, 1);
    }

    #[test]
    fn oversized_streams_or_shards_are_an_error_not_a_panic() {
        // usize::MAX would overflow next_power_of_two() (and the
        // banks * shards product) at construction — the bounds check must
        // catch it in validate(), upholding the "never a panic" contract.
        for cfg in [
            DeviceAllocatorConfig::default().with_streams(usize::MAX),
            DeviceAllocatorConfig::default().with_streams(MAX_STREAMS + 1),
            DeviceAllocatorConfig::default().with_shards(usize::MAX),
            DeviceAllocatorConfig::default().with_shards(MAX_SHARDS + 1),
        ] {
            assert!(matches!(cfg.validate(), Err(AllocError::InvalidConfig(_))));
            let err =
                DeviceAllocator::try_with_config(TestCore::default(), cfg.clone()).unwrap_err();
            assert!(matches!(err, AllocError::InvalidConfig(_)));
            // The infallible constructors clamp instead of panicking.
            let pool = DeviceAllocator::with_config(TestCore::default(), cfg);
            let c = pool.cache_stats();
            assert!(c.streams <= MAX_STREAMS && c.shards <= MAX_STREAMS * MAX_SHARDS);
        }
        // The bounds themselves are accepted.
        assert!(DeviceAllocatorConfig::default()
            .with_streams(MAX_STREAMS)
            .with_shards(MAX_SHARDS)
            .validate()
            .is_ok());
    }

    #[test]
    fn normalized_output_always_validates() {
        // The contract from_boxed relies on: whatever validate() rejects,
        // normalized() repairs.
        for cfg in [
            DeviceAllocatorConfig::default()
                .with_streams(0)
                .with_shards(0),
            DeviceAllocatorConfig::default()
                .with_streams(usize::MAX)
                .with_shards(usize::MAX),
        ] {
            assert!(cfg.validate().is_err());
            assert!(cfg.normalized().validate().is_ok());
        }
        let repaired = DeviceAllocatorConfig::default()
            .with_streams(0)
            .with_shards(0)
            .normalized();
        assert_eq!((repaired.streams, repaired.shards), (1, 1));
        let clamped = DeviceAllocatorConfig::default()
            .with_streams(usize::MAX)
            .with_shards(usize::MAX)
            .normalized();
        assert_eq!((clamped.streams, clamped.shards), (MAX_STREAMS, MAX_SHARDS));
    }

    #[test]
    fn stream_count_rounds_to_a_power_of_two_banks() {
        let pool = DeviceAllocator::try_with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default()
                .with_streams(3)
                .with_shards(4),
        )
        .unwrap();
        let c = pool.cache_stats();
        assert_eq!(c.streams, 4, "3 streams round up to 4 banks");
        assert_eq!(c.shards, 16, "4 banks x 4 class shards");
        assert_eq!(pool.stream_cache_stats(StreamId(1)).shards, 4);
    }

    #[test]
    fn same_class_different_streams_use_disjoint_shards() {
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_streams(4),
        );
        // Same size class on two streams: each bank minted its own id and
        // caches its own block.
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(0))
            .unwrap();
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        assert_ne!(
            a.id.as_u64() & pool.inner.shard_mask,
            b.id.as_u64() & pool.inner.shard_mask,
            "the id's low bits name different shards"
        );
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
        assert_eq!(pool.stream_cache_stats(StreamId(0)).cached_blocks, 1);
        assert_eq!(pool.stream_cache_stats(StreamId(1)).cached_blocks, 1);
        // Each stream reuses only its own cached block.
        let a2 = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(0))
            .unwrap();
        assert_eq!(a2.va, a.va, "stream 0 got stream 0's block back");
        pool.free_on_stream(a2.id, StreamId(0)).unwrap();
    }

    #[test]
    fn cross_stream_free_routes_through_the_core() {
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_streams(2),
        );
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        // Freed from stream 0: the block must NOT be parked for reuse.
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        let c = pool.cache_stats();
        assert_eq!(c.cached_blocks, 0, "cross-stream free never parks");
        assert_eq!(c.cross_stream_fallback, 1, "no event source: via the core");
        assert_eq!(c.cross_stream_parked, 0);
        assert_eq!(
            pool.with_core(|core| core.stats().live_allocations()),
            0,
            "the block went back to the core"
        );
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (1, 1, 0));
        // A fresh allocation on either stream misses (nothing was cached).
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(0))
            .unwrap();
        assert_eq!(pool.cache_stats().hits, 0);
        pool.free_on_stream(b.id, StreamId(0)).unwrap();
    }

    #[test]
    fn same_stream_free_on_a_nondefault_stream_parks_for_reuse() {
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_streams(2),
        );
        let a = pool
            .alloc_on_stream(AllocRequest::new(2048), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(1)).unwrap();
        assert_eq!(pool.stream_cache_stats(StreamId(1)).cached_blocks, 1);
        let b = pool
            .alloc_on_stream(AllocRequest::new(2048), StreamId(1))
            .unwrap();
        assert_eq!(b.va, a.va, "same-stream reuse hit the cache");
        assert_eq!(pool.cache_stats().hits, 1);
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
    }

    #[test]
    fn flush_and_flush_stream_cover_the_right_banks() {
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_streams(2),
        );
        for s in [StreamId(0), StreamId(1)] {
            let a = pool.alloc_on_stream(AllocRequest::new(1000), s).unwrap();
            pool.free_on_stream(a.id, s).unwrap();
        }
        assert_eq!(pool.cache_stats().cached_bytes, 2048);
        // Targeted flush: only stream 1's bank drains.
        assert_eq!(pool.flush_stream(StreamId(1)), 1024);
        assert_eq!(pool.stream_cache_stats(StreamId(1)).cached_bytes, 0);
        assert_eq!(pool.stream_cache_stats(StreamId(0)).cached_bytes, 1024);
        // Full flush reaches every remaining bank.
        assert_eq!(pool.flush(), 1024);
        assert_eq!(pool.cache_stats().cached_bytes, 0);
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (2, 2, 0));
    }

    #[test]
    fn oom_retry_flushes_every_streams_cache() {
        // Capacity fits exactly two 1 KiB class blocks; both end up parked,
        // one per stream. A 2 KiB-class allocation can only succeed if the
        // OOM retry flushes BOTH banks, not just the allocating stream's.
        let pool = DeviceAllocator::with_config(
            TestCore::bounded(2048),
            DeviceAllocatorConfig::default().with_streams(2),
        );
        for s in [StreamId(0), StreamId(1)] {
            let a = pool.alloc_on_stream(AllocRequest::new(1024), s).unwrap();
            pool.free_on_stream(a.id, s).unwrap();
        }
        assert_eq!(pool.cache_stats().cached_bytes, 2048);
        let big = pool
            .alloc_on_stream(AllocRequest::new(2048), StreamId(0))
            .unwrap();
        assert_eq!(big.size, 2048, "flush-across-streams rescued the request");
        assert_eq!(pool.cache_stats().cached_bytes, 0);
        pool.free_on_stream(big.id, StreamId(0)).unwrap();
    }

    #[test]
    fn streams_beyond_the_configured_banks_fold_but_stay_guarded() {
        // Placement folds stream 5 onto bank 1 (2 banks), but the reuse
        // guard compares exact StreamIds: stream 1 freeing stream 5's block
        // is cross-stream even though they share a bank.
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_streams(2),
        );
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(5))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(1)).unwrap();
        let c = pool.cache_stats();
        assert_eq!(c.cross_stream_fallback, 1);
        assert_eq!(c.cached_blocks, 0);
    }

    #[test]
    fn folded_streams_never_reuse_each_others_parked_blocks() {
        // Stream 5 folds onto bank 1 (2 banks) and parks a block there via a
        // same-stream free. Stream 1 shares that bank's free lists, but an
        // allocation on stream 1 must NOT be handed stream 5's block — a
        // block only moves between streams through the core mutex.
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_streams(2),
        );
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(5))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(5)).unwrap();
        assert_eq!(pool.cache_stats().cached_blocks, 1, "parked in bank 1");
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        assert_ne!(b.va, a.va, "stream 1 must not get stream 5's block");
        let c = pool.cache_stats();
        assert_eq!(c.hits, 0, "the mismatched block is a miss, not a hit");
        assert_eq!(c.cached_blocks, 1, "stream 5's block stays parked");
        // Stream 5 itself still reuses its own block.
        let a2 = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(5))
            .unwrap();
        assert_eq!(a2.va, a.va, "stream 5 got its own block back");
        assert_eq!(pool.cache_stats().hits, 1);
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
        pool.free_on_stream(a2.id, StreamId(5)).unwrap();
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (3, 3, 0));
    }

    #[test]
    fn foreign_blocks_at_cap_are_evicted_not_wedged() {
        // Stream 5 folds onto bank 1 (2 banks) and fills the class cache to
        // its cap, then goes idle. Stream 1 shares that shard: its frees
        // must evict the foreign blocks (to the core) rather than overflow
        // forever, so the warm path recovers instead of staying wedged.
        let pool = DeviceAllocator::with_config(
            TestCore::default(),
            DeviceAllocatorConfig::default()
                .with_streams(2)
                .with_max_cached_per_class(2),
        );
        let foreign: Vec<_> = (0..2)
            .map(|_| {
                pool.alloc_on_stream(AllocRequest::new(1024), StreamId(5))
                    .unwrap()
                    .id
            })
            .collect();
        for id in foreign {
            pool.free_on_stream(id, StreamId(5)).unwrap();
        }
        assert_eq!(
            pool.cache_stats().cached_blocks,
            2,
            "cap filled by stream 5"
        );
        // Stream 1's free at cap evicts one of stream 5's blocks and parks
        // its own.
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(1)).unwrap();
        assert_eq!(pool.cache_stats().cached_blocks, 2, "still at cap");
        // The warm path works for stream 1 now: its own block is parked.
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        assert_eq!(b.va, a.va, "stream 1 reuses the block it parked");
        assert_eq!(pool.cache_stats().hits, 1);
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (4, 4, 0));
        // Full accounting survives a flush.
        pool.flush();
        assert_eq!(pool.with_core(|c| c.stats().live_allocations()), 0);
    }

    /// A 2-stream pool over a `ManualEvents` source plus a control handle
    /// to script pending→ready transitions.
    fn event_pool(capacity: u64) -> (DeviceAllocator, Arc<ManualEvents>) {
        let events = Arc::new(ManualEvents::new());
        let pool = DeviceAllocator::with_config_and_events(
            TestCore::bounded(capacity),
            DeviceAllocatorConfig::default().with_streams(2),
            events.clone(),
        );
        (pool, events)
    }

    #[test]
    fn cross_stream_free_with_events_parks_until_completion() {
        let (pool, events) = event_pool(0);
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        // Freed from stream 0: records an event, parks in the pending ring.
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        let c = pool.cache_stats();
        assert_eq!(c.cross_stream_parked, 1);
        assert_eq!(c.cross_stream_fallback, 0);
        assert_eq!((c.pending_blocks, c.pending_bytes), (1, 1024));
        assert_eq!(c.cached_blocks, 0, "not reusable before the event");
        assert_eq!(
            pool.with_core(|core| core.stats().live_allocations()),
            1,
            "the core never saw the free — no round trip"
        );
        // The caller-visible stats already count the block as freed.
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (1, 1, 0));
        // While the event is outstanding, the owner's allocation MISSES:
        // the block must not come back early.
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        assert_ne!(b.va, a.va, "pending block must not be handed out");
        assert_eq!(pool.cache_stats().hits, 0);
        // Event completes (b stays live, so the free list is empty): the
        // next owner-stream allocation promotes the pending block and
        // reuses it — one shard lock, no core traffic.
        events.complete_all();
        let core_allocs_before = pool.with_core(|core| core.stats().alloc_count);
        let c2 = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        assert_eq!(c2.va, a.va, "the promoted block was reused");
        assert_eq!(
            pool.with_core(|core| core.stats().alloc_count),
            core_allocs_before,
            "promotion + reuse required no core allocation"
        );
        let cs = pool.cache_stats();
        assert_eq!(cs.event_promotions, 1);
        assert_eq!(cs.pending_blocks, 0);
        assert_eq!(cs.hits, 1);
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
        pool.free_on_stream(c2.id, StreamId(1)).unwrap();
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (3, 3, 0));
    }

    #[test]
    fn process_events_sweeps_the_pending_rings() {
        let (pool, events) = event_pool(0);
        let a = pool
            .alloc_on_stream(AllocRequest::new(2048), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        assert_eq!(pool.process_events(), 0, "event still outstanding");
        assert_eq!(pool.cache_stats().pending_blocks, 1);
        events.complete_all();
        assert_eq!(pool.process_events(), 1);
        let c = pool.cache_stats();
        assert_eq!(c.pending_blocks, 0);
        assert_eq!(c.cached_blocks, 1, "promoted into the owner's free list");
        // The owner reuses the promoted block.
        let b = pool
            .alloc_on_stream(AllocRequest::new(2048), StreamId(1))
            .unwrap();
        assert_eq!(b.va, a.va);
        assert_eq!(pool.cache_stats().hits, 1);
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
    }

    #[test]
    fn process_events_without_a_source_is_a_noop() {
        let pool = DeviceAllocator::new(TestCore::default());
        assert_eq!(pool.process_events(), 0);
    }

    #[test]
    fn full_pending_ring_falls_back_to_the_core_after_synchronizing() {
        let events = Arc::new(ManualEvents::new());
        let pool = DeviceAllocator::with_config_and_events(
            TestCore::default(),
            DeviceAllocatorConfig::default()
                .with_streams(2)
                .with_pending_ring_cap(1),
            events.clone(),
        );
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        assert_eq!(events.pending(), 1, "parked event outstanding");
        pool.free_on_stream(b.id, StreamId(0)).unwrap();
        let c = pool.cache_stats();
        assert_eq!(c.cross_stream_parked, 1, "ring capacity is 1");
        assert_eq!(c.cross_stream_fallback, 1, "overflow went to the core");
        assert_eq!(c.pending_blocks, 1);
        // The overflowing free recorded AND synchronized its event before
        // the core saw the block — same rule as the flush path, so the
        // core can never re-serve a block whose freeing stream is still
        // using it. (ManualEvents completes along a global timeline, so
        // the sync also completed the parked block's earlier event.)
        assert_eq!(events.pending(), 0, "fallback synchronized its event");
        assert_eq!(
            pool.with_core(|core| core.stats().live_allocations()),
            1,
            "exactly the parked block is still core-live"
        );
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (2, 2, 0));
    }

    #[test]
    fn zero_pending_ring_cap_disables_event_parking() {
        let events = Arc::new(ManualEvents::new());
        let pool = DeviceAllocator::with_config_and_events(
            TestCore::default(),
            DeviceAllocatorConfig::default()
                .with_streams(2)
                .with_pending_ring_cap(0),
            events.clone(),
        );
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        let c = pool.cache_stats();
        assert_eq!(c.cross_stream_parked, 0, "parking disabled");
        assert_eq!(c.cross_stream_fallback, 1);
        assert_eq!(c.pending_blocks, 0);
        assert_eq!(events.pending(), 0, "fallback event synchronized");
        assert_eq!(pool.with_core(|core| core.stats().live_allocations()), 0);
    }

    #[test]
    fn flush_drains_pending_rings_and_synchronizes_their_events() {
        let (pool, events) = event_pool(0);
        let a = pool
            .alloc_on_stream(AllocRequest::new(1000), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        assert_eq!(events.pending(), 1, "event outstanding");
        // Flush must reach the NOT-yet-completed cross-stream block:
        // defrag/OOM rescue sees every cached byte.
        assert_eq!(pool.flush(), 1024, "the pending block's bytes came back");
        assert_eq!(
            events.pending(),
            0,
            "handing the block to the core synchronized its event"
        );
        let c = pool.cache_stats();
        assert_eq!(
            (c.pending_blocks, c.pending_bytes, c.cached_blocks),
            (0, 0, 0)
        );
        assert_eq!(pool.with_core(|core| core.stats().live_allocations()), 0);
        let s = pool.stats();
        assert_eq!((s.alloc_count, s.free_count, s.active_bytes), (1, 1, 0));
    }

    #[test]
    fn oom_retry_reclaims_pending_blocks() {
        // Capacity fits exactly one 1 KiB-class block, which is stuck in a
        // pending ring behind an uncompleted event. The OOM retry's flush
        // must synchronize and reclaim it or the allocation cannot succeed.
        let (pool, _events) = event_pool(1024);
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        assert_eq!(pool.cache_stats().pending_blocks, 1);
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(0))
            .unwrap();
        assert_eq!(b.size, 1024, "flush-and-retry rescued the request");
        assert_eq!(pool.cache_stats().pending_blocks, 0);
        pool.free_on_stream(b.id, StreamId(0)).unwrap();
    }

    #[test]
    fn immediate_events_promote_on_the_very_next_owner_alloc() {
        let pool = DeviceAllocator::with_config_and_events(
            TestCore::default(),
            DeviceAllocatorConfig::default().with_streams(2),
            Arc::new(crate::events::ImmediateEvents),
        );
        let a = pool
            .alloc_on_stream(AllocRequest::new(4096), StreamId(1))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        let b = pool
            .alloc_on_stream(AllocRequest::new(4096), StreamId(1))
            .unwrap();
        assert_eq!(b.va, a.va, "already-complete event: immediate reuse");
        let c = pool.cache_stats();
        assert_eq!(
            (c.hits, c.event_promotions, c.cross_stream_parked),
            (1, 1, 1)
        );
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
    }

    #[test]
    fn promoted_blocks_stay_guarded_by_exact_stream_ids() {
        // Stream 5 folds onto bank 1 (2 banks). Its block, cross-stream
        // freed and promoted, must still only be reusable by stream 5 —
        // promotion must not launder the owner tag.
        let (pool, events) = event_pool(0);
        let a = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(5))
            .unwrap();
        pool.free_on_stream(a.id, StreamId(0)).unwrap();
        events.complete_all();
        assert_eq!(pool.process_events(), 1);
        let b = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(1))
            .unwrap();
        assert_ne!(b.va, a.va, "stream 1 must not get stream 5's block");
        let a2 = pool
            .alloc_on_stream(AllocRequest::new(1024), StreamId(5))
            .unwrap();
        assert_eq!(a2.va, a.va, "the owner reuses its promoted block");
        pool.free_on_stream(b.id, StreamId(1)).unwrap();
        pool.free_on_stream(a2.id, StreamId(5)).unwrap();
    }

    #[test]
    fn cross_thread_alloc_free_keeps_exact_accounting() {
        let pool = DeviceAllocator::new(TestCore::default());
        let (tx, rx) = std::sync::mpsc::channel::<AllocationId>();
        std::thread::scope(|s| {
            let producer = pool.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    tx.send(producer.allocate(AllocRequest::new(2048)).unwrap().id)
                        .unwrap();
                }
            });
            let consumer = pool.clone();
            s.spawn(move || {
                for id in rx {
                    consumer.deallocate(id).unwrap();
                }
            });
        });
        let s = pool.stats();
        assert_eq!(s.alloc_count, 100);
        assert_eq!(s.free_count, 100);
        assert_eq!(s.active_bytes, 0);
    }
}
