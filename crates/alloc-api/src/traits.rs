//! The allocator trait every memory manager in this workspace implements,
//! plus the shared-handle path ([`SharedAllocator`]) that lets many threads
//! drive one allocator through an `Arc<Mutex<…>>`.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::AllocError;
use crate::request::{AllocRequest, Allocation};
use crate::stats::MemStats;
use crate::types::AllocationId;

/// A GPU memory allocator as seen by the tensor layer of a DL framework.
///
/// Implementations in this workspace:
/// * `NativeAllocator` (`gmlake-gpu-sim`) — direct `cudaMalloc`/`cudaFree`
///   with device synchronization on every call (the paper's "native
///   allocator", ~10× slower end to end);
/// * `CachingAllocator` (`gmlake-caching`) — PyTorch's best-fit-with-
///   coalescing caching allocator (the baseline in every figure);
/// * `GmLakeAllocator` (`gmlake-core`) — the paper's virtual-memory-stitching
///   allocator.
///
/// # Contract
///
/// * **Strong exception safety** — a call that returns `Err` leaves both the
///   allocator and the device unchanged.
/// * **No panics** on OOM — allocation failure is an `Err`, never an abort.
/// * **Teardown** — dropping the allocator releases all device memory it
///   reserved; destructors never fail (C-DTOR-FAIL).
pub trait GpuAllocator {
    /// Allocates memory for `req`, returning a handle whose virtual address
    /// range is contiguous and at least `req.size` bytes long.
    ///
    /// # Errors
    ///
    /// * [`AllocError::ZeroSize`] if `req.size == 0`;
    /// * [`AllocError::OutOfMemory`] if the device cannot satisfy the request
    ///   even after cache release / defragmentation fallbacks.
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError>;

    /// Releases the allocation identified by `id`.
    ///
    /// Depending on the implementation this may or may not return physical
    /// memory to the device: caching allocators and GMLake keep it pooled.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownAllocation`] if `id` is not live.
    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError>;

    /// Returns a snapshot of the allocator's memory statistics.
    fn stats(&self) -> MemStats;

    /// Short implementation name for reports (e.g. `"pytorch-caching"`).
    fn name(&self) -> &'static str;

    /// Hint that one training iteration ended. GMLake uses this to detect
    /// convergence of the allocation pattern; other allocators ignore it.
    fn iteration_boundary(&mut self) {}

    /// Releases cached (inactive) device memory back to the device, like
    /// `torch.cuda.empty_cache()`. Returns the number of bytes released.
    fn release_cached(&mut self) -> u64 {
        0
    }

    /// Runs one defragmentation/garbage-collection pass and returns the
    /// number of physical bytes released.
    ///
    /// This is the hook a defrag scheduler calls *proactively* (between
    /// iterations, or when fragmentation crosses a threshold), as opposed to
    /// [`GpuAllocator::release_cached`], which is the reactive
    /// surrender-everything OOM fallback. Implementations should release
    /// memory that is unlikely to be reused and may garbage-collect internal
    /// cache structures, while keeping the caches that make the steady state
    /// fast. The default falls back to a full cache release.
    fn compact(&mut self) -> u64 {
        self.release_cached()
    }

    /// Instantaneous fragmentation ratio of the currently reserved memory:
    /// `1 − active/reserved`, in `[0, 1]`; 0 when nothing is reserved.
    ///
    /// Unlike [`MemStats::fragmentation`], which is computed over the *peak*
    /// watermarks (the paper's reporting metric), this reflects the pool
    /// right now — the signal a defrag policy triggers on.
    fn fragmentation(&self) -> f64 {
        let s = self.stats();
        if s.reserved_bytes == 0 {
            0.0
        } else {
            1.0 - s.active_bytes as f64 / s.reserved_bytes as f64
        }
    }
}

/// Blanket impl so `&mut A` can be passed where a `GpuAllocator` is expected
/// (the replayer takes allocators by `&mut dyn`).
impl<A: GpuAllocator + ?Sized> GpuAllocator for &mut A {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        (**self).allocate(req)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        (**self).deallocate(id)
    }

    fn stats(&self) -> MemStats {
        (**self).stats()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn iteration_boundary(&mut self) {
        (**self).iteration_boundary()
    }

    fn release_cached(&mut self) -> u64 {
        (**self).release_cached()
    }

    fn compact(&mut self) -> u64 {
        (**self).compact()
    }

    fn fragmentation(&self) -> f64 {
        (**self).fragmentation()
    }
}

/// Blanket impl for boxed allocators, so `Box<dyn GpuAllocator + Send>` is
/// itself a `GpuAllocator` (the multi-device pool service stores its
/// per-device allocators this way).
impl<A: GpuAllocator + ?Sized> GpuAllocator for Box<A> {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        (**self).allocate(req)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        (**self).deallocate(id)
    }

    fn stats(&self) -> MemStats {
        (**self).stats()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn iteration_boundary(&mut self) {
        (**self).iteration_boundary()
    }

    fn release_cached(&mut self) -> u64 {
        (**self).release_cached()
    }

    fn compact(&mut self) -> u64 {
        (**self).compact()
    }

    fn fragmentation(&self) -> f64 {
        (**self).fragmentation()
    }
}

/// A cloneable, thread-safe handle to one allocator: the shared-handle
/// allocation path used by `gmlake-runtime`'s pool service.
///
/// Locking discipline: every trait call acquires the mutex for exactly its
/// own duration. The mutex is the workspace's `parking_lot` one, whose
/// `lock()` recovers from poisoning (the allocator's strong exception
/// safety means a panicking caller cannot leave it half-mutated).
pub type SharedAllocator = Arc<Mutex<Box<dyn GpuAllocator + Send>>>;

/// Wraps an allocator into the shared-handle path.
pub fn share<A: GpuAllocator + Send + 'static>(alloc: A) -> SharedAllocator {
    Arc::new(Mutex::new(Box::new(alloc)))
}

impl GpuAllocator for SharedAllocator {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        self.lock().allocate(req)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        self.lock().deallocate(id)
    }

    fn stats(&self) -> MemStats {
        self.lock().stats()
    }

    fn name(&self) -> &'static str {
        self.lock().name()
    }

    fn iteration_boundary(&mut self) {
        self.lock().iteration_boundary()
    }

    fn release_cached(&mut self) -> u64 {
        self.lock().release_cached()
    }

    fn compact(&mut self) -> u64 {
        self.lock().compact()
    }

    fn fragmentation(&self) -> f64 {
        self.lock().fragmentation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VirtAddr;
    use std::collections::HashMap;

    /// Minimal in-memory allocator used to exercise the trait contract and
    /// the blanket `&mut A` impl.
    #[derive(Default)]
    struct Bump {
        next: u64,
        live: HashMap<AllocationId, u64>,
        stats: MemStats,
    }

    impl GpuAllocator for Bump {
        fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
            if req.size == 0 {
                return Err(AllocError::ZeroSize);
            }
            self.next += 1;
            let id = AllocationId::new(self.next);
            self.live.insert(id, req.size);
            self.stats.on_alloc(req.size, req.size);
            let reserved = self.stats.active_bytes;
            self.stats.set_reserved(reserved);
            Ok(Allocation {
                id,
                va: VirtAddr::new(self.next << 20),
                size: req.size,
                requested: req.size,
            })
        }

        fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
            let size = self
                .live
                .remove(&id)
                .ok_or(AllocError::UnknownAllocation(id))?;
            self.stats.on_free(size);
            Ok(())
        }

        fn stats(&self) -> MemStats {
            self.stats
        }

        fn name(&self) -> &'static str {
            "bump"
        }
    }

    fn exercise<A: GpuAllocator>(mut a: A) {
        let alloc = a.allocate(AllocRequest::new(64)).unwrap();
        assert_eq!(a.stats().active_bytes, 64);
        a.deallocate(alloc.id).unwrap();
        assert_eq!(a.stats().active_bytes, 0);
    }

    #[test]
    fn trait_object_and_mut_ref_work() {
        let mut b = Bump::default();
        exercise(&mut b);
        let dyn_ref: &mut dyn GpuAllocator = &mut b;
        exercise(dyn_ref);
        assert_eq!(b.stats().alloc_count, 2);
    }

    #[test]
    fn zero_size_is_rejected() {
        let mut b = Bump::default();
        assert_eq!(
            b.allocate(AllocRequest::new(0)).unwrap_err(),
            AllocError::ZeroSize
        );
    }

    #[test]
    fn double_free_is_reported() {
        let mut b = Bump::default();
        let alloc = b.allocate(AllocRequest::new(8)).unwrap();
        b.deallocate(alloc.id).unwrap();
        assert_eq!(
            b.deallocate(alloc.id).unwrap_err(),
            AllocError::UnknownAllocation(alloc.id)
        );
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut b = Bump::default();
        b.iteration_boundary();
        assert_eq!(b.release_cached(), 0);
        assert_eq!(b.compact(), 0, "default compact falls back to release");
    }

    #[test]
    fn default_fragmentation_tracks_current_stats() {
        let mut b = Bump::default();
        assert_eq!(b.fragmentation(), 0.0, "empty allocator is not fragmented");
        let a1 = b.allocate(AllocRequest::new(64)).unwrap();
        let a2 = b.allocate(AllocRequest::new(64)).unwrap();
        b.deallocate(a1.id).unwrap();
        // Bump keeps reserved at the peak-active watermark: 128 reserved,
        // 64 active.
        b.stats();
        assert!((b.fragmentation() - 0.5).abs() < 1e-12);
        b.deallocate(a2.id).unwrap();
    }

    #[test]
    fn boxed_allocator_is_an_allocator() {
        let mut boxed: Box<dyn GpuAllocator + Send> = Box::new(Bump::default());
        exercise(&mut boxed);
        assert_eq!(boxed.name(), "bump");
    }

    #[test]
    fn shared_handle_allocates_from_many_clones() {
        let shared = share(Bump::default());
        let mut a = shared.clone();
        let mut b = shared.clone();
        let alloc = a.allocate(AllocRequest::new(32)).unwrap();
        assert_eq!(b.stats().active_bytes, 32, "clones see one allocator");
        b.deallocate(alloc.id).unwrap();
        assert_eq!(a.stats().active_bytes, 0);
    }

    #[test]
    fn shared_handle_is_usable_across_threads() {
        let shared = share(Bump::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let mut h = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let a = h.allocate(AllocRequest::new(16)).unwrap();
                        h.deallocate(a.id).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = shared.lock().stats();
        assert_eq!(s.alloc_count, 200);
        assert_eq!(s.active_bytes, 0, "no allocation lost or leaked");
    }
}
