//! The backend allocator trait every memory manager in this workspace
//! implements ([`AllocatorCore`]), plus the deprecated single-mutex
//! shared-handle shim ([`SharedAllocator`]) superseded by
//! [`DeviceAllocator`](crate::DeviceAllocator).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::AllocError;
use crate::request::{AllocRequest, Allocation};
use crate::stats::{FaultJournalStats, MemStats};
use crate::types::{AllocationId, StreamId};

/// A GPU memory allocator *backend* as seen by the tensor layer of a DL
/// framework: single-owner, `&mut self` on every mutating call.
///
/// This is the bottom layer of the two-layer allocator API. Concurrent
/// callers never speak to an `AllocatorCore` directly — they wrap it in a
/// [`DeviceAllocator`](crate::DeviceAllocator), the cloneable `Send + Sync`
/// front-end that shards small traffic away from the core's mutex.
///
/// Implementations in this workspace:
/// * `NativeAllocator` (`gmlake-gpu-sim`) — direct `cudaMalloc`/`cudaFree`
///   with device synchronization on every call (the paper's "native
///   allocator", ~10× slower end to end);
/// * `CachingAllocator` (`gmlake-caching`) — PyTorch's best-fit-with-
///   coalescing caching allocator (the baseline in every figure);
/// * `GmLakeAllocator` (`gmlake-core`) — the paper's virtual-memory-stitching
///   allocator.
///
/// # Contract
///
/// * **Strong exception safety** — a call that returns `Err` leaves both the
///   allocator and the device unchanged.
/// * **No panics** on OOM — allocation failure is an `Err`, never an abort.
/// * **Teardown** — dropping the allocator releases all device memory it
///   reserved; destructors never fail (C-DTOR-FAIL).
/// * **Unique identifiers** — [`AllocationId`]s are never reused within one
///   core instance.
pub trait AllocatorCore {
    /// Allocates memory for `req`, returning a handle whose virtual address
    /// range is contiguous and at least `req.size` bytes long.
    ///
    /// # Errors
    ///
    /// * [`AllocError::ZeroSize`] if `req.size == 0`;
    /// * [`AllocError::OutOfMemory`] if the device cannot satisfy the request
    ///   even after cache release / defragmentation fallbacks.
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError>;

    /// Releases the allocation identified by `id`.
    ///
    /// Depending on the implementation this may or may not return physical
    /// memory to the device: caching allocators and GMLake keep it pooled.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownAllocation`] if `id` is not live.
    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError>;

    /// Allocates memory for `req` on behalf of logical GPU stream `stream`.
    ///
    /// Backend cores are *stream-oblivious*: every call is serialized behind
    /// the owner (or the front-end's core mutex), which is itself a full
    /// synchronization point, so the default implementation simply ignores
    /// the stream and delegates to [`AllocatorCore::allocate`]. Stream-aware
    /// front-ends ([`DeviceAllocator`](crate::DeviceAllocator), the
    /// runtime's `PoolHandle`) override this to route the request to the
    /// stream's own cache partition — trait-generic callers (the trace
    /// replayer) can therefore always pass the stream and let each layer do
    /// the right thing.
    ///
    /// # Errors
    ///
    /// Same contract as [`AllocatorCore::allocate`].
    fn alloc_on_stream(
        &mut self,
        req: AllocRequest,
        _stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        self.allocate(req)
    }

    /// Releases the allocation identified by `id` on behalf of `stream`
    /// (the stream the *free* is issued from, which need not be the stream
    /// the block was allocated on). Stream-oblivious cores ignore the
    /// stream; stream-aware front-ends use it to decide whether the block
    /// may be recycled on its owning stream's free list or must pass
    /// through the core (the cross-stream reuse guard).
    ///
    /// # Errors
    ///
    /// Same contract as [`AllocatorCore::deallocate`].
    fn free_on_stream(&mut self, id: AllocationId, _stream: StreamId) -> Result<(), AllocError> {
        self.deallocate(id)
    }

    /// Returns a snapshot of the allocator's memory statistics.
    fn stats(&self) -> MemStats;

    /// Short implementation name for reports (e.g. `"pytorch-caching"`).
    fn name(&self) -> &'static str;

    /// Hint that one training iteration ended. GMLake uses this to detect
    /// convergence of the allocation pattern; other allocators ignore it.
    fn iteration_boundary(&mut self) {}

    /// Sweeps any stream-completion machinery, returning how many
    /// cross-stream-freed blocks became reusable. Stream-oblivious cores
    /// have no such machinery and return 0; the
    /// [`DeviceAllocator`](crate::DeviceAllocator) front-end (and the
    /// runtime's `PoolHandle`) override this to promote pending-ring blocks
    /// whose events have completed. Trait-generic drivers (the trace
    /// replayers) call it at natural synchronization points — iteration
    /// boundaries — so parked blocks do not idle past the moment their
    /// event completes.
    fn process_events(&mut self) -> u64 {
        0
    }

    /// Releases cached (inactive) device memory back to the device, like
    /// `torch.cuda.empty_cache()`. Returns the number of bytes released.
    fn release_cached(&mut self) -> u64 {
        0
    }

    /// Runs one defragmentation/garbage-collection pass and returns the
    /// number of physical bytes released.
    ///
    /// This is the hook a defrag scheduler calls *proactively* (between
    /// iterations, or when fragmentation crosses a threshold), as opposed to
    /// [`AllocatorCore::release_cached`], which is the reactive
    /// surrender-everything OOM fallback. Implementations should release
    /// memory that is unlikely to be reused and may garbage-collect internal
    /// cache structures, while keeping the caches that make the steady state
    /// fast. The default falls back to a full cache release.
    fn compact(&mut self) -> u64 {
        self.release_cached()
    }

    /// Instantaneous fragmentation ratio of the currently reserved memory:
    /// `1 − active/reserved`, in `[0, 1]`; 0 when nothing is reserved.
    ///
    /// Unlike [`MemStats::fragmentation`], which is computed over the *peak*
    /// watermarks (the paper's reporting metric), this reflects the pool
    /// right now — the signal a defrag policy triggers on.
    fn fragmentation(&self) -> f64 {
        let s = self.stats();
        if s.reserved_bytes == 0 {
            0.0
        } else {
            1.0 - s.active_bytes as f64 / s.reserved_bytes as f64
        }
    }

    /// Enables or disables the implementation's block-composition
    /// ("stitching") machinery, if it has one. While disabled the
    /// allocator must keep serving requests through its degraded paths
    /// (exact reuse, splitting, fresh allocation) and must keep every
    /// invariant intact — this is the knob a runtime circuit breaker
    /// flips after repeated stitch-path driver faults, and flips back
    /// once a cooldown expires. Allocators without stitching ignore it
    /// (the default is a no-op).
    fn set_stitch_enabled(&mut self, _enabled: bool) {}

    /// Cumulative driver-fault residue counters (rolled-back operations and
    /// any orphaned VA/chunk bookkeeping the rollback could not undo).
    /// Allocators without a fault journal report all-zero counters — the
    /// default — which also reads as "leak-free". Profilers use this to put
    /// orphan accounting into memory snapshots without downcasting.
    fn fault_journal_stats(&self) -> FaultJournalStats {
        FaultJournalStats::default()
    }

    /// Mutable [`Any`](std::any::Any) view of the concrete allocator, for
    /// implementation-specific telemetry behind a type-erased front-end
    /// (see
    /// [`DeviceAllocator::with_core_as`](crate::DeviceAllocator::with_core_as)).
    /// Concrete allocators return `Some(self)`; the default (`None`) keeps
    /// wrappers and ad-hoc test doubles honest — a wrapper must not
    /// masquerade as its inner core.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Blanket impl so `&mut A` can be passed where an `AllocatorCore` is
/// expected (the replayer takes allocators by `&mut dyn`).
impl<A: AllocatorCore + ?Sized> AllocatorCore for &mut A {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        (**self).allocate(req)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        (**self).deallocate(id)
    }

    // Stream routing must forward explicitly: the provided default would
    // silently drop a wrapped front-end's override.
    fn alloc_on_stream(
        &mut self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        (**self).alloc_on_stream(req, stream)
    }

    fn free_on_stream(&mut self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        (**self).free_on_stream(id, stream)
    }

    fn stats(&self) -> MemStats {
        (**self).stats()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn iteration_boundary(&mut self) {
        (**self).iteration_boundary()
    }

    fn process_events(&mut self) -> u64 {
        (**self).process_events()
    }

    fn release_cached(&mut self) -> u64 {
        (**self).release_cached()
    }

    fn compact(&mut self) -> u64 {
        (**self).compact()
    }

    fn fragmentation(&self) -> f64 {
        (**self).fragmentation()
    }

    fn set_stitch_enabled(&mut self, enabled: bool) {
        (**self).set_stitch_enabled(enabled)
    }

    fn fault_journal_stats(&self) -> FaultJournalStats {
        (**self).fault_journal_stats()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
}

/// Blanket impl for boxed allocators, so `Box<dyn AllocatorCore + Send>` is
/// itself an `AllocatorCore` (the concurrent front-end stores the wrapped
/// core this way).
impl<A: AllocatorCore + ?Sized> AllocatorCore for Box<A> {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        (**self).allocate(req)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        (**self).deallocate(id)
    }

    fn alloc_on_stream(
        &mut self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        (**self).alloc_on_stream(req, stream)
    }

    fn free_on_stream(&mut self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        (**self).free_on_stream(id, stream)
    }

    fn stats(&self) -> MemStats {
        (**self).stats()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn iteration_boundary(&mut self) {
        (**self).iteration_boundary()
    }

    fn process_events(&mut self) -> u64 {
        (**self).process_events()
    }

    fn release_cached(&mut self) -> u64 {
        (**self).release_cached()
    }

    fn compact(&mut self) -> u64 {
        (**self).compact()
    }

    fn fragmentation(&self) -> f64 {
        (**self).fragmentation()
    }

    fn set_stitch_enabled(&mut self, enabled: bool) {
        (**self).set_stitch_enabled(enabled)
    }

    fn fault_journal_stats(&self) -> FaultJournalStats {
        (**self).fault_journal_stats()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
}

/// Deprecated name of [`AllocatorCore`], kept for one release so downstream
/// code migrates at its own pace (see the README's "Allocator API" section).
#[deprecated(
    since = "0.2.0",
    note = "renamed to `AllocatorCore`; concurrent callers should wrap it in `DeviceAllocator`"
)]
pub use AllocatorCore as GpuAllocator;

/// Deprecated single-mutex shared-handle path: every clone funnels every
/// call — small or large — through one global mutex, which is exactly the
/// serialization the sharded [`DeviceAllocator`](crate::DeviceAllocator)
/// front-end removes.
///
/// Kept for one release as a migration shim. The backend name is cached at
/// construction, so [`AllocatorCore::name`] does not take the lock.
#[deprecated(
    since = "0.2.0",
    note = "use `DeviceAllocator::new` instead; see the README's allocator-API migration table"
)]
#[derive(Clone)]
pub struct SharedAllocator {
    inner: Arc<Mutex<Box<dyn AllocatorCore + Send>>>,
    /// Backend name, captured once at construction instead of locking the
    /// pool on every `name()` call.
    name: &'static str,
}

#[allow(deprecated)]
impl std::fmt::Debug for SharedAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedAllocator")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[allow(deprecated)]
impl SharedAllocator {
    /// Wraps an allocator core into the single-mutex shared-handle path.
    pub fn new<A: AllocatorCore + Send + 'static>(core: A) -> Self {
        let name = core.name();
        SharedAllocator {
            inner: Arc::new(Mutex::new(Box::new(core))),
            name,
        }
    }

    /// Runs `f` with exclusive access to the wrapped core.
    pub fn with_core<R>(&self, f: impl FnOnce(&mut dyn AllocatorCore) -> R) -> R {
        f(&mut **self.inner.lock())
    }
}

/// Wraps an allocator into the deprecated shared-handle path.
#[deprecated(
    since = "0.2.0",
    note = "use `DeviceAllocator::new` instead; see the README's allocator-API migration table"
)]
#[allow(deprecated)]
pub fn share<A: AllocatorCore + Send + 'static>(alloc: A) -> SharedAllocator {
    SharedAllocator::new(alloc)
}

#[allow(deprecated)]
impl AllocatorCore for SharedAllocator {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        self.inner.lock().allocate(req)
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        self.inner.lock().deallocate(id)
    }

    fn alloc_on_stream(
        &mut self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        self.inner.lock().alloc_on_stream(req, stream)
    }

    fn free_on_stream(&mut self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        self.inner.lock().free_on_stream(id, stream)
    }

    fn stats(&self) -> MemStats {
        self.inner.lock().stats()
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn iteration_boundary(&mut self) {
        self.inner.lock().iteration_boundary()
    }

    fn process_events(&mut self) -> u64 {
        self.inner.lock().process_events()
    }

    fn release_cached(&mut self) -> u64 {
        self.inner.lock().release_cached()
    }

    fn compact(&mut self) -> u64 {
        self.inner.lock().compact()
    }

    fn fragmentation(&self) -> f64 {
        self.inner.lock().fragmentation()
    }

    fn set_stitch_enabled(&mut self, enabled: bool) {
        self.inner.lock().set_stitch_enabled(enabled)
    }

    fn fault_journal_stats(&self) -> FaultJournalStats {
        self.inner.lock().fault_journal_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VirtAddr;
    use std::collections::HashMap;

    /// Minimal in-memory allocator used to exercise the trait contract and
    /// the blanket `&mut A` impl.
    #[derive(Default)]
    pub(crate) struct Bump {
        next: u64,
        live: HashMap<AllocationId, u64>,
        stats: MemStats,
    }

    impl AllocatorCore for Bump {
        fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
            if req.size == 0 {
                return Err(AllocError::ZeroSize);
            }
            self.next += 1;
            let id = AllocationId::new(self.next);
            self.live.insert(id, req.size);
            self.stats.on_alloc(req.size, req.size);
            let reserved = self.stats.active_bytes;
            self.stats.set_reserved(reserved);
            Ok(Allocation {
                id,
                va: VirtAddr::new(self.next << 20),
                size: req.size,
                requested: req.size,
            })
        }

        fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
            let size = self
                .live
                .remove(&id)
                .ok_or(AllocError::UnknownAllocation(id))?;
            self.stats.on_free(size);
            Ok(())
        }

        fn stats(&self) -> MemStats {
            self.stats
        }

        fn name(&self) -> &'static str {
            "bump"
        }
    }

    fn exercise<A: AllocatorCore>(mut a: A) {
        let alloc = a.allocate(AllocRequest::new(64)).unwrap();
        assert_eq!(a.stats().active_bytes, 64);
        a.deallocate(alloc.id).unwrap();
        assert_eq!(a.stats().active_bytes, 0);
    }

    #[test]
    fn trait_object_and_mut_ref_work() {
        let mut b = Bump::default();
        exercise(&mut b);
        let dyn_ref: &mut dyn AllocatorCore = &mut b;
        exercise(dyn_ref);
        assert_eq!(b.stats().alloc_count, 2);
    }

    #[test]
    fn zero_size_is_rejected() {
        let mut b = Bump::default();
        assert_eq!(
            b.allocate(AllocRequest::new(0)).unwrap_err(),
            AllocError::ZeroSize
        );
    }

    #[test]
    fn double_free_is_reported() {
        let mut b = Bump::default();
        let alloc = b.allocate(AllocRequest::new(8)).unwrap();
        b.deallocate(alloc.id).unwrap();
        assert_eq!(
            b.deallocate(alloc.id).unwrap_err(),
            AllocError::UnknownAllocation(alloc.id)
        );
    }

    #[test]
    fn stream_defaults_delegate_to_the_stream_oblivious_path() {
        // A core ignores the stream: alloc/free on any stream behave exactly
        // like allocate/deallocate, including through &mut and Box wrappers.
        let mut b = Bump::default();
        let a = b
            .alloc_on_stream(AllocRequest::new(64), StreamId::new(3))
            .unwrap();
        assert_eq!(b.stats().active_bytes, 64);
        b.free_on_stream(a.id, StreamId::new(5)).unwrap();
        assert_eq!(b.stats().active_bytes, 0);
        let mut boxed: Box<dyn AllocatorCore + Send> = Box::new(Bump::default());
        let a = boxed
            .alloc_on_stream(AllocRequest::new(8), StreamId::DEFAULT)
            .unwrap();
        boxed.free_on_stream(a.id, StreamId::new(1)).unwrap();
        assert_eq!(boxed.stats().free_count, 1);
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut b = Bump::default();
        b.iteration_boundary();
        assert_eq!(b.release_cached(), 0);
        assert_eq!(b.compact(), 0, "default compact falls back to release");
    }

    #[test]
    fn default_fragmentation_tracks_current_stats() {
        let mut b = Bump::default();
        assert_eq!(b.fragmentation(), 0.0, "empty allocator is not fragmented");
        let a1 = b.allocate(AllocRequest::new(64)).unwrap();
        let a2 = b.allocate(AllocRequest::new(64)).unwrap();
        b.deallocate(a1.id).unwrap();
        // Bump keeps reserved at the peak-active watermark: 128 reserved,
        // 64 active.
        b.stats();
        assert!((b.fragmentation() - 0.5).abs() < 1e-12);
        b.deallocate(a2.id).unwrap();
    }

    #[test]
    fn boxed_allocator_is_an_allocator() {
        let mut boxed: Box<dyn AllocatorCore + Send> = Box::new(Bump::default());
        exercise(&mut boxed);
        assert_eq!(boxed.name(), "bump");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shared_handle_still_works_and_caches_its_name() {
        let shared = share(Bump::default());
        let mut a = shared.clone();
        let mut b = shared.clone();
        let alloc = a.allocate(AllocRequest::new(32)).unwrap();
        assert_eq!(b.stats().active_bytes, 32, "clones see one allocator");
        b.deallocate(alloc.id).unwrap();
        assert_eq!(a.stats().active_bytes, 0);
        // The name is served from the construction-time cache: even while a
        // clone holds the pool lock, `name()` answers without blocking.
        shared.with_core(|_core| {
            assert_eq!(a.name(), "bump");
        });
        assert!(format!("{shared:?}").contains("bump"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shared_handle_is_usable_across_threads() {
        let shared = share(Bump::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let mut h = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let a = h.allocate(AllocRequest::new(16)).unwrap();
                        h.deallocate(a.id).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = shared.stats();
        assert_eq!(s.alloc_count, 200);
        assert_eq!(s.active_bytes, 0, "no allocation lost or leaked");
    }
}
