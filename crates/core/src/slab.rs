//! Dense slab arena for pBlock/sBlock storage.
//!
//! The allocator's block ids were always sequential `u64`s handed out by the
//! allocator itself, so there is no reason to pay `HashMap` hashing and
//! cache-hostile bucket chasing on the hot path: a slab stores blocks in a
//! flat `Vec`, keyed by `id - 1`, and recycles the slots of destroyed blocks
//! through a free list. Lookups are a bounds check plus one indexed load.
//!
//! Ids are 1-based (`0` is never a valid id, matching the previous
//! `next_p += 1; let pid = next_p;` convention) and are *reused* after
//! `remove` — safe here because the allocator only destroys blocks that
//! nothing references anymore, and [`Slab::validate`] checks the free-list
//! invariants that reuse relies on.

/// A slot-recycling arena keyed by 1-based sequential `u64` ids.
#[derive(Debug)]
pub(crate) struct Slab<T> {
    slots: Vec<Option<T>>,
    /// Indices (0-based) of vacant slots, popped LIFO on insert.
    free: Vec<usize>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Inserts `value`, reusing a vacant slot when one exists, and returns
    /// its id.
    pub fn insert(&mut self, value: T) -> u64 {
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx].is_none(), "free slot was occupied");
                self.slots[idx] = Some(value);
                idx as u64 + 1
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() as u64
            }
        }
    }

    /// Removes and returns the entry with `id`, recycling its slot.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let idx = id.checked_sub(1)? as usize;
        let value = self.slots.get_mut(idx)?.take()?;
        self.free.push(idx);
        Some(value)
    }

    pub fn get(&self, id: u64) -> Option<&T> {
        self.slots.get(id.checked_sub(1)? as usize)?.as_ref()
    }

    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        self.slots.get_mut(id.checked_sub(1)? as usize)?.as_mut()
    }

    /// Iterates live `(id, &entry)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (i as u64 + 1, v)))
    }

    /// Live ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Checks the reuse-after-destroy invariants: every free-list index is
    /// in bounds, points at a vacant slot, and appears exactly once; the
    /// live count is consistent with the free list.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.slots.len()];
        for &idx in &self.free {
            if idx >= self.slots.len() {
                return Err(format!("slab free-list index {idx} out of bounds"));
            }
            if self.slots[idx].is_some() {
                return Err(format!("slab free-list index {idx} is occupied"));
            }
            if seen[idx] {
                return Err(format!("slab free-list index {idx} duplicated"));
            }
            seen[idx] = true;
        }
        let vacant = self.slots.iter().filter(|s| s.is_none()).count();
        if vacant != self.free.len() {
            return Err(format!(
                "slab has {vacant} vacant slots but {} free-list entries",
                self.free.len()
            ));
        }
        Ok(())
    }
}

impl<T> std::ops::Index<u64> for Slab<T> {
    type Output = T;

    fn index(&self, id: u64) -> &T {
        self.get(id).expect("slab id is live")
    }
}

impl<T> std::ops::IndexMut<u64> for Slab<T> {
    fn index_mut(&mut self, id: u64) -> &mut T {
        self.get_mut(id).expect("slab id is live")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_one_based_and_sequential() {
        let mut s = Slab::new();
        assert_eq!(s.insert("a"), 1);
        assert_eq!(s.insert("b"), 2);
        assert_eq!(s.insert("c"), 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[2], "b");
        s.validate().unwrap();
    }

    #[test]
    fn remove_recycles_slots_lifo() {
        let mut s = Slab::new();
        for v in 0..4 {
            s.insert(v);
        }
        assert_eq!(s.remove(2), Some(1));
        assert_eq!(s.remove(4), Some(3));
        s.validate().unwrap();
        // LIFO reuse: the most recently freed slot is handed out first.
        assert_eq!(s.insert(40), 4);
        assert_eq!(s.insert(20), 2);
        assert_eq!(s.insert(50), 5);
        assert_eq!(s.len(), 5);
        s.validate().unwrap();
    }

    #[test]
    fn dead_and_invalid_ids_resolve_to_none() {
        let mut s = Slab::new();
        let id = s.insert(7);
        assert_eq!(s.get(0), None, "0 is never a valid id");
        assert_eq!(s.get(99), None);
        s.remove(id);
        assert_eq!(s.get(id), None);
        assert_eq!(s.remove(id), None, "double remove is a no-op");
        s.validate().unwrap();
    }

    #[test]
    fn iter_visits_live_entries_in_id_order() {
        let mut s = Slab::new();
        for v in 0..5 {
            s.insert(v);
        }
        s.remove(3);
        let pairs: Vec<(u64, i32)> = s.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(pairs, vec![(1, 0), (2, 1), (4, 3), (5, 4)]);
        assert_eq!(s.keys().collect::<Vec<_>>(), vec![1, 2, 4, 5]);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut s = Slab::new();
        s.insert(1);
        s.insert(2);
        s.remove(1);
        // Simulate a double-push of the same free index.
        s.free.push(0);
        assert!(s.validate().unwrap_err().contains("duplicated"));
    }
}
