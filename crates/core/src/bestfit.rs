//! The `BestFit` function — the paper's Algorithm 1 over the inactive pool
//! indexes, in two interchangeable implementations:
//!
//! * [`best_fit_indexed`] — the production hot path. It runs over a
//!   [`TieredPIndex`]: three `BTreeSet<(size, id)>` indexes, one per
//!   [`StitchCost`] tier, maintained incrementally by the allocator. Every
//!   classification step is a handful of `O(log n)` range probes (plus the
//!   inherently output-sized greedy walk for S3/S4), with **zero** per-block
//!   cost-closure calls.
//! * [`best_fit_reference`] — the original transcription over a single
//!   `(size, id)` set with a per-block cost closure. It makes up to three
//!   full passes over the pool and calls the closure (which chases
//!   `referenced_by` edges) per visited block, so it is `O(n)` per
//!   allocation on converged pools. It is retained as the differential
//!   oracle for property tests and as the benchmark baseline the
//!   `bestfit_scaling` bench measures the indexed path against.
//!
//! Both implementations must agree bit-for-bit on every input — S1–S5
//! classification, tier preference, candidate order — which the unit tests
//! here and the property tests in `tests.rs` enforce.
//!
//! One refinement beyond the paper's pseudocode: when choosing *non-exact*
//! candidates (S2/S3), pBlocks that are not referenced by any cached sBlock
//! are preferred. Splitting or re-stitching a block that participates in a
//! cached stitched view invalidates that view's availability and forces the
//! next identical request to stitch again — preferring unreferenced blocks
//! keeps the "tape" of cached sBlocks intact, which is what lets the
//! allocator converge to the S1-only steady state the paper describes
//! (§4.2.2).

use std::collections::BTreeSet;

use crate::block::{PBlockId, SBlockId};

/// Outcome of `BestFit` (the paper's states S1–S4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BestFit {
    /// S1 with an sBlock: exact size match.
    ExactS(SBlockId),
    /// S1 with a pBlock: exact size match.
    ExactP(PBlockId),
    /// S2: the smallest single pBlock strictly larger than the request.
    Single(PBlockId),
    /// S3: multiple pBlocks, each smaller than the request, whose total
    /// size covers it. Ordered by descending size; the last entry is the
    /// one a split may apply to. `sum` is their total size.
    Multiple { ids: Vec<PBlockId>, sum: u64 },
    /// S4: all eligible inactive pBlocks together are too small. `ids` is
    /// the candidate list (possibly empty), `sum` their total size.
    Insufficient { ids: Vec<PBlockId>, sum: u64 },
}

/// How expensive it is to consume a pBlock, from the point of view of the
/// cached-sBlock "tape" (see module docs). Lower ranks are consumed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum StitchCost {
    /// Not referenced by any cached sBlock: free to consume.
    Unreferenced = 0,
    /// Referenced only by sBlocks that are unavailable right now anyway
    /// (assigned, or blocked by other busy parts): consuming it costs
    /// little extra.
    ReferencedBlocked = 1,
    /// Part of at least one fully-inactive unassigned sBlock — a cached
    /// view that is *ready to exact-match* a future request. Consuming it
    /// poisons that view and forces a re-stitch next iteration, so these
    /// are taken only as a last resort.
    ReferencedAvailable = 2,
}

impl StitchCost {
    /// All tiers in consumption-preference order.
    pub(crate) const ALL: [StitchCost; 3] = [
        StitchCost::Unreferenced,
        StitchCost::ReferencedBlocked,
        StitchCost::ReferencedAvailable,
    ];
}

/// The cost-partitioned inactive-pBlock index: one `(size, id)` set per
/// [`StitchCost`] tier, maintained incrementally by the allocator as block
/// activity and sBlock references change. Partitioning moves the cost
/// classification off the allocation hot path: `best_fit_indexed` never
/// evaluates a per-block closure, it just range-probes the right tier.
#[derive(Debug, Default)]
pub(crate) struct TieredPIndex {
    tiers: [BTreeSet<(u64, PBlockId)>; 3],
}

impl TieredPIndex {
    pub fn new() -> Self {
        TieredPIndex::default()
    }

    pub fn insert(&mut self, tier: StitchCost, size: u64, pid: PBlockId) {
        self.tiers[tier as usize].insert((size, pid));
    }

    pub fn remove(&mut self, tier: StitchCost, size: u64, pid: PBlockId) -> bool {
        self.tiers[tier as usize].remove(&(size, pid))
    }

    pub fn contains(&self, tier: StitchCost, size: u64, pid: PBlockId) -> bool {
        self.tiers[tier as usize].contains(&(size, pid))
    }

    /// Total entries across all tiers.
    pub fn len(&self) -> usize {
        self.tiers.iter().map(|t| t.len()).sum()
    }

    /// All pBlocks of exactly `size` bytes within one tier, in id order.
    ///
    /// Exact-match candidates of the same size *and* tier are equivalent to
    /// Algorithm 1 — the allocator uses this to apply per-stream affinity
    /// (prefer the candidate last used by the requesting stream) *after*
    /// [`best_fit_indexed`] has chosen a state, without perturbing the
    /// classification the reference implementation must agree with.
    pub fn equal_size_in_tier(
        &self,
        tier: StitchCost,
        size: u64,
    ) -> impl Iterator<Item = PBlockId> + '_ {
        self.tiers[tier as usize]
            .range((size, 0)..=(size, u64::MAX))
            .map(|&(_, pid)| pid)
    }

    /// The tier a pid of `size` currently sits in, if any (validation).
    pub fn tier_of(&self, size: u64, pid: PBlockId) -> Option<StitchCost> {
        StitchCost::ALL
            .into_iter()
            .find(|&t| self.contains(t, size, pid))
    }

    /// Merges the tiers back into the flat `(size, id)` set the reference
    /// implementation consumes (oracle tests and benchmark setup).
    pub fn to_flat(&self) -> BTreeSet<(u64, PBlockId)> {
        self.tiers.iter().flatten().copied().collect()
    }
}

/// Runs Algorithm 1 over the incremental indexes — the production hot path.
///
/// `s_inactive` is the `(size, id)` set of sBlocks whose parts are all
/// inactive; `p_index` partitions inactive pBlocks by [`StitchCost`].
/// Blocks smaller than `frag_limit` are skipped as *stitching candidates*
/// (the robustness rule of §4.2.3) but still serve exact matches.
pub(crate) fn best_fit_indexed(
    bsize: u64,
    s_inactive: &BTreeSet<(u64, SBlockId)>,
    p_index: &TieredPIndex,
    frag_limit: u64,
) -> BestFit {
    debug_assert!(bsize > 0);
    let [unref, blocked, available] = &p_index.tiers;
    // S1: exact match. sBlocks are checked first: reusing a cached stitched
    // block is the paper's steady-state fast path. Among equal-size exact
    // pBlocks, unreferenced ones are preferred so that blocks woven into
    // cached sBlocks stay available to those sBlocks; ties break on the
    // lowest id, as in the reference scan.
    if let Some(&(_, sid)) = s_inactive.range((bsize, 0)..=(bsize, u64::MAX)).next() {
        return BestFit::ExactS(sid);
    }
    let exact = |tier: &BTreeSet<(u64, PBlockId)>| {
        tier.range((bsize, 0)..=(bsize, u64::MAX))
            .next()
            .map(|&(_, pid)| pid)
    };
    if let Some(pid) = exact(unref) {
        return BestFit::ExactP(pid);
    }
    if let Some(pid) = [exact(blocked), exact(available)]
        .into_iter()
        .flatten()
        .min()
    {
        return BestFit::ExactP(pid);
    }
    // S2: single pBlock larger than the request — the smallest unreferenced
    // one if any exists within a reasonable window, else the smallest
    // overall. The window (4× the request) avoids shredding a huge
    // unreferenced block when a snug referenced one exists.
    let above = |tier: &BTreeSet<(u64, PBlockId)>| tier.range((bsize, u64::MAX)..).next().copied();
    if let Some((size, pid)) = above(unref) {
        if size <= bsize.saturating_mul(4) {
            return BestFit::Single(pid);
        }
    }
    let smallest_any = [above(unref), above(blocked), above(available)]
        .into_iter()
        .flatten()
        .min();
    if let Some((_, pid)) = smallest_any {
        return BestFit::Single(pid);
    }
    // S3/S4: accumulate candidates in descending size order until they cover
    // the request (greedy, as in Algorithm 1 lines 11-13) — in increasing
    // [`StitchCost`] order: unreferenced blocks first, then blocks whose
    // cached views are blocked anyway, and only as a last resort blocks
    // belonging to a fully-inactive cached view (consuming those poisons a
    // ready exact-match candidate and is what sustains re-stitch limit
    // cycles on periodic workloads). Unlike the reference, each pass walks
    // only its own tier: the work is sized by the candidates taken, not by
    // three closure-evaluating sweeps of the whole pool.
    let mut ids = Vec::new();
    let mut sum = 0u64;
    for tier in &p_index.tiers {
        for &(size, pid) in tier.iter().rev() {
            debug_assert!(size < bsize, "larger blocks were handled above");
            if size < frag_limit {
                continue; // too small to be worth stitching
            }
            ids.push(pid);
            sum += size;
            if sum >= bsize {
                return BestFit::Multiple { ids, sum };
            }
        }
    }
    BestFit::Insufficient { ids, sum }
}

/// The pre-index transcription of Algorithm 1: a single flat `(size, id)`
/// set plus a per-block `stitch_cost` closure, making up to three full
/// passes over the pool. Retained as the differential oracle (property
/// tests assert it agrees with [`best_fit_indexed`] on every case) and as
/// the baseline the `bestfit_scaling` benchmark measures against.
pub(crate) fn best_fit_reference(
    bsize: u64,
    s_inactive: &BTreeSet<(u64, SBlockId)>,
    p_inactive: &BTreeSet<(u64, PBlockId)>,
    frag_limit: u64,
    stitch_cost: impl Fn(PBlockId) -> StitchCost,
) -> BestFit {
    debug_assert!(bsize > 0);
    // S1: exact match, sBlocks first; unreferenced exact pBlocks preferred.
    if let Some(&(_, sid)) = s_inactive.range((bsize, 0)..=(bsize, u64::MAX)).next() {
        return BestFit::ExactS(sid);
    }
    let mut exact_any: Option<PBlockId> = None;
    for &(_, pid) in p_inactive.range((bsize, 0)..=(bsize, u64::MAX)) {
        if exact_any.is_none() {
            exact_any = Some(pid);
        }
        if stitch_cost(pid) == StitchCost::Unreferenced {
            return BestFit::ExactP(pid);
        }
    }
    if let Some(pid) = exact_any {
        return BestFit::ExactP(pid);
    }
    // S2: smallest larger block, preferring unreferenced within a 4× window.
    let mut smallest_any: Option<PBlockId> = None;
    for &(size, pid) in p_inactive.range((bsize, u64::MAX)..) {
        if smallest_any.is_none() {
            smallest_any = Some(pid);
        }
        if size > bsize.saturating_mul(4) {
            break;
        }
        if stitch_cost(pid) == StitchCost::Unreferenced {
            return BestFit::Single(pid);
        }
    }
    if let Some(pid) = smallest_any {
        return BestFit::Single(pid);
    }
    // S3/S4: greedy accumulation in descending size order, one full pass per
    // cost tier.
    let mut ids = Vec::new();
    let mut sum = 0u64;
    for pass in StitchCost::ALL {
        for &(size, pid) in p_inactive.iter().rev() {
            debug_assert!(size < bsize, "larger blocks were handled above");
            if size < frag_limit {
                continue; // too small to be worth stitching
            }
            if stitch_cost(pid) != pass {
                continue;
            }
            ids.push(pid);
            sum += size;
            if sum >= bsize {
                return BestFit::Multiple { ids, sum };
            }
        }
    }
    BestFit::Insufficient { ids, sum }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(entries: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
        entries.iter().copied().collect()
    }

    const NO_LIMIT: u64 = 0;

    /// No pBlock referenced by an sBlock.
    fn unreferenced(_: PBlockId) -> StitchCost {
        StitchCost::Unreferenced
    }

    /// Marks `referenced` ids as belonging to an available cached view.
    fn available(referenced: &[PBlockId]) -> impl Fn(PBlockId) -> StitchCost + '_ {
        move |pid| {
            if referenced.contains(&pid) {
                StitchCost::ReferencedAvailable
            } else {
                StitchCost::Unreferenced
            }
        }
    }

    /// Runs both implementations on the same input and asserts they agree;
    /// every test below therefore doubles as a reference/indexed oracle.
    fn best_fit(
        bsize: u64,
        s_inactive: &BTreeSet<(u64, SBlockId)>,
        p_inactive: &BTreeSet<(u64, PBlockId)>,
        frag_limit: u64,
        stitch_cost: impl Fn(PBlockId) -> StitchCost,
    ) -> BestFit {
        let mut index = TieredPIndex::new();
        for &(size, pid) in p_inactive {
            index.insert(stitch_cost(pid), size, pid);
        }
        let reference = best_fit_reference(bsize, s_inactive, p_inactive, frag_limit, stitch_cost);
        let indexed = best_fit_indexed(bsize, s_inactive, &index, frag_limit);
        assert_eq!(
            reference, indexed,
            "indexed best_fit diverged from the reference for bsize={bsize}"
        );
        indexed
    }

    #[test]
    fn exact_sblock_wins_over_everything() {
        let s = set(&[(100, 1)]);
        let p = set(&[(100, 2), (200, 3)]);
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::ExactS(1)
        );
    }

    #[test]
    fn exact_pblock_when_no_sblock() {
        let s = set(&[(50, 1)]);
        let p = set(&[(100, 2)]);
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::ExactP(2)
        );
    }

    #[test]
    fn exact_pblock_prefers_unreferenced_then_lowest_id() {
        let s = BTreeSet::new();
        let p = set(&[(100, 1), (100, 2), (100, 3)]);
        // 1 and 2 belong to available views; 3 is free-standing.
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, available(&[1, 2])),
            BestFit::ExactP(3)
        );
        // All referenced: fall back to the lowest id.
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, available(&[1, 2, 3])),
            BestFit::ExactP(1)
        );
    }

    #[test]
    fn single_picks_smallest_larger_block() {
        let s = BTreeSet::new();
        let p = set(&[(120, 1), (150, 2), (300, 3)]);
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::Single(1)
        );
    }

    #[test]
    fn single_prefers_unreferenced_within_window() {
        let s = BTreeSet::new();
        let p = set(&[(120, 1), (150, 2)]);
        // Block 1 is referenced by a cached sBlock; block 2 is free-standing
        // and within the 4x window: prefer it.
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, available(&[1])),
            BestFit::Single(2)
        );
        // If the only unreferenced block is grotesquely oversized, fall back
        // to the snug referenced one.
        let p2 = set(&[(120, 1), (1000, 2)]);
        assert_eq!(
            best_fit(100, &s, &p2, NO_LIMIT, available(&[1])),
            BestFit::Single(1)
        );
    }

    #[test]
    fn multiple_accumulates_descending() {
        let s = BTreeSet::new();
        let p = set(&[(60, 1), (50, 2), (40, 3), (30, 4)]);
        // 60 + 50 = 110 >= 100: stop there.
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::Multiple {
                ids: vec![1, 2],
                sum: 110
            }
        );
    }

    #[test]
    fn multiple_prefers_unreferenced_candidates() {
        let s = BTreeSet::new();
        let p = set(&[(60, 1), (50, 2), (40, 3)]);
        // Block 1 (the largest) belongs to a cached sBlock; 50+40 covers the
        // request without touching it.
        assert_eq!(
            best_fit(90, &s, &p, NO_LIMIT, available(&[1])),
            BestFit::Multiple {
                ids: vec![2, 3],
                sum: 90
            }
        );
        // When unreferenced blocks are insufficient, referenced ones join.
        assert_eq!(
            best_fit(120, &s, &p, NO_LIMIT, available(&[1])),
            BestFit::Multiple {
                ids: vec![2, 3, 1],
                sum: 150
            }
        );
    }

    #[test]
    fn multiple_exact_sum() {
        let s = BTreeSet::new();
        let p = set(&[(60, 1), (40, 2)]);
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::Multiple {
                ids: vec![1, 2],
                sum: 100
            }
        );
    }

    #[test]
    fn insufficient_returns_all_candidates() {
        let s = BTreeSet::new();
        let p = set(&[(30, 1), (20, 2)]);
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::Insufficient {
                ids: vec![1, 2],
                sum: 50
            }
        );
    }

    #[test]
    fn empty_pools_are_insufficient() {
        let s = BTreeSet::new();
        let p = BTreeSet::new();
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::Insufficient {
                ids: vec![],
                sum: 0
            }
        );
    }

    #[test]
    fn frag_limit_excludes_small_candidates_from_stitching() {
        let s = BTreeSet::new();
        let p = set(&[(60, 1), (10, 2), (50, 3)]);
        // With limit 20 the 10-byte block cannot participate.
        assert_eq!(
            best_fit(100, &s, &p, 20, unreferenced),
            BestFit::Multiple {
                ids: vec![1, 3],
                sum: 110
            }
        );
        // Raising the limit to 60 leaves only block 1 eligible: insufficient.
        assert_eq!(
            best_fit(100, &s, &p, 60, unreferenced),
            BestFit::Insufficient {
                ids: vec![1],
                sum: 60
            }
        );
    }

    #[test]
    fn frag_limit_does_not_block_exact_or_single() {
        let s = BTreeSet::new();
        let p = set(&[(10, 1)]);
        assert_eq!(best_fit(10, &s, &p, 1000, unreferenced), BestFit::ExactP(1));
        let p2 = set(&[(15, 1)]);
        assert_eq!(
            best_fit(10, &s, &p2, 1000, unreferenced),
            BestFit::Single(1)
        );
    }

    #[test]
    fn greedy_prefers_largest_blocks_first() {
        // Greedy takes 90 then 80 (sum 170 >= 100) even though 60+40 would
        // waste less. Linear-time greediness is the paper's efficiency
        // argument (§4.2.2); exactness is restored by the post-split.
        let s = BTreeSet::new();
        let p = set(&[(90, 1), (80, 2), (60, 3), (40, 4)]);
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::Multiple {
                ids: vec![1, 2],
                sum: 170
            }
        );
    }

    #[test]
    fn oversized_unreferenced_block_outside_window_still_serves_single() {
        // The only block is unreferenced but beyond the 4x window: the
        // reference breaks out before the cost check and falls back to it.
        let s = BTreeSet::new();
        let p = set(&[(1000, 1)]);
        assert_eq!(
            best_fit(100, &s, &p, NO_LIMIT, unreferenced),
            BestFit::Single(1)
        );
    }

    #[test]
    fn blocked_tier_is_consumed_before_available_tier() {
        let s = BTreeSet::new();
        let p = set(&[(60, 1), (50, 2), (40, 3)]);
        let cost = |pid: PBlockId| match pid {
            1 => StitchCost::ReferencedAvailable,
            2 => StitchCost::ReferencedBlocked,
            _ => StitchCost::ReferencedBlocked,
        };
        // Blocked blocks 2+3 cover 90 without poisoning the available view.
        assert_eq!(
            best_fit(90, &s, &p, NO_LIMIT, cost),
            BestFit::Multiple {
                ids: vec![2, 3],
                sum: 90
            }
        );
    }

    #[test]
    fn tiered_index_roundtrips_and_reports_tiers() {
        let mut idx = TieredPIndex::new();
        idx.insert(StitchCost::Unreferenced, 10, 1);
        idx.insert(StitchCost::ReferencedAvailable, 20, 2);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.tier_of(10, 1), Some(StitchCost::Unreferenced));
        assert_eq!(idx.tier_of(20, 2), Some(StitchCost::ReferencedAvailable));
        assert_eq!(idx.tier_of(10, 2), None);
        assert_eq!(idx.to_flat(), set(&[(10, 1), (20, 2)]));
        assert!(idx.remove(StitchCost::Unreferenced, 10, 1));
        assert!(!idx.remove(StitchCost::Unreferenced, 10, 1));
        assert_eq!(idx.len(), 1);
    }
}
