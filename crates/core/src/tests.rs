//! Unit tests for the GMLake allocator: every state of Figure 9, the cache
//! lifecycle, convergence, eviction, OOM semantics and data integrity.

use gmlake_alloc_api::{mib, AllocError, AllocRequest, AllocationId, AllocatorCore};
use gmlake_gpu_sim::{CudaDriver, DeviceConfig};

use crate::{GmLakeAllocator, GmLakeConfig};

/// A lake on a 256 MiB test device with byte backing, zero-cost model and a
/// 2 MiB fragmentation limit (so splits actually happen at test sizes).
fn lake() -> GmLakeAllocator {
    lake_with(DeviceConfig::small_test(), test_config())
}

/// Tests of the split/stitch machinery run with the Figure-9 halves-cache
/// enabled (the default keeps it off; see `GmLakeConfig::cache_split_halves`).
fn test_config() -> GmLakeConfig {
    GmLakeConfig::default()
        .with_frag_limit(mib(2))
        .with_cache_split_halves(true)
}

fn lake_with(dev: DeviceConfig, cfg: GmLakeConfig) -> GmLakeAllocator {
    GmLakeAllocator::new(CudaDriver::new(dev), cfg)
}

#[test]
fn fresh_allocation_is_s4_direct_pblock() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(a.size, mib(10));
    assert_eq!(l.state_counters().insufficient, 1);
    assert_eq!(
        l.state_counters().stitches,
        0,
        "no candidates: direct pBlock"
    );
    assert_eq!(l.reserved_physical(), mib(10));
    assert_eq!(l.driver().phys_in_use(), mib(10));
    l.validate().unwrap();
    l.deallocate(a.id).unwrap();
    assert_eq!(
        l.reserved_physical(),
        mib(10),
        "Update never frees physical"
    );
    l.validate().unwrap();
}

#[test]
fn non_chunk_sizes_round_up_to_2mib_multiple() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(5))).unwrap();
    assert_eq!(a.size, mib(6), "5 MiB rounds to 3 chunks");
    assert_eq!(a.requested, mib(5));
    assert_eq!(a.rounding_waste(), mib(1));
    l.validate().unwrap();
}

#[test]
fn free_then_same_size_is_exact_match() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    l.deallocate(a.id).unwrap();
    let b = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(b.va, a.va, "same pBlock reused");
    assert_eq!(l.state_counters().exact, 1);
    // The first allocation created its 5 chunks in one batched driver call;
    // the exact match created nothing.
    assert_eq!(l.driver().stats().create.calls, 1, "no new create calls");
    assert_eq!(
        l.driver().snapshot().phys_created_total,
        mib(10),
        "no new chunks"
    );
    l.validate().unwrap();
}

#[test]
fn s2_split_creates_remainder_and_cached_sblock() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    l.deallocate(a.id).unwrap();
    // 4 MiB out of an inactive 10 MiB block: split 4 + 6.
    let b = l.allocate(AllocRequest::new(mib(4))).unwrap();
    assert_eq!(b.size, mib(4));
    let c = l.state_counters();
    assert_eq!(c.single, 1);
    assert_eq!(c.splits, 1);
    assert_eq!(c.stitches, 1, "halves cached as an sBlock");
    assert_eq!(l.reserved_physical(), mib(10), "no new physical memory");
    assert_eq!(l.pblock_count(), 2);
    assert_eq!(l.sblock_count(), 1);
    l.validate().unwrap();
    // Free the 4 MiB: now a 10 MiB request exact-matches the cached sBlock.
    l.deallocate(b.id).unwrap();
    let d = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(d.size, mib(10));
    assert_eq!(l.state_counters().exact, 1);
    assert_eq!(l.reserved_physical(), mib(10));
    l.validate().unwrap();
}

#[test]
fn split_does_not_cache_halves_by_default() {
    let mut l = lake_with(
        DeviceConfig::small_test(),
        GmLakeConfig::default().with_frag_limit(mib(2)),
    );
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    l.deallocate(a.id).unwrap();
    let b = l.allocate(AllocRequest::new(mib(4))).unwrap();
    assert_eq!(b.size, mib(4), "split still happens");
    assert_eq!(l.state_counters().splits, 1);
    assert_eq!(l.state_counters().stitches, 0, "no halves sBlock");
    assert_eq!(l.sblock_count(), 0);
    // A 10 MiB re-request is served by stitching the two halves (S3), with
    // no new physical memory.
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(c.size, mib(10));
    assert_eq!(l.reserved_physical(), mib(10));
    assert_eq!(l.state_counters().multi, 1);
    l.validate().unwrap();
}

#[test]
fn s2_whole_block_when_remainder_below_frag_limit() {
    let mut l = lake_with(
        DeviceConfig::small_test(),
        GmLakeConfig::default().with_frag_limit(mib(8)),
    );
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    l.deallocate(a.id).unwrap();
    // Remainder would be 4 MiB < 8 MiB limit: use the block whole.
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    assert_eq!(b.size, mib(10), "whole block assigned");
    assert_eq!(l.state_counters().splits, 0);
    assert_eq!(l.state_counters().stitches, 0);
    l.validate().unwrap();
}

#[test]
fn s3_stitches_freed_blocks_without_new_memory() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let before = l.driver().stats().create.calls;
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(c.size, mib(10));
    assert_eq!(l.state_counters().multi, 1);
    assert_eq!(l.state_counters().stitches, 1);
    assert_eq!(l.driver().stats().create.calls, before, "zero cuMemCreate");
    assert_eq!(l.reserved_physical(), mib(10));
    l.validate().unwrap();
}

#[test]
fn s3_with_split_of_final_candidate() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(8))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    // Need 10: candidates desc = [8, 6] sum 14 > 10; final candidate 6 is
    // split into 2 + 4 (need = 10 - 8 = 2).
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(c.size, mib(10), "stitched size is exact");
    let counters = l.state_counters();
    assert_eq!(counters.multi, 1);
    assert_eq!(counters.splits, 1);
    // Stitches: halves-cache sBlock + the allocation sBlock.
    assert_eq!(counters.stitches, 2);
    assert_eq!(l.reserved_physical(), mib(14), "no new physical");
    l.validate().unwrap();
    // The 4 MiB remainder is still allocatable.
    let d = l.allocate(AllocRequest::new(mib(4))).unwrap();
    assert_eq!(l.reserved_physical(), mib(14));
    l.deallocate(d.id).unwrap();
    l.deallocate(c.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn s4_tops_up_with_fresh_chunks_and_stitches() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    l.deallocate(a.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(c.size, mib(10));
    let counters = l.state_counters();
    assert_eq!(counters.insufficient, 2, "first alloc + this one");
    assert_eq!(counters.stitches, 1);
    assert_eq!(
        l.reserved_physical(),
        mib(10),
        "4 cached + 6 fresh, no duplicate backing"
    );
    l.validate().unwrap();
}

#[test]
fn update_keeps_sblock_for_reuse() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap();
    l.deallocate(c.id).unwrap();
    // Second 10 MiB request: the cached sBlock exact-matches; no new stitch.
    let stitches_before = l.state_counters().stitches;
    let d = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(d.va, c.va, "same stitched VA reused");
    assert_eq!(l.state_counters().stitches, stitches_before);
    assert_eq!(l.state_counters().exact, 1);
    l.validate().unwrap();
}

#[test]
fn sblock_sharing_a_part_is_unavailable_while_part_active() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap(); // stitched [6,4]
    l.deallocate(c.id).unwrap();
    // Take the 4 MiB pBlock directly; the 10 MiB sBlock shares it.
    let d = l.allocate(AllocRequest::new(mib(4))).unwrap();
    // A 10 MiB request must NOT reuse the sBlock now (part is active).
    let e = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_ne!(e.va, c.va, "sBlock with an active part must not be reused");
    l.validate().unwrap();
    l.deallocate(d.id).unwrap();
    l.deallocate(e.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn data_survives_across_stitched_boundary() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap();
    let driver = l.driver().clone();
    // Write across what is physically a block boundary (parts are 6 + 4).
    let boundary = c.va.offset(mib(6) - 3);
    driver.memcpy_htod(boundary, b"defragmented").unwrap();
    let mut buf = [0u8; 12];
    driver.memcpy_dtoh(boundary, &mut buf).unwrap();
    assert_eq!(&buf, b"defragmented");
    l.validate().unwrap();
}

#[test]
fn convergence_after_warmup_iterations() {
    let mut l = lake();
    // An irregular-ish periodic pattern: grow, shrink, stitch.
    let sizes = [mib(4), mib(6), mib(10), mib(8), mib(2)];
    for iter in 0..4 {
        let ids: Vec<AllocationId> = sizes
            .iter()
            .map(|&s| l.allocate(AllocRequest::new(s)).unwrap().id)
            .collect();
        for id in ids {
            l.deallocate(id).unwrap();
        }
        l.iteration_boundary();
        l.validate().unwrap();
        if iter >= 1 {
            assert!(
                l.is_converged(),
                "iteration {iter} should replay exact matches only: {:?}",
                l.state_counters()
            );
        }
    }
    // Steady state: reserved memory equals the peak working set, and no
    // further stitches/splits/creates happen.
    let stitches = l.state_counters().stitches;
    let creates = l.driver().stats().create.calls;
    let ids: Vec<AllocationId> = sizes
        .iter()
        .map(|&s| l.allocate(AllocRequest::new(s)).unwrap().id)
        .collect();
    for id in ids {
        l.deallocate(id).unwrap();
    }
    assert_eq!(l.state_counters().stitches, stitches);
    assert_eq!(l.driver().stats().create.calls, creates);
}

#[test]
fn stitchfree_evicts_lru_sblocks() {
    let mut l = lake_with(
        DeviceConfig::small_test(),
        test_config().with_max_sblocks(1),
    );
    // Create two distinct stitched sBlocks.
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap(); // sBlock #1
    l.deallocate(c.id).unwrap();
    let d = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let e = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(d.id).unwrap();
    l.deallocate(e.id).unwrap();
    // A second stitched allocation overflows the capacity of 1, but its
    // sBlocks are protected while parts are active: the pool may overshoot.
    let f = l.allocate(AllocRequest::new(mib(8))).unwrap(); // stitches
    assert!(l.sblock_count() > 1, "soft overshoot while blocks are busy");
    assert_eq!(l.state_counters().evictions, 0);
    // Once everything is idle, the next allocation triggers StitchFree and
    // evicts inactive structures (those not sharing the 6 MiB block with g).
    l.deallocate(f.id).unwrap();
    let g = l.allocate(AllocRequest::new(mib(6))).unwrap();
    assert!(l.state_counters().evictions >= 1);
    assert!(l.sblock_count() <= 2, "trimmed toward the cap");
    l.deallocate(g.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn release_cached_returns_physical_memory() {
    let driver = CudaDriver::new(DeviceConfig::small_test());
    let mut l = GmLakeAllocator::new(driver.clone(), test_config());
    let a = l.allocate(AllocRequest::new(mib(12))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(8))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    assert_eq!(driver.phys_in_use(), mib(20));
    let released = l.release_cached();
    assert_eq!(released, mib(20));
    assert_eq!(driver.phys_in_use(), 0);
    assert_eq!(l.pblock_count(), 0);
    assert_eq!(l.sblock_count(), 0);
    l.validate().unwrap();
}

#[test]
fn release_cached_spares_live_allocations() {
    let driver = CudaDriver::new(DeviceConfig::small_test());
    let mut l = GmLakeAllocator::new(driver.clone(), test_config());
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(b.id).unwrap();
    let released = l.release_cached();
    assert_eq!(released, mib(6));
    assert_eq!(driver.phys_in_use(), mib(4));
    // The live allocation still works.
    driver.memcpy_htod(a.va, &[1, 2, 3]).unwrap();
    l.validate().unwrap();
}

#[test]
fn release_cached_tears_down_with_batched_driver_calls() {
    // A 64 MiB pBlock holds 32 chunks; surrendering it must cost three
    // driver round-trips (batched unmap, batched release, address free) —
    // not one release per chunk, which is what an OOM-rescue storm used to
    // pay.
    let driver = CudaDriver::new(DeviceConfig::small_test());
    let mut l = GmLakeAllocator::new(driver.clone(), test_config());
    let a = l.allocate(AllocRequest::new(mib(64))).unwrap();
    l.deallocate(a.id).unwrap();
    let before = driver.stats();
    let released = l.release_cached();
    assert_eq!(released, mib(64));
    let after = driver.stats();
    assert_eq!(after.release.calls - before.release.calls, 1, "one batch");
    assert_eq!(after.unmap.calls - before.unmap.calls, 1, "one range unmap");
    assert_eq!(
        after.total_calls() - before.total_calls(),
        3,
        "unmap_range + release_batch + address_free"
    );
    l.validate().unwrap();
}

#[test]
fn stitching_survives_where_caching_allocator_ooms() {
    // 20 MiB device. Free 10 + 10, then ask for 20: BFC cannot merge two
    // separate segments; GMLake stitches them.
    let dev = DeviceConfig::small_test()
        .with_capacity(mib(20))
        .with_backing(false);
    let mut l = lake_with(dev, test_config());
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(10))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(20))).unwrap();
    assert_eq!(c.size, mib(20));
    assert_eq!(l.driver().phys_in_use(), mib(20));
    l.validate().unwrap();
}

#[test]
fn true_oom_is_reported_and_state_intact() {
    let dev = DeviceConfig::small_test()
        .with_capacity(mib(20))
        .with_backing(false);
    let mut l = lake_with(dev, test_config());
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    let err = l.allocate(AllocRequest::new(mib(20))).unwrap_err();
    assert!(matches!(err, AllocError::OutOfMemory { .. }), "{err}");
    assert_eq!(l.stats().oom_count, 1);
    assert_eq!(l.state_counters().oom, 1);
    l.validate().unwrap();
    // Still usable afterwards.
    let b = l.allocate(AllocRequest::new(mib(10))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn oom_retry_path_releases_cache_and_succeeds() {
    let dev = DeviceConfig::small_test()
        .with_capacity(mib(20))
        .with_backing(false);
    let mut l = lake_with(dev, test_config());
    // Cache 10 + 6 as two idle pBlocks; frag limit 2 MiB.
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    // 20 MiB: stitching gives 16, S4 needs 4 fresh — device only has 4 left,
    // so this actually succeeds without the fallback.
    let c = l.allocate(AllocRequest::new(mib(20))).unwrap();
    assert_eq!(c.size, mib(20));
    l.deallocate(c.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn small_allocations_use_the_splitting_pool() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(4096)).unwrap();
    assert_eq!(a.size, 4096);
    assert_eq!(l.pblock_count(), 0, "no pBlock for small requests");
    // Small pool reserves one 2 MiB segment.
    assert_eq!(l.stats().reserved_bytes, mib(2));
    l.deallocate(a.id).unwrap();
    assert_eq!(l.stats().active_bytes, 0);
    l.validate().unwrap();
}

#[test]
fn stats_roll_up_small_and_large() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(4096)).unwrap();
    let b = l.allocate(AllocRequest::new(mib(10))).unwrap();
    let s = l.stats();
    assert_eq!(s.active_bytes, 4096 + mib(10));
    assert_eq!(s.reserved_bytes, mib(2) + mib(10));
    assert_eq!(s.alloc_count, 2);
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    assert_eq!(l.stats().active_bytes, 0);
    assert_eq!(l.stats().free_count, 2);
    l.validate().unwrap();
}

#[test]
fn zero_size_and_unknown_ids_error() {
    let mut l = lake();
    assert_eq!(
        l.allocate(AllocRequest::new(0)).unwrap_err(),
        AllocError::ZeroSize
    );
    assert!(matches!(
        l.deallocate(AllocationId::new(77)).unwrap_err(),
        AllocError::UnknownAllocation(_)
    ));
    // Double free.
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    l.deallocate(a.id).unwrap();
    assert!(matches!(
        l.deallocate(a.id).unwrap_err(),
        AllocError::UnknownAllocation(_)
    ));
}

#[test]
fn drop_leaves_device_quiescent() {
    let driver = CudaDriver::new(DeviceConfig::small_test());
    {
        let mut l = GmLakeAllocator::new(driver.clone(), test_config());
        let _a = l.allocate(AllocRequest::new(mib(4))).unwrap();
        let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
        let _small = l.allocate(AllocRequest::new(1024)).unwrap();
        l.deallocate(b.id).unwrap();
        // Build an sBlock too.
        let _c = l.allocate(AllocRequest::new(mib(6))).unwrap();
        assert!(driver.phys_in_use() > 0);
    }
    assert_eq!(driver.phys_in_use(), 0);
    assert!(driver.snapshot().is_quiescent());
}

#[test]
fn peak_reserved_tracks_stitching_efficiency() {
    // After a grow/shrink/grow cycle, reserved memory should equal the peak
    // active set — the paper's "full memory utilization without
    // fragmentation" claim for the allocator's steady state (§4.2.1).
    let mut l = lake();
    let mut ids = Vec::new();
    for _ in 0..8 {
        ids.push(l.allocate(AllocRequest::new(mib(6))).unwrap().id);
    }
    for id in ids.drain(..) {
        l.deallocate(id).unwrap();
    }
    // Reallocate the same total volume in different shapes.
    for _ in 0..4 {
        ids.push(l.allocate(AllocRequest::new(mib(12))).unwrap().id);
    }
    assert_eq!(l.reserved_physical(), mib(48), "reuse, not growth");
    let s = l.stats();
    assert_eq!(s.peak_reserved_bytes, mib(48));
    assert!((s.utilization() - 1.0).abs() < 1e-9);
    l.validate().unwrap();
}

#[test]
fn memory_map_describes_pools() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap(); // stitches
    let map = l.memory_map();
    assert!(map.contains("pPool: 2 blocks (2 active)"), "{map}");
    assert!(map.contains("sPool: 1 stitched views"), "{map}");
    assert!(map.contains("ASSIGNED"), "{map}");
    l.deallocate(c.id).unwrap();
    let map = l.memory_map();
    assert!(map.contains("(0 active)"), "{map}");
}

#[test]
fn deallocate_is_cheap_no_driver_calls() {
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(10))).unwrap();
    let before = l.driver().stats();
    l.deallocate(a.id).unwrap();
    let after = l.driver().stats();
    assert_eq!(before.unmap.calls, after.unmap.calls);
    assert_eq!(before.release.calls, after.release.calls);
    assert_eq!(before.mem_free.calls, after.mem_free.calls);
}

#[test]
fn compact_gcs_blocked_views_and_keeps_ready_ones() {
    let mut l = lake();
    // Build a cached stitched view: 4 + 6 freed, 10 stitched, then freed.
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(l.state_counters().stitches, 1);
    l.deallocate(c.id).unwrap();
    // The view is fully inactive (ready): compact must keep it.
    l.compact();
    l.validate().unwrap();
    assert_eq!(l.sblock_count(), 1, "ready view survives compaction");
    let c2 = l.allocate(AllocRequest::new(mib(10))).unwrap();
    assert_eq!(l.state_counters().exact, 1, "still serves an exact match");
    // While the view is assigned it is not GC-able either.
    l.compact();
    assert_eq!(l.sblock_count(), 1);
    // Block the view: hold one of its parts through a same-size allocation.
    l.deallocate(c2.id).unwrap();
    let hold = l.allocate(AllocRequest::new(mib(4))).unwrap();
    assert!(l.sblock_count() >= 1);
    let evictions_before = l.state_counters().evictions;
    l.compact();
    l.validate().unwrap();
    assert_eq!(l.sblock_count(), 0, "blocked view is GC'ed");
    assert_eq!(l.state_counters().evictions, evictions_before + 1);
    l.deallocate(hold.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn compact_releases_dead_fragments_only() {
    let mut l = lake_with(
        DeviceConfig::small_test(),
        GmLakeConfig::default().with_frag_limit(mib(6)),
    );
    // A 4 MiB block is below the 6 MiB fragmentation limit: once freed and
    // unreferenced it is stranded capacity.
    let small = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let big = l.allocate(AllocRequest::new(mib(8))).unwrap();
    l.deallocate(small.id).unwrap();
    l.deallocate(big.id).unwrap();
    assert_eq!(l.reserved_physical(), mib(12));
    let released = l.compact();
    l.validate().unwrap();
    assert_eq!(released, mib(4), "only the sub-limit fragment is released");
    assert_eq!(
        l.reserved_physical(),
        mib(8),
        "stitchable block stays cached"
    );
    assert_eq!(l.stats().reserved_bytes, l.driver().phys_in_use());
}

#[test]
fn compact_on_empty_allocator_is_a_noop() {
    let mut l = lake();
    assert_eq!(l.compact(), 0);
    l.validate().unwrap();
}

#[test]
fn slab_slots_are_recycled_after_destroy() {
    // Destroying blocks vacates slab slots; later blocks reuse them. The
    // reuse-after-destroy invariants are part of `validate()`.
    let mut l = lake();
    let a = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let b = l.allocate(AllocRequest::new(mib(6))).unwrap();
    l.deallocate(a.id).unwrap();
    l.deallocate(b.id).unwrap();
    let c = l.allocate(AllocRequest::new(mib(10))).unwrap(); // stitched view
    l.deallocate(c.id).unwrap();
    assert_eq!(l.pblock_count(), 2);
    assert_eq!(l.sblock_count(), 1);
    assert_eq!(l.release_cached(), mib(10), "all structures destroyed");
    assert_eq!((l.pblock_count(), l.sblock_count()), (0, 0));
    l.validate().unwrap();
    // Fresh blocks land in the recycled slots; every index stays coherent.
    let d = l.allocate(AllocRequest::new(mib(8))).unwrap();
    let e = l.allocate(AllocRequest::new(mib(2))).unwrap();
    assert_eq!(l.pblock_count(), 2);
    l.validate().unwrap();
    l.deallocate(d.id).unwrap();
    l.deallocate(e.id).unwrap();
    let f = l.allocate(AllocRequest::new(mib(10))).unwrap(); // restitches
    assert_eq!(f.size, mib(10));
    l.validate().unwrap();
}

mod fault_injection {
    //! Property: under a random program with one random transient driver
    //! fault injected at a random point, every operation either succeeds
    //! or rolls back completely — `validate()` holds and `MemStats`
    //! reconciles against the test's own ledger after *every* step, and
    //! the fault journal shows no leaked reservations at the end
    //! (`mem_address_free` past a commit point may orphan exactly one VA
    //! reservation; see `docs/fault-model.md`).

    use super::*;
    use gmlake_gpu_sim::{FaultOp, FaultPlan};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Alloc(u64),
        Free(usize),
        Compact,
        ReleaseCached,
        Boundary,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            6 => (1u64..16 * 1024 * 1024).prop_map(Op::Alloc),
            5 => any::<usize>().prop_map(Op::Free),
            1 => Just(Op::Compact),
            1 => Just(Op::ReleaseCached),
            1 => Just(Op::Boundary),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn single_fault_rolls_back_cleanly(
            ops in proptest::collection::vec(op_strategy(), 1..100),
            op_idx in 0usize..FaultOp::COUNT,
            nth in 1u64..24,
        ) {
            let dev = DeviceConfig::small_test()
                .with_capacity(mib(64))
                .with_backing(false);
            let mut l = lake_with(dev, test_config().with_max_sblocks(12));
            let fault_op = FaultOp::ALL[op_idx];
            l.driver().set_fault_plan(FaultPlan::new().fail_nth(fault_op, nth));

            // The test's own ledger of live tensors: id and rounded size.
            let mut live: Vec<(AllocationId, u64)> = Vec::new();
            let mut expected_active: u64 = 0;
            for op in &ops {
                match op {
                    Op::Alloc(size) => match l.allocate(AllocRequest::new(*size)) {
                        Ok(a) => {
                            expected_active += a.size;
                            live.push((a.id, a.size));
                        }
                        Err(AllocError::OutOfMemory { .. })
                        | Err(AllocError::DriverFault { .. }) => {}
                        Err(e) => panic!("unexpected allocator error: {e}"),
                    },
                    Op::Free(n) => {
                        if !live.is_empty() {
                            let (id, size) = live.swap_remove(n % live.len());
                            match l.deallocate(id) {
                                Ok(()) => expected_active -= size,
                                Err(AllocError::DriverFault { .. }) => {
                                    // Rolled back: the tensor is still live.
                                    live.push((id, size));
                                }
                                Err(e) => panic!("unexpected free error: {e}"),
                            }
                        }
                    }
                    Op::Compact => {
                        l.compact();
                    }
                    Op::ReleaseCached => {
                        l.release_cached();
                    }
                    Op::Boundary => l.iteration_boundary(),
                }
                l.validate().unwrap();
                prop_assert_eq!(l.stats().active_bytes, expected_active);
            }

            // Drain with faults off: the transient fault is consumed (or
            // never fired), so full teardown must reconcile to zero.
            l.driver().clear_fault_plan();
            for (id, _) in live.drain(..) {
                l.deallocate(id).unwrap();
            }
            l.release_cached();
            l.validate().unwrap();
            prop_assert_eq!(l.stats().active_bytes, 0);
            let journal = l.fault_journal();
            if fault_op == FaultOp::AddressFree {
                prop_assert!(journal.orphan_vas <= 1 && journal.orphan_chunks == 0,
                    "{:?}", journal);
            } else {
                prop_assert!(journal.is_leak_free(),
                    "single {:?} fault leaked: {:?}", fault_op, journal);
            }
            if journal.orphan_vas == 0 {
                prop_assert_eq!(l.stats().reserved_bytes, l.driver().phys_in_use());
            }
        }
    }
}

mod bestfit_oracle {
    //! Differential oracle: after every step of a random allocator program,
    //! the indexed `BestFit` must agree *exactly* with the retained
    //! reference implementation (and every incremental index must satisfy
    //! `validate()`).

    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        /// Allocate this many bytes (rounded internally).
        Alloc(u64),
        /// Free the n-th (mod live count) live allocation.
        Free(usize),
        /// Proactive defrag pass (sPool GC + dead-fragment release).
        Compact,
        /// Surrender every cached structure.
        ReleaseCached,
        /// Iteration boundary (convergence accounting).
        Boundary,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            6 => (1u64..16 * 1024 * 1024).prop_map(Op::Alloc),
            5 => any::<usize>().prop_map(Op::Free),
            1 => Just(Op::Compact),
            1 => Just(Op::ReleaseCached),
            1 => Just(Op::Boundary),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn indexed_bestfit_matches_reference(
            ops in proptest::collection::vec(op_strategy(), 1..120)
        ) {
            let dev = DeviceConfig::small_test()
                .with_capacity(mib(64))
                .with_backing(false);
            // A tiny sPool keeps `StitchFree` eviction in play.
            let mut l = lake_with(dev, test_config().with_max_sblocks(12));
            let mut live: Vec<AllocationId> = Vec::new();
            let probes = [
                mib(2), mib(3), mib(4), mib(6), mib(10), mib(16), mib(40), mib(200),
            ];
            for op in &ops {
                match op {
                    Op::Alloc(size) => match l.allocate(AllocRequest::new(*size)) {
                        Ok(a) => live.push(a.id),
                        Err(AllocError::OutOfMemory { .. }) => {}
                        Err(e) => panic!("unexpected allocator error: {e}"),
                    },
                    Op::Free(n) => {
                        if !live.is_empty() {
                            let id = live.swap_remove(n % live.len());
                            l.deallocate(id).unwrap();
                        }
                    }
                    Op::Compact => {
                        l.compact();
                    }
                    Op::ReleaseCached => {
                        l.release_cached();
                    }
                    Op::Boundary => l.iteration_boundary(),
                }
                l.validate().unwrap();
                for &p in &probes {
                    l.assert_bestfit_agrees(p);
                }
            }
        }
    }
}

/// Defrag-aware `StitchFree` (PR 8): builds a converged pool holding three
/// evictable views — `S_uniq` (LRU-oldest, over *uniquely referenced*
/// parts), and `S_extra`/`S_donor` (newer, sharing all of `S_extra`'s parts)
/// — then triggers one eviction with a stitch over disjoint fresh parts.
/// Pure LRU (`evict_scan_window = 1`) destroys `S_uniq` and the follow-up
/// request must rebuild the destroyed view; the shared-parts-aware window
/// evicts `S_extra` (whose parts all live on inside `S_donor`) for free.
fn cannibalization_scenario(window: usize) -> GmLakeAllocator {
    let cfg = GmLakeConfig::default()
        .with_frag_limit(mib(2))
        .with_max_sblocks(3)
        .with_evict_scan_window(window);
    let mut l = lake_with(DeviceConfig::small_test(), cfg);
    // Raw material, all held live so BestFit cannot mix the groups:
    // a* become S_uniq's parts, b* S_donor's, c* the trigger's.
    let a1 = l.allocate(AllocRequest::new(mib(2))).unwrap();
    let a2 = l.allocate(AllocRequest::new(mib(4))).unwrap();
    let bs: Vec<_> = [4, 4, 4, 2]
        .iter()
        .map(|&m| l.allocate(AllocRequest::new(mib(m))).unwrap())
        .collect();
    let cs: Vec<_> = (0..4)
        .map(|_| l.allocate(AllocRequest::new(mib(4))).unwrap())
        .collect();
    // S_uniq [4, 2]: its parts are referenced by no other view, ever.
    l.deallocate(a1.id).unwrap();
    l.deallocate(a2.id).unwrap();
    let u = l.allocate(AllocRequest::new(mib(6))).unwrap();
    // S_donor [4, 4, 4, 2], then S_extra [4, 4, 4] re-stitching three of
    // S_donor's freed parts (S_uniq's parts are active behind `u`, the
    // trigger material behind `cs`).
    for b in &bs {
        l.deallocate(b.id).unwrap();
    }
    let d = l.allocate(AllocRequest::new(mib(14))).unwrap();
    l.deallocate(d.id).unwrap();
    let e = l.allocate(AllocRequest::new(mib(12))).unwrap();
    assert_eq!(l.state_counters().stitches, 3, "S_uniq, S_donor, S_extra");
    // Free order fixes LRU recency: S_uniq oldest, then S_extra; an exact
    // re-use refresh makes S_donor the most recent.
    l.deallocate(u.id).unwrap();
    l.deallocate(e.id).unwrap();
    let g = l.allocate(AllocRequest::new(mib(14))).unwrap();
    assert_eq!(l.state_counters().exact, 1, "refresh hit S_donor exactly");
    l.deallocate(g.id).unwrap();
    // Trigger: a 16 MiB stitch over the four fresh 4 MiB c-parts pushes the
    // sPool to 4 > max_sblocks=3 and forces exactly one StitchFree pass
    // while S_uniq, S_extra and S_donor are all evictable.
    for c in &cs {
        l.deallocate(c.id).unwrap();
    }
    let t = l.allocate(AllocRequest::new(mib(16))).unwrap();
    assert_eq!(l.state_counters().stitches, 4, "trigger stitch");
    assert_eq!(l.state_counters().evictions, 1, "one StitchFree eviction");
    assert_eq!(l.sblock_count(), 3);
    l.deallocate(t.id).unwrap();
    l.validate().unwrap();
    l
}

#[test]
fn stitchfree_window_prefers_shared_part_victims() {
    let mut l = cannibalization_scenario(8);
    let exact_before = l.state_counters().exact;
    // S_extra was the victim (every part survives inside S_donor), so the
    // converged 6 MiB request still exact-matches S_uniq: zero driver work.
    let r = l.allocate(AllocRequest::new(mib(6))).unwrap();
    assert_eq!(l.state_counters().exact, exact_before + 1);
    assert_eq!(l.state_counters().stitches, 4, "no re-stitch");
    assert_eq!(l.state_counters().evictions, 1, "no further eviction");
    l.deallocate(r.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn stitchfree_pure_lru_cannibalizes_converged_views() {
    let mut l = cannibalization_scenario(1);
    let exact_before = l.state_counters().exact;
    // Pure LRU evicted S_uniq, so the same 6 MiB request has to rebuild the
    // destroyed view from its now-unreferenced parts — a stitch (and a
    // knock-on eviction) the wider scan window avoids entirely.
    let r = l.allocate(AllocRequest::new(mib(6))).unwrap();
    assert_eq!(l.state_counters().exact, exact_before, "no exact match");
    assert_eq!(
        l.state_counters().stitches,
        5,
        "S_uniq had to be re-stitched"
    );
    l.deallocate(r.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn exact_match_prefers_same_stream_pblock() {
    use gmlake_alloc_api::StreamId;
    let mut l = lake();
    // Two equal-size pBlocks, last used by streams 1 and 2 respectively.
    // Ids are sequential, so a plain exact match would always hand out the
    // first (lowest-id) block.
    let a = l
        .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(1))
        .unwrap();
    let b = l
        .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(2))
        .unwrap();
    l.free_on_stream(a.id, StreamId(1)).unwrap();
    l.free_on_stream(b.id, StreamId(2)).unwrap();
    // Stream 2 gets its own warm block even though stream 1's has the
    // lower id; stream 1 still gets its own.
    let c = l
        .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(2))
        .unwrap();
    assert_eq!(c.va, b.va, "stream-2 affinity");
    let d = l
        .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(1))
        .unwrap();
    assert_eq!(d.va, a.va, "stream-1 affinity");
    // Streamless callers are untouched by affinity: lowest id wins.
    l.free_on_stream(c.id, StreamId(2)).unwrap();
    l.free_on_stream(d.id, StreamId(1)).unwrap();
    let e = l.allocate(AllocRequest::new(mib(4))).unwrap();
    assert_eq!(e.va, a.va, "streamless exact match takes the lowest id");
    l.deallocate(e.id).unwrap();
    l.validate().unwrap();
}

#[test]
fn exact_match_prefers_same_stream_sblock() {
    use gmlake_alloc_api::StreamId;
    let mut l = lake();
    // Build two identical 10 MiB stitched views (4+6 each), freed on
    // streams 1 and 2.
    let mut views = Vec::new();
    for stream in [StreamId(1), StreamId(2)] {
        let a = l
            .alloc_on_stream(AllocRequest::new(mib(4)), stream)
            .unwrap();
        let b = l
            .alloc_on_stream(AllocRequest::new(mib(6)), stream)
            .unwrap();
        l.free_on_stream(a.id, stream).unwrap();
        l.free_on_stream(b.id, stream).unwrap();
        let v = l
            .alloc_on_stream(AllocRequest::new(mib(10)), stream)
            .unwrap();
        views.push(v);
    }
    let stitches = l.state_counters().stitches;
    for (v, stream) in views.iter().zip([StreamId(1), StreamId(2)]) {
        l.free_on_stream(v.id, stream).unwrap();
    }
    // Stream 2's request exact-matches its *own* cached view, not the
    // lower-id one stitched for stream 1.
    let r = l
        .alloc_on_stream(AllocRequest::new(mib(10)), StreamId(2))
        .unwrap();
    assert_eq!(r.va, views[1].va, "stream-2 sBlock affinity");
    assert_eq!(l.state_counters().stitches, stitches, "pure reuse");
    l.free_on_stream(r.id, StreamId(2)).unwrap();
    l.validate().unwrap();
}
