//! The GMLake allocator (§3.3 and §4 of the paper).
//!
//! Large requests (≥ 2 MiB) are served by the virtual-memory-stitching
//! machinery: `BestFit` (Algorithm 1) classifies each request into one of
//! the states S1–S4 of Figure 9 and the corresponding post-processing runs:
//!
//! * **S1** exact match — hand out a cached sBlock/pBlock unchanged;
//! * **S2** single larger pBlock — `Split` it (and cache an sBlock stitching
//!   the two halves so the original size can exact-match later);
//! * **S3** multiple pBlocks — `Stitch` them into a new sBlock (splitting
//!   the final candidate so the stitched size matches exactly);
//! * **S4** insufficient — `Alloc` fresh physical chunks, stitching them
//!   with whatever leftovers exist;
//! * **S5** — out of memory.
//!
//! Deallocation is the `Update` function: it only flips activity state;
//! physical memory stays cached in the pools. `StitchFree` evicts
//! least-recently-used inactive sBlock *structures* when the sPool exceeds
//! its capacity; actual physical memory is surrendered only by
//! [`GmLakeAllocator::release_cached`] (the OOM fallback) or on drop.
//!
//! # Hot-path data structures
//!
//! Blocks live in dense [`Slab`] arenas (ids are sequential, lookups are an
//! indexed load). Inactive pBlocks are indexed by a [`TieredPIndex`] — one
//! `(size, id)` set per [`StitchCost`] tier, maintained *incrementally*:
//! every structural event (activity flip, stitch, split, sBlock teardown)
//! re-tiers only the blocks whose classification could actually have
//! changed, so `BestFit` is a few `O(log n)` range probes instead of three
//! closure-evaluating sweeps of the pool. Each sBlock carries an
//! active-part counter (fully-inactive ⟺ counter is zero) and eviction
//! victims come from an `(lru_tick, id)` set instead of an `O(n)` scan.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use gmlake_alloc_api::{
    AllocError, AllocRequest, Allocation, AllocationId, AllocatorCore, MemStats, StreamId, VirtAddr,
};
use gmlake_caching::CachingAllocator;
use gmlake_gpu_sim::{CudaDriver, DriverError, PhysHandle};
use gmlake_telemetry::log::{self as tlog, Level};
use gmlake_telemetry::{EventKind, PoolTelemetry};

use crate::bestfit::{best_fit_indexed, best_fit_reference, BestFit, StitchCost, TieredPIndex};
use crate::block::{PBlock, PBlockId, SBlock, SBlockId, Target};
use crate::config::{AllocState, GmLakeConfig, StateCounters};
use crate::slab::Slab;

/// Per-allocator record of driver faults survived and what they cost.
///
/// Every multi-call driver sequence (`stitch`, `alloc_new_pblock`, `Split`,
/// the teardown paths) is *transactional*: when a call fails mid-sequence
/// the allocator unwinds the already-performed create/map steps with
/// compensating driver calls and returns [`AllocError::DriverFault`] instead
/// of panicking. Under a *transient* fault the compensating calls always
/// succeed (the fault was consumed by the original call), so a failed op
/// leaves zero residue. Under *persistent* faults the compensation itself
/// can fail; the resources that could not be returned are counted here so
/// tests and operators can reconcile them against driver snapshots.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultJournal {
    /// Driver sequences that failed mid-way and were unwound.
    pub failed_ops: u64,
    /// VA reservations the unwind could not return to the driver.
    pub orphan_vas: u64,
    /// Total bytes of those orphaned reservations.
    pub orphan_va_bytes: u64,
    /// Physical chunk handles the unwind could not release.
    pub orphan_chunks: u64,
}

impl FaultJournal {
    /// `true` when every unwind ran to completion: no VA reservation or
    /// physical chunk outlived its failed operation.
    pub fn is_leak_free(&self) -> bool {
        self.orphan_vas == 0 && self.orphan_va_bytes == 0 && self.orphan_chunks == 0
    }
}

/// The GMLake virtual-memory-stitching allocator.
///
/// # Example
///
/// ```
/// use gmlake_core::{GmLakeAllocator, GmLakeConfig};
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
/// use gmlake_alloc_api::{AllocRequest, AllocatorCore, mib};
///
/// let driver = CudaDriver::new(DeviceConfig::small_test());
/// // Lower the fragmentation limit so MiB-scale doctest blocks may stitch.
/// let config = GmLakeConfig::default().with_frag_limit(mib(2));
/// let mut lake = GmLakeAllocator::new(driver.clone(), config);
///
/// // Two freed blocks of 4 and 6 MiB can serve a 10 MiB tensor without any
/// // new physical allocation: that is virtual memory stitching.
/// let a = lake.allocate(AllocRequest::new(mib(4)))?;
/// let b = lake.allocate(AllocRequest::new(mib(6)))?;
/// lake.deallocate(a.id)?;
/// lake.deallocate(b.id)?;
/// let before = driver.phys_in_use();
/// let c = lake.allocate(AllocRequest::new(mib(10)))?;
/// assert_eq!(driver.phys_in_use(), before, "no new physical memory");
/// # lake.deallocate(c.id)?;
/// # Ok::<(), gmlake_alloc_api::AllocError>(())
/// ```
#[derive(Debug)]
pub struct GmLakeAllocator {
    driver: CudaDriver,
    config: GmLakeConfig,
    chunk: u64,
    host_op_ns: u64,
    /// Whether BestFit decision logging (`GMLAKE_LOG=debug`, or the legacy
    /// `GMLAKE_DEBUG_S3` alias) is on — sampled once at construction so
    /// the per-allocation path never consults the environment.
    log_decisions: bool,
    /// Optional observability sink: stitch-decision trace records and the
    /// BestFit latency histogram. `None` costs one branch per decision.
    telemetry: Option<Arc<PoolTelemetry>>,
    small: CachingAllocator,
    pblocks: Slab<PBlock>,
    sblocks: Slab<SBlock>,
    /// Inactive pBlocks, partitioned by stitch-cost tier, keyed `(size, id)`.
    p_inactive: TieredPIndex,
    /// sBlocks whose parts are all inactive, keyed `(size, id)`.
    s_inactive: BTreeSet<(u64, SBlockId)>,
    /// Eviction candidates (unassigned, fully-inactive sBlocks), keyed
    /// `(lru_tick, id)` so `StitchFree` pops its LRU victim in `O(log n)`.
    s_evictable: BTreeSet<(u64, SBlockId)>,
    live: HashMap<AllocationId, (Target, u64)>,
    next_alloc: u64,
    tick: u64,
    stats: MemStats,
    /// Physical bytes owned by pBlocks (excludes the small pool's segments).
    reserved_phys: u64,
    /// Circuit-breaker knob (see [`AllocatorCore::set_stitch_enabled`]):
    /// while `false`, S3/S4 requests are served by whole fresh pBlocks
    /// instead of stitched views.
    stitch_enabled: bool,
    /// Driver faults survived and unwind residue (see [`FaultJournal`]).
    journal: FaultJournal,
    counters: StateCounters,
    iterations: u64,
    iter_non_exact: u64,
    iter_allocs: u64,
    converged_streak: u64,
    non_exact_history: Vec<u64>,
    /// Stream of the in-flight `alloc_on_stream`/`free_on_stream` call, if
    /// any. Set for the duration of the call so `register_allocation` and
    /// `deallocate` can stamp `last_stream` on the touched blocks, and so
    /// exact-match `BestFit` results can prefer same-stream candidates.
    current_stream: Option<StreamId>,
}

impl GmLakeAllocator {
    /// Creates a GMLake allocator on `driver`.
    ///
    /// # Panics
    ///
    /// Panics if `config.small_threshold` is larger than the device
    /// granularity times 64 (a misconfiguration guard).
    pub fn new(driver: CudaDriver, config: GmLakeConfig) -> Self {
        let chunk = driver.granularity();
        assert!(
            config.small_threshold <= chunk * 64,
            "small_threshold {} is implausibly large for chunk {}",
            config.small_threshold,
            chunk
        );
        let host_op_ns = driver.host_op_ns();
        let small = CachingAllocator::with_config(driver.clone(), config.small_config.clone());
        GmLakeAllocator {
            driver,
            config,
            chunk,
            host_op_ns,
            log_decisions: tlog::enabled(Level::Debug),
            telemetry: None,
            small,
            pblocks: Slab::new(),
            sblocks: Slab::new(),
            p_inactive: TieredPIndex::new(),
            s_inactive: BTreeSet::new(),
            s_evictable: BTreeSet::new(),
            live: HashMap::new(),
            next_alloc: 0,
            tick: 0,
            stats: MemStats::default(),
            reserved_phys: 0,
            stitch_enabled: true,
            journal: FaultJournal::default(),
            counters: StateCounters::default(),
            iterations: 0,
            iter_non_exact: 0,
            iter_allocs: 0,
            converged_streak: 0,
            non_exact_history: Vec::new(),
            current_stream: None,
        }
    }

    /// The underlying driver handle.
    pub fn driver(&self) -> &CudaDriver {
        &self.driver
    }

    /// Attaches an observability sink: from then on (while the sink is
    /// enabled) every BestFit classification is timed into
    /// `telemetry.bestfit_ns()` and emits a
    /// [`EventKind::StitchDecision`] trace record, and stitch / split /
    /// evict / defrag operations emit their own records — all stamped
    /// with the driver's simulated clock. Shared pools reach this through
    /// `DeviceAllocator::with_core_as::<GmLakeAllocator, _>`.
    pub fn set_telemetry(&mut self, telemetry: Arc<PoolTelemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Records a trace event stamped with the driver clock; no-op unless a
    /// sink is attached and enabled.
    fn emit(&self, kind: EventKind, bytes: u64, a: u64, b: u64) {
        if let Some(t) = &self.telemetry {
            if t.is_enabled() {
                t.record_at(self.driver.now_ns(), kind, bytes, a, b);
            }
        }
    }

    /// The allocator's configuration.
    pub fn config(&self) -> &GmLakeConfig {
        &self.config
    }

    /// Physical bytes owned by pBlocks (excluding the small pool).
    pub fn reserved_physical(&self) -> u64 {
        self.reserved_phys
    }

    /// Number of live pBlocks.
    pub fn pblock_count(&self) -> usize {
        self.pblocks.len()
    }

    /// Number of cached sBlock structures.
    pub fn sblock_count(&self) -> usize {
        self.sblocks.len()
    }

    /// Cumulative allocation-state counters (S1–S5, stitches, splits,
    /// evictions).
    pub fn state_counters(&self) -> StateCounters {
        self.counters
    }

    /// Driver faults survived so far and any unwind residue.
    pub fn fault_journal(&self) -> FaultJournal {
        self.journal
    }

    /// Whether S3/S4 requests may build stitched views (see
    /// [`AllocatorCore::set_stitch_enabled`]).
    pub fn stitch_is_enabled(&self) -> bool {
        self.stitch_enabled
    }

    /// Completed training iterations (see
    /// [`AllocatorCore::iteration_boundary`]).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// `true` once a whole iteration ran on exact matches only — the paper's
    /// convergence condition (§4.2.2, "after a few iterations GMLake will
    /// only utilize the S1 strategy").
    pub fn is_converged(&self) -> bool {
        self.converged_streak >= 1
    }

    /// Non-exact (S2+S3+S4+S5) transition counts per completed iteration —
    /// the convergence curve of the paper's Figure 14 discussion.
    pub fn non_exact_history(&self) -> &[u64] {
        &self.non_exact_history
    }

    /// Renders a human-readable snapshot of the pools, for debugging and the
    /// examples: pBlocks grouped by activity, sBlocks with their part lists.
    pub fn memory_map(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let active = self.pblocks.iter().filter(|(_, p)| p.active).count();
        let _ = writeln!(
            out,
            "pPool: {} blocks ({} active), {:.1} MiB physical",
            self.pblocks.len(),
            active,
            self.reserved_phys as f64 / (1 << 20) as f64
        );
        for (pid, p) in self.pblocks.iter() {
            let _ = writeln!(
                out,
                "  p{pid:<4} {:>8.1} MiB {} refs={:?}",
                p.size as f64 / (1 << 20) as f64,
                if p.active { "ACTIVE  " } else { "inactive" },
                p.referenced_by.iter().collect::<Vec<_>>()
            );
        }
        let _ = writeln!(out, "sPool: {} stitched views", self.sblocks.len());
        for (sid, s) in self.sblocks.iter() {
            let _ = writeln!(
                out,
                "  s{sid:<4} {:>8.1} MiB parts={:?}{}",
                s.size as f64 / (1 << 20) as f64,
                s.parts,
                if s.assigned_to.is_some() {
                    " ASSIGNED"
                } else {
                    ""
                }
            );
        }
        out
    }

    // ------------------------------------------------------------------
    // Internal machinery
    // ------------------------------------------------------------------

    fn align_up(&self, size: u64) -> u64 {
        size.div_ceil(self.chunk) * self.chunk
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn sync_reserved(&mut self) {
        let reserved = self.reserved_phys + self.small.stats().reserved_bytes;
        self.stats.set_reserved(reserved);
    }

    /// An sBlock is *available* when it could serve an exact match right
    /// now: unassigned with every part inactive.
    fn sblock_available(s: &SBlock) -> bool {
        s.assigned_to.is_none() && s.active_parts == 0
    }

    /// Derives an inactive pBlock's stitch-cost tier from its references,
    /// using the incremental active-part counters. `O(|referenced_by|)`.
    fn compute_tier(&self, pid: PBlockId) -> StitchCost {
        let p = &self.pblocks[pid];
        if p.referenced_by.is_empty() {
            StitchCost::Unreferenced
        } else if p
            .referenced_by
            .iter()
            .any(|&sid| Self::sblock_available(&self.sblocks[sid]))
        {
            StitchCost::ReferencedAvailable
        } else {
            StitchCost::ReferencedBlocked
        }
    }

    /// Recomputes an *inactive* pBlock's tier and moves it between the
    /// partitioned indexes when it changed. No-op for active blocks (they
    /// are unindexed).
    fn retier_pblock(&mut self, pid: PBlockId) {
        let (active, size, old) = {
            let p = &self.pblocks[pid];
            (p.active, p.size, p.tier)
        };
        if active {
            return;
        }
        let new = self.compute_tier(pid);
        if new != old {
            self.p_inactive.remove(old, size, pid);
            self.p_inactive.insert(new, size, pid);
            self.pblocks[pid].tier = new;
        }
    }

    /// Flips a pBlock's activity, maintaining the tiered inactive index,
    /// each referencing sBlock's active-part counter, and — when a counter
    /// crosses zero — the sBlock indexes plus the tiers of every part whose
    /// availability classification changed.
    fn set_pblock_active(&mut self, pid: PBlockId, active: bool) {
        let (size, refs): (u64, Vec<SBlockId>) = {
            let p = self.pblocks.get_mut(pid).expect("pblock exists");
            if p.active == active {
                return;
            }
            p.active = active;
            (p.size, p.referenced_by.iter().copied().collect())
        };
        if active {
            let tier = self.pblocks[pid].tier;
            self.p_inactive.remove(tier, size, pid);
        }
        for sid in refs {
            let (s_size, s_tick, crossed, now_inactive, unassigned) = {
                let s = self.sblocks.get_mut(sid).expect("sblock exists");
                let was_zero = s.active_parts == 0;
                if active {
                    s.active_parts += 1;
                } else {
                    debug_assert!(s.active_parts > 0, "active_parts underflow on s{sid}");
                    s.active_parts -= 1;
                }
                let is_zero = s.active_parts == 0;
                (
                    s.size,
                    s.lru_tick,
                    was_zero != is_zero,
                    is_zero,
                    s.assigned_to.is_none(),
                )
            };
            if !crossed {
                continue;
            }
            // Assignment only happens to fully-active sBlocks and is cleared
            // before deactivation, so every zero-crossing is unassigned and
            // flips availability.
            debug_assert!(unassigned, "assigned sblock s{sid} crossed activity");
            if now_inactive {
                self.s_inactive.insert((s_size, sid));
                self.s_evictable.insert((s_tick, sid));
            } else {
                self.s_inactive.remove(&(s_size, sid));
                self.s_evictable.remove(&(s_tick, sid));
            }
            // The view's availability flipped: every (inactive) sibling part
            // may change tier. Index-based iteration: `retier_pblock` needs
            // `&mut self`, and part lists are never long enough to amortize
            // a clone.
            for i in 0..self.sblocks[sid].parts.len() {
                let part = self.sblocks[sid].parts[i];
                if part != pid {
                    self.retier_pblock(part);
                }
            }
        }
        if !active {
            let tier = self.compute_tier(pid);
            self.pblocks[pid].tier = tier;
            self.p_inactive.insert(tier, size, pid);
        }
    }

    /// Best-effort unwind of a VA range that was reserved (and possibly
    /// partially mapped) before a mid-sequence driver fault. Failures are
    /// journaled instead of propagated: under a transient fault the
    /// compensating calls succeed (the fault was consumed by the original
    /// call); under persistent faults the range is orphaned and counted.
    fn unwind_va(&mut self, va: VirtAddr, reserved: u64, mapped: u64) {
        if mapped > 0 && self.driver.mem_unmap_range(va, mapped).is_err() {
            // A reservation with live mappings cannot be freed.
            self.journal.orphan_vas += 1;
            self.journal.orphan_va_bytes += reserved;
            return;
        }
        if self.driver.mem_address_free(va, reserved).is_err() {
            self.journal.orphan_vas += 1;
            self.journal.orphan_va_bytes += reserved;
        }
    }

    /// Best-effort release of physical chunks created before a mid-sequence
    /// driver fault; journals the handles it could not return.
    fn unwind_chunks(&mut self, chunks: &[PhysHandle]) {
        if self.driver.mem_release_batch(chunks).is_err() {
            self.journal.orphan_chunks += chunks.len() as u64;
        }
    }

    /// `Alloc` (§3.3.1): creates a brand-new pBlock of `size` bytes (a chunk
    /// multiple) with fresh physical chunks. The only function that
    /// increases reserved physical memory. Physical chunks are created and
    /// mapped through the driver's batched entry points: one driver
    /// round-trip for the creates, one for the maps.
    ///
    /// Transactional: a fault at any step unwinds the steps already
    /// performed, so an `Err` leaves the allocator exactly as it was.
    fn alloc_new_pblock(&mut self, size: u64) -> Result<PBlockId, DriverError> {
        debug_assert_eq!(size % self.chunk, 0);
        let va = self.driver.mem_address_reserve(size)?;
        let n = (size / self.chunk) as usize;
        let chunks: Vec<PhysHandle> = match self.driver.mem_create_batch(self.chunk, n) {
            Ok(chunks) => chunks,
            Err(e) => {
                // The batch is all-or-nothing: nothing created, nothing mapped.
                self.journal.failed_ops += 1;
                self.unwind_va(va, size, 0);
                return Err(e);
            }
        };
        if let Err(e) = self.driver.mem_map_range(va, self.chunk, &chunks) {
            self.journal.failed_ops += 1;
            self.unwind_chunks(&chunks);
            self.unwind_va(va, size, 0);
            return Err(e);
        }
        if let Err(e) = self.driver.mem_set_access(va, size, true) {
            self.journal.failed_ops += 1;
            self.unwind_va(va, size, size);
            self.unwind_chunks(&chunks);
            return Err(e);
        }
        let pid = self.pblocks.insert(PBlock::new(va, size, chunks));
        self.p_inactive.insert(StitchCost::Unreferenced, size, pid);
        self.reserved_phys += size;
        Ok(pid)
    }

    /// Builds a pBlock over existing chunks (used by `Split`): reserves a
    /// fresh VA and maps the chunks there in one batched driver call.
    ///
    /// Transactional: on `Err` the reservation is unwound and the chunks —
    /// owned by the caller's original block — are untouched.
    fn pblock_from_chunks(&mut self, chunks: Vec<PhysHandle>) -> Result<PBlockId, DriverError> {
        let size = chunks.len() as u64 * self.chunk;
        let va = self.driver.mem_address_reserve(size)?;
        if let Err(e) = self.driver.mem_map_range(va, self.chunk, &chunks) {
            self.journal.failed_ops += 1;
            self.unwind_va(va, size, 0);
            return Err(e);
        }
        if let Err(e) = self.driver.mem_set_access(va, size, true) {
            self.journal.failed_ops += 1;
            self.unwind_va(va, size, size);
            return Err(e);
        }
        let pid = self.pblocks.insert(PBlock::new(va, size, chunks));
        self.p_inactive.insert(StitchCost::Unreferenced, size, pid);
        Ok(pid)
    }

    /// Reverses a just-created [`Self::pblock_from_chunks`] view during a
    /// rollback: removes it from the arena and index and tears its VA down.
    /// The chunks belong to the block being split and are not released.
    fn undo_pblock_view(&mut self, pid: PBlockId) {
        let p = self.pblocks.remove(pid).expect("fresh view exists");
        debug_assert!(!p.active && p.referenced_by.is_empty());
        self.p_inactive.remove(p.tier, p.size, pid);
        self.unwind_va(p.va, p.size, p.size);
    }

    /// `Split` (§3.3.1): divides an inactive pBlock into two pBlocks with
    /// fresh VA ranges and remapped chunks; the original structure is
    /// removed. Referencing sBlocks keep working (their own mappings are
    /// untouched) and their part lists are rewritten to the two children.
    ///
    /// Transactional: both replacement views are built *before* the parent
    /// is touched, so a fault at any step before the parent's unmap rolls
    /// back to the pre-split state. Once the parent's mappings are gone the
    /// split is committed and any cleanup failure is journaled instead.
    fn split_pblock(
        &mut self,
        pid: PBlockId,
        left_size: u64,
    ) -> Result<(PBlockId, PBlockId), DriverError> {
        debug_assert_eq!(left_size % self.chunk, 0);
        let (left_chunks, right_chunks, parent_va, parent_size) = {
            let p = &self.pblocks[pid];
            debug_assert!(
                !p.active && p.assigned_to.is_none(),
                "split of a live block"
            );
            debug_assert!(left_size > 0 && left_size < p.size);
            let k = (left_size / self.chunk) as usize;
            (p.chunks[..k].to_vec(), p.chunks[k..].to_vec(), p.va, p.size)
        };
        let left = self.pblock_from_chunks(left_chunks)?;
        let right = match self.pblock_from_chunks(right_chunks) {
            Ok(right) => right,
            Err(e) => {
                self.undo_pblock_view(left);
                return Err(e);
            }
        };
        // The old VA disappears; physical chunks live on through the new maps.
        if let Err(e) = self.driver.mem_unmap_range(parent_va, parent_size) {
            self.journal.failed_ops += 1;
            self.undo_pblock_view(right);
            self.undo_pblock_view(left);
            return Err(e);
        }
        // Commit point: the parent's mappings are gone.
        if self
            .driver
            .mem_address_free(parent_va, parent_size)
            .is_err()
        {
            self.journal.orphan_vas += 1;
            self.journal.orphan_va_bytes += parent_size;
        }
        let p = self.pblocks.remove(pid).expect("pblock exists");
        self.p_inactive.remove(p.tier, p.size, pid);
        // Rewrite referencing sBlocks to the two children. Both children are
        // inactive (the parent was), so no active-part counter changes.
        for &sid in &p.referenced_by {
            let s = self.sblocks.get_mut(sid).expect("referenced sblock exists");
            let pos = s
                .parts
                .iter()
                .position(|&x| x == pid)
                .expect("sblock lists the split pblock");
            s.parts.splice(pos..=pos, [left, right]);
        }
        for &child in &[left, right] {
            let refs = p.referenced_by.clone();
            self.pblocks
                .get_mut(child)
                .expect("child exists")
                .referenced_by = refs;
            // The children inherited references: move them off the
            // unreferenced tier they were created in.
            self.retier_pblock(child);
        }
        self.counters.splits += 1;
        self.emit(EventKind::Split, p.size, left_size, 0);
        Ok((left, right))
    }

    /// `Stitch` (§3.3.1): creates an sBlock whose fresh VA range aliases the
    /// chunks of `parts`, in order — one batched map call per part. No
    /// physical memory is created.
    ///
    /// Transactional: a fault while mapping unwinds the already-mapped
    /// prefix and the reservation; on `Err` the parts are untouched.
    fn stitch(&mut self, parts: Vec<PBlockId>) -> Result<SBlockId, DriverError> {
        let total: u64 = parts.iter().map(|&p| self.pblocks[p].size).sum();
        let va = self.driver.mem_address_reserve(total)?;
        let mut off = 0u64;
        let mut fault: Option<DriverError> = None;
        for &pid in &parts {
            let p = &self.pblocks[pid];
            debug_assert!(!p.active, "stitching an active part");
            if let Err(e) = self
                .driver
                .mem_map_range(va.offset(off), self.chunk, &p.chunks)
            {
                fault = Some(e);
                break;
            }
            off += p.size;
        }
        if fault.is_none() {
            if let Err(e) = self.driver.mem_set_access(va, total, true) {
                fault = Some(e);
                debug_assert_eq!(off, total);
            }
        }
        if let Some(e) = fault {
            self.journal.failed_ops += 1;
            self.unwind_va(va, total, off);
            return Err(e);
        }
        let tick = self.next_tick();
        let sid = self.sblocks.insert(SBlock::new(va, total, parts, tick));
        // The new view is unassigned with all parts inactive: it is both
        // exact-matchable and evictable, and referencing it promotes every
        // part to the last-resort stitching tier.
        self.s_inactive.insert((total, sid));
        self.s_evictable.insert((tick, sid));
        for i in 0..self.sblocks[sid].parts.len() {
            let pid = self.sblocks[sid].parts[i];
            self.pblocks
                .get_mut(pid)
                .expect("part exists")
                .referenced_by
                .insert(sid);
            self.retier_pblock(pid);
        }
        self.counters.stitches += 1;
        self.emit(
            EventKind::Stitch,
            total,
            self.sblocks[sid].parts.len() as u64,
            0,
        );
        // NOTE: capacity enforcement runs in `allocate` *after* the new
        // block is assigned, so a freshly stitched block can never be its
        // own eviction victim.
        Ok(sid)
    }

    /// Picks the next `StitchFree` victim: scans the first
    /// `evict_scan_window` entries of the LRU-ordered eviction index and
    /// prefers the view with the fewest *uniquely referenced* parts — a
    /// pBlock referenced only by its own view drops to the unreferenced
    /// tier on eviction, so destroying such a view cannibalizes cached
    /// exact-match coverage that a later request would have to re-stitch,
    /// while a view whose parts are mostly woven into other cached views
    /// is near-free to drop. Ties (and a window of 1) fall back to pure
    /// `(lru_tick, id)` LRU.
    fn pick_stitchfree_victim(&self) -> Option<(u64, SBlockId)> {
        let window = self.config.evict_scan_window.max(1);
        let mut best: Option<((u64, SBlockId), usize)> = None;
        for &key in self.s_evictable.iter().take(window) {
            let (_, sid) = key;
            let unique = self.sblocks[sid]
                .parts
                .iter()
                .filter(|&&pid| {
                    self.pblocks
                        .get(pid)
                        .expect("part exists")
                        .referenced_by
                        .len()
                        <= 1
                })
                .count();
            if unique == 0 {
                // Every part survives in some other view: a free eviction,
                // and LRU-first among such candidates since the scan runs
                // in eviction-index order.
                return Some(key);
            }
            if best.is_none_or(|(_, b)| unique < b) {
                best = Some((key, unique));
            }
        }
        best.map(|(key, _)| key)
    }

    /// `StitchFree` (§3.3.2): evicts *inactive* sBlock structures while the
    /// sPool exceeds its capacity. Victims come from a bounded scan of the
    /// `(lru_tick, id)` eviction index (see
    /// [`GmLakeAllocator::pick_stitchfree_victim`]).
    fn enforce_spool_capacity(&mut self) {
        while self.sblocks.len() > self.config.max_sblocks {
            match self.pick_stitchfree_victim() {
                Some((_, sid)) => {
                    let size = self.sblocks[sid].size;
                    if self.destroy_sblock(sid).is_err() {
                        // Teardown faulted with the view intact; leave the
                        // overshoot for a later allocation to retry.
                        break;
                    }
                    self.counters.evictions += 1;
                    self.emit(EventKind::Evict, size, 0, 0);
                }
                None => break, // nothing evictable; allow a soft overshoot
            }
        }
    }

    /// Tears an sBlock structure down: its VA and mappings disappear; the
    /// chunks stay owned by the pBlocks.
    ///
    /// Transactional: the unmap runs first, so on `Err` the view is fully
    /// intact and still usable. After the unmap the teardown is committed;
    /// a faulted reservation free is journaled, not propagated.
    fn destroy_sblock(&mut self, sid: SBlockId) -> Result<(), DriverError> {
        // Batched teardown: one driver round-trip for the whole view's
        // mappings, so a StitchFree/OOM-rescue storm stops paying one
        // dispatch per chunk.
        let (va, size) = {
            let s = &self.sblocks[sid];
            (s.va, s.size)
        };
        if let Err(e) = self.driver.mem_unmap_range(va, size) {
            self.journal.failed_ops += 1;
            return Err(e);
        }
        if self.driver.mem_address_free(va, size).is_err() {
            self.journal.orphan_vas += 1;
            self.journal.orphan_va_bytes += size;
        }
        let s = self.sblocks.remove(sid).expect("sblock exists");
        self.s_inactive.remove(&(s.size, sid));
        self.s_evictable.remove(&(s.lru_tick, sid));
        for &pid in &s.parts {
            let Some(p) = self.pblocks.get_mut(pid) else {
                continue;
            };
            p.referenced_by.remove(&sid);
            // Losing a reference may drop the part a tier (down to
            // unreferenced).
            self.retier_pblock(pid);
        }
        Ok(())
    }

    /// Returns a pBlock's physical memory to the device. The block must be
    /// inactive, unassigned and unreferenced. The whole block tears down in
    /// three driver round-trips (batched unmap, batched release, address
    /// free) regardless of its chunk count.
    ///
    /// Transactional: a faulted unmap leaves the block intact; a faulted
    /// release re-maps the range and aborts the destroy. Only when the
    /// rollback itself fails (persistent faults) is the block dropped from
    /// the books with its resources journaled as orphans.
    fn destroy_pblock(&mut self, pid: PBlockId) -> Result<(), DriverError> {
        let (va, size, chunks) = {
            let p = &self.pblocks[pid];
            debug_assert!(!p.active && p.assigned_to.is_none() && p.referenced_by.is_empty());
            (p.va, p.size, p.chunks.clone())
        };
        if let Err(e) = self.driver.mem_unmap_range(va, size) {
            self.journal.failed_ops += 1;
            return Err(e);
        }
        if let Err(e) = self.driver.mem_release_batch(&chunks) {
            self.journal.failed_ops += 1;
            // Re-map and abort the destroy; the block stays cached.
            let remapped = self.driver.mem_map_range(va, self.chunk, &chunks).is_ok();
            if remapped && self.driver.mem_set_access(va, size, true).is_ok() {
                return Err(e);
            }
            // Rollback failed too: orphan the block's resources and drop it
            // from the books so invariants keep holding.
            self.journal.orphan_chunks += chunks.len() as u64;
            self.unwind_va(va, size, if remapped { size } else { 0 });
            let p = self.pblocks.remove(pid).expect("pblock exists");
            self.p_inactive.remove(p.tier, p.size, pid);
            self.reserved_phys -= size;
            return Err(e);
        }
        if self.driver.mem_address_free(va, size).is_err() {
            self.journal.orphan_vas += 1;
            self.journal.orphan_va_bytes += size;
        }
        let p = self.pblocks.remove(pid).expect("pblock exists");
        self.p_inactive.remove(p.tier, p.size, pid);
        self.reserved_phys -= size;
        Ok(())
    }

    fn register_allocation(
        &mut self,
        target: Target,
        va: VirtAddr,
        size: u64,
        requested: u64,
    ) -> Allocation {
        self.next_alloc += 1;
        let id = AllocationId::new(self.next_alloc);
        match target {
            Target::P(pid) => {
                self.set_pblock_active(pid, true);
                let p = self.pblocks.get_mut(pid).expect("pblock exists");
                p.assigned_to = Some(id);
                if self.current_stream.is_some() {
                    p.last_stream = self.current_stream;
                }
            }
            Target::S(sid) => {
                let parts = self.sblocks[sid].parts.clone();
                for pid in parts {
                    self.set_pblock_active(pid, true);
                }
                let tick = self.next_tick();
                let s = self.sblocks.get_mut(sid).expect("sblock exists");
                debug_assert_eq!(s.active_parts, s.parts.len(), "assigning a partial sblock");
                s.assigned_to = Some(id);
                s.lru_tick = tick;
                if self.current_stream.is_some() {
                    s.last_stream = self.current_stream;
                }
            }
            Target::Small(_) => {}
        }
        self.live.insert(id, (target, size));
        self.stats.on_alloc(requested, size);
        self.sync_reserved();
        self.iter_allocs += 1;
        Allocation {
            id,
            va,
            size,
            requested,
        }
    }

    fn allocate_small(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        let inner = self.small.allocate(req)?;
        let alloc =
            self.register_allocation(Target::Small(inner.id), inner.va, inner.size, req.size);
        Ok(alloc)
    }

    /// Per-stream affinity refinement for S1 pBlock matches: among exact
    /// candidates of the same size *and* stitch-cost tier (which Algorithm 1
    /// treats as equivalent — same state, same cost), prefer one last used
    /// by the requesting stream. Bounded scan; no-op for streamless calls,
    /// so `BestFit`'s classification and the reference oracle are untouched.
    fn prefer_stream_pblock(&self, chosen: PBlockId) -> PBlockId {
        let Some(stream) = self.current_stream else {
            return chosen;
        };
        let p = &self.pblocks[chosen];
        if p.last_stream == Some(stream) {
            return chosen;
        }
        self.p_inactive
            .equal_size_in_tier(p.tier, p.size)
            .take(Self::AFFINITY_SCAN_LIMIT)
            .find(|&pid| self.pblocks[pid].last_stream == Some(stream))
            .unwrap_or(chosen)
    }

    /// Per-stream affinity refinement for S1 sBlock matches (all inactive
    /// sBlocks of the exact size are equivalent to Algorithm 1).
    fn prefer_stream_sblock(&self, chosen: SBlockId) -> SBlockId {
        let Some(stream) = self.current_stream else {
            return chosen;
        };
        let s = &self.sblocks[chosen];
        if s.last_stream == Some(stream) {
            return chosen;
        }
        let size = s.size;
        self.s_inactive
            .range((size, 0)..=(size, u64::MAX))
            .take(Self::AFFINITY_SCAN_LIMIT)
            .map(|&(_, sid)| sid)
            .find(|&sid| self.sblocks[sid].last_stream == Some(stream))
            .unwrap_or(chosen)
    }

    /// Cap on the equal-size candidate scan in the affinity refinements:
    /// affinity is a locality hint, not a correctness requirement, so it
    /// must never turn an `O(log n)` exact match into an `O(n)` sweep.
    const AFFINITY_SCAN_LIMIT: usize = 32;

    /// One attempt at a large allocation; OOM from `Alloc` is surfaced so the
    /// caller can run the release-cached fallback and retry. Wraps the
    /// decision path with the `bestfit_ns` telemetry histogram.
    fn try_allocate_large(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        let start = match &self.telemetry {
            Some(t) if t.is_enabled() => Some(std::time::Instant::now()),
            _ => None,
        };
        let result = self.try_allocate_large_inner(req);
        if let (Some(start), Some(t)) = (start, &self.telemetry) {
            t.bestfit_ns().record(start.elapsed().as_nanos() as u64);
        }
        result
    }

    fn try_allocate_large_inner(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        let aligned = self.align_up(req.size);
        match best_fit_indexed(
            aligned,
            &self.s_inactive,
            &self.p_inactive,
            self.config.frag_limit,
        ) {
            BestFit::ExactS(sid) => {
                let sid = self.prefer_stream_sblock(sid);
                self.counters.record(AllocState::ExactMatch);
                self.emit(EventKind::StitchDecision, aligned, 1, 1);
                let (va, size) = (self.sblocks[sid].va, self.sblocks[sid].size);
                Ok(self.register_allocation(Target::S(sid), va, size, req.size))
            }
            BestFit::ExactP(pid) => {
                let pid = self.prefer_stream_pblock(pid);
                self.counters.record(AllocState::ExactMatch);
                self.emit(EventKind::StitchDecision, aligned, 1, 1);
                let (va, size) = (self.pblocks[pid].va, self.pblocks[pid].size);
                Ok(self.register_allocation(Target::P(pid), va, size, req.size))
            }
            BestFit::Single(pid) => {
                self.counters.record(AllocState::SingleBlock);
                self.emit(EventKind::StitchDecision, aligned, 2, 1);
                if self.log_decisions {
                    tlog::log(
                        Level::Debug,
                        "gmlake_core::bestfit",
                        format_args!(
                            "S2 iter={} size={} block={}",
                            self.iterations, aligned, self.pblocks[pid].size
                        ),
                    );
                }
                let block_size = self.pblocks[pid].size;
                let remainder = block_size - aligned;
                if remainder >= self.config.frag_limit.max(self.chunk) {
                    // Split; optionally cache an sBlock of the two halves so
                    // a future request of the original size exact-matches.
                    // Splitting performs driver work, so it counts against
                    // convergence.
                    self.iter_non_exact += 1;
                    let (left, right) = self
                        .split_pblock(pid, aligned)
                        .map_err(|e| AllocError::driver_fault("split_pblock", e))?;
                    if self.config.cache_split_halves && self.stitch_enabled {
                        // Caching the halves is an optimization; a faulted
                        // stitch (already unwound) must not fail the alloc.
                        let _ = self.stitch(vec![left, right]);
                    }
                    let (va, size) = (self.pblocks[left].va, self.pblocks[left].size);
                    Ok(self.register_allocation(Target::P(left), va, size, req.size))
                } else {
                    // Remainder below the fragmentation limit: use the block
                    // whole (internal waste instead of an unusable fragment).
                    // This is pure best-fit reuse — zero driver calls — so it
                    // does not count as an adaptation step.
                    let (va, size) = (self.pblocks[pid].va, self.pblocks[pid].size);
                    Ok(self.register_allocation(Target::P(pid), va, size, req.size))
                }
            }
            BestFit::Multiple { mut ids, sum } => {
                if !self.stitch_enabled {
                    // Circuit breaker open: serve S3 with a whole fresh
                    // block instead of a stitched view.
                    self.counters.record(AllocState::MultiBlock);
                    self.iter_non_exact += 1;
                    self.emit(EventKind::StitchDecision, aligned, 3, 0);
                    return self.allocate_unstitched(aligned, req);
                }
                self.counters.record(AllocState::MultiBlock);
                self.iter_non_exact += 1;
                self.emit(EventKind::StitchDecision, aligned, 3, ids.len() as u64);
                if self.log_decisions {
                    tlog::log(
                        Level::Debug,
                        "gmlake_core::bestfit",
                        format_args!(
                            "S3 iter={} size={} candidates={:?}",
                            self.iterations,
                            aligned,
                            ids.iter()
                                .map(|&i| self.pblocks[i].size)
                                .collect::<Vec<_>>()
                        ),
                    );
                }
                if sum > aligned {
                    let last = ids.pop().expect("multiple has >= 2 candidates");
                    let last_size = self.pblocks[last].size;
                    let rest_sum = sum - last_size;
                    let need = aligned - rest_sum;
                    debug_assert!(need > 0 && need <= last_size);
                    if last_size - need >= self.config.frag_limit.max(self.chunk) {
                        match self.split_pblock(last, need) {
                            Ok((left, right)) => {
                                if self.config.cache_split_halves {
                                    let _ = self.stitch(vec![left, right]);
                                }
                                ids.push(left);
                            }
                            // Split faulted (and rolled back): degrade to
                            // using the block whole; the sBlock is oversized.
                            Err(_) => ids.push(last),
                        }
                    } else {
                        ids.push(last); // keep whole; sBlock will be oversized
                    }
                }
                let sid = self
                    .stitch(ids)
                    .map_err(|e| AllocError::driver_fault("stitch", e))?;
                let (va, size) = (self.sblocks[sid].va, self.sblocks[sid].size);
                Ok(self.register_allocation(Target::S(sid), va, size, req.size))
            }
            BestFit::Insufficient { mut ids, sum } => {
                self.counters.record(AllocState::Insufficient);
                self.iter_non_exact += 1;
                self.emit(EventKind::StitchDecision, aligned, 4, ids.len() as u64);
                if self.log_decisions {
                    tlog::log(
                        Level::Debug,
                        "gmlake_core::bestfit",
                        format_args!("S4 iter={} size={} have={}", self.iterations, aligned, sum),
                    );
                }
                debug_assert!(sum < aligned);
                if !self.stitch_enabled && !ids.is_empty() {
                    // Circuit breaker open: ignore the stitchable leftovers
                    // and serve the request whole.
                    return self.allocate_unstitched(aligned, req);
                }
                let new_size = aligned - sum;
                let new_pid = self
                    .alloc_new_pblock(new_size)
                    .map_err(|e| self.map_pblock_err(e))?;
                if ids.is_empty() {
                    let (va, size) = (self.pblocks[new_pid].va, self.pblocks[new_pid].size);
                    Ok(self.register_allocation(Target::P(new_pid), va, size, req.size))
                } else {
                    ids.push(new_pid);
                    let sid = match self.stitch(ids) {
                        Ok(sid) => sid,
                        Err(e) => {
                            // Roll the fresh physical allocation back; if
                            // even the teardown faults the block stays
                            // cached (state is still consistent).
                            let _ = self.destroy_pblock(new_pid);
                            self.sync_reserved();
                            return Err(AllocError::driver_fault("stitch", e));
                        }
                    };
                    let (va, size) = (self.sblocks[sid].va, self.sblocks[sid].size);
                    Ok(self.register_allocation(Target::S(sid), va, size, req.size))
                }
            }
        }
    }

    /// Degraded (circuit-breaker) S3/S4 path: serve the request with a
    /// single fresh pBlock, ignoring stitchable cached blocks. Used while
    /// stitching is disabled after repeated stitch-path faults.
    fn allocate_unstitched(
        &mut self,
        aligned: u64,
        req: AllocRequest,
    ) -> Result<Allocation, AllocError> {
        let pid = self
            .alloc_new_pblock(aligned)
            .map_err(|e| self.map_pblock_err(e))?;
        let (va, size) = (self.pblocks[pid].va, self.pblocks[pid].size);
        Ok(self.register_allocation(Target::P(pid), va, size, req.size))
    }

    /// Maps a failed `Alloc` driver call: a genuine device OOM keeps its
    /// dedicated variant (it drives the release-cached retry); anything
    /// else was injected/unexpected and surfaces as a rolled-back fault.
    fn map_pblock_err(&self, e: DriverError) -> AllocError {
        match e {
            DriverError::OutOfMemory { requested, .. } => AllocError::OutOfMemory {
                requested,
                reserved: self.stats.reserved_bytes,
                capacity: self.driver.capacity(),
            },
            other => AllocError::driver_fault("alloc_new_pblock", other),
        }
    }

    /// Frees every cache structure not currently assigned to a tensor:
    /// all unassigned sBlocks, then every inactive pBlock's physical memory,
    /// then the small pool's cached segments. Returns bytes of physical
    /// memory released.
    fn release_cached_impl(&mut self) -> u64 {
        let unassigned: Vec<SBlockId> = self
            .sblocks
            .iter()
            .filter(|(_, s)| s.assigned_to.is_none())
            .map(|(sid, _)| sid)
            .collect();
        for sid in unassigned {
            // A faulted teardown leaves the view intact; skip it, later
            // rescue passes will retry.
            let _ = self.destroy_sblock(sid);
        }
        let idle: Vec<PBlockId> = self
            .pblocks
            .iter()
            .filter(|(_, p)| !p.active && p.assigned_to.is_none() && p.referenced_by.is_empty())
            .map(|(pid, _)| pid)
            .collect();
        let mut released = 0;
        for pid in idle {
            let size = self.pblocks[pid].size;
            if self.destroy_pblock(pid).is_ok() {
                released += size;
            }
        }
        released += self.small.release_cached();
        self.sync_reserved();
        released
    }

    /// The pre-index `stitch_cost` closure semantics, kept verbatim for the
    /// reference `BestFit` path: chase `referenced_by`, look the sBlocks up,
    /// and probe the inactive index per call.
    fn reference_stitch_cost(&self, pid: PBlockId) -> StitchCost {
        let p = &self.pblocks[pid];
        if p.referenced_by.is_empty() {
            StitchCost::Unreferenced
        } else if p.referenced_by.iter().any(|sid| {
            let s = &self.sblocks[*sid];
            s.assigned_to.is_none() && self.s_inactive.contains(&(s.size, *sid))
        }) {
            StitchCost::ReferencedAvailable
        } else {
            StitchCost::ReferencedBlocked
        }
    }

    // ------------------------------------------------------------------
    // Benchmark probes — classify a hypothetical request without mutating
    // state, through either `BestFit` implementation. Hidden: these exist
    // so `bestfit_scaling` / `bench_pr2` can measure the indexed hot path
    // against the retained reference path on identical pool states.
    // ------------------------------------------------------------------

    /// Runs the indexed `BestFit` for a request of `size` bytes and returns
    /// the state it classified to (1–4 for S1–S4).
    #[doc(hidden)]
    pub fn probe_bestfit_indexed(&self, size: u64) -> u8 {
        let fit = best_fit_indexed(
            self.align_up(size),
            &self.s_inactive,
            &self.p_inactive,
            self.config.frag_limit,
        );
        Self::state_code(&fit)
    }

    /// The flat `(size, id)` inactive-pBlock set the reference path
    /// consumes; build it once per pool state, outside the timed region.
    #[doc(hidden)]
    pub fn flat_inactive_index(&self) -> BTreeSet<(u64, u64)> {
        self.p_inactive.to_flat()
    }

    /// Runs the retained reference `BestFit` (full-pool passes plus the
    /// per-block cost closure) over `flat` and this allocator's state.
    #[doc(hidden)]
    pub fn probe_bestfit_reference(&self, size: u64, flat: &BTreeSet<(u64, u64)>) -> u8 {
        let fit = best_fit_reference(
            self.align_up(size),
            &self.s_inactive,
            flat,
            self.config.frag_limit,
            |pid| self.reference_stitch_cost(pid),
        );
        Self::state_code(&fit)
    }

    fn state_code(fit: &BestFit) -> u8 {
        match fit {
            BestFit::ExactS(_) | BestFit::ExactP(_) => 1,
            BestFit::Single(_) => 2,
            BestFit::Multiple { .. } => 3,
            BestFit::Insufficient { .. } => 4,
        }
    }

    /// Differential oracle: asserts the indexed and reference `BestFit`
    /// agree exactly (not just on the state code) for a request of `size`
    /// bytes against the current pool state.
    #[cfg(test)]
    pub(crate) fn assert_bestfit_agrees(&self, size: u64) {
        let aligned = self.align_up(size);
        let flat = self.p_inactive.to_flat();
        let reference = best_fit_reference(
            aligned,
            &self.s_inactive,
            &flat,
            self.config.frag_limit,
            |pid| self.reference_stitch_cost(pid),
        );
        let indexed = best_fit_indexed(
            aligned,
            &self.s_inactive,
            &self.p_inactive,
            self.config.frag_limit,
        );
        assert_eq!(
            reference, indexed,
            "indexed BestFit diverged from the reference for size {size}"
        );
    }

    /// Verifies every internal invariant; heavily used by tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        // 0. Slab arenas: reuse-after-destroy free-list consistency.
        self.pblocks
            .validate()
            .map_err(|e| format!("pblock arena: {e}"))?;
        self.sblocks
            .validate()
            .map_err(|e| format!("sblock arena: {e}"))?;
        // 1. pBlock shape + tiered-index consistency.
        let mut chunk_owner: HashMap<u64, PBlockId> = HashMap::new();
        let mut phys_sum = 0u64;
        let mut inactive_p = 0usize;
        for (pid, p) in self.pblocks.iter() {
            if p.chunks.len() as u64 * self.chunk != p.size {
                return Err(format!("pblock {pid}: chunk count disagrees with size"));
            }
            phys_sum += p.size;
            for h in &p.chunks {
                if let Some(prev) = chunk_owner.insert(h.as_u64(), pid) {
                    return Err(format!("chunk {h} owned by both pblock {prev} and {pid}"));
                }
            }
            let indexed_tier = self.p_inactive.tier_of(p.size, pid);
            if p.active {
                if let Some(t) = indexed_tier {
                    return Err(format!("active pblock {pid} present in tier {t:?}"));
                }
            } else {
                match indexed_tier {
                    None => return Err(format!("inactive pblock {pid} missing from index")),
                    Some(t) if t != p.tier => {
                        return Err(format!(
                            "pblock {pid}: cached tier {:?} but indexed in {t:?}",
                            p.tier
                        ));
                    }
                    Some(_) => {}
                }
                let derived = self.compute_tier(pid);
                if derived != p.tier {
                    return Err(format!(
                        "pblock {pid}: cached tier {:?} but references imply {derived:?}",
                        p.tier
                    ));
                }
                inactive_p += 1;
            }
            if p.assigned_to.is_some() && !p.active {
                return Err(format!("pblock {pid}: assigned but inactive"));
            }
            for sid in &p.referenced_by {
                let s = self
                    .sblocks
                    .get(*sid)
                    .ok_or_else(|| format!("pblock {pid} references dead sblock {sid}"))?;
                if !s.parts.contains(&pid) {
                    return Err(format!("sblock {sid} does not list pblock {pid}"));
                }
            }
        }
        if phys_sum != self.reserved_phys {
            return Err(format!(
                "reserved_phys {} but pblocks sum to {phys_sum}",
                self.reserved_phys
            ));
        }
        if self.p_inactive.len() != inactive_p {
            return Err(format!(
                "p index holds {} entries but {} pblocks are inactive",
                self.p_inactive.len(),
                inactive_p
            ));
        }
        // 2. sBlock consistency: part lists, counters, and both indexes.
        let mut inactive_s = 0usize;
        let mut evictable_s = 0usize;
        for (sid, s) in self.sblocks.iter() {
            let mut size_sum = 0;
            let mut active_parts = 0usize;
            for pid in &s.parts {
                let p = self
                    .pblocks
                    .get(*pid)
                    .ok_or_else(|| format!("sblock {sid} lists dead pblock {pid}"))?;
                if !p.referenced_by.contains(&sid) {
                    return Err(format!("pblock {pid} missing backref to sblock {sid}"));
                }
                size_sum += p.size;
                if p.active {
                    active_parts += 1;
                }
            }
            if size_sum != s.size {
                return Err(format!(
                    "sblock {sid}: parts sum {size_sum} != size {}",
                    s.size
                ));
            }
            if active_parts != s.active_parts {
                return Err(format!(
                    "sblock {sid}: counter says {} active parts, scan says {active_parts}",
                    s.active_parts
                ));
            }
            let all_inactive = s.active_parts == 0;
            let indexed = self.s_inactive.contains(&(s.size, sid));
            if all_inactive != indexed {
                return Err(format!(
                    "sblock {sid}: all_inactive={all_inactive} but index={indexed}"
                ));
            }
            if all_inactive {
                inactive_s += 1;
            }
            let evictable = s.assigned_to.is_none() && all_inactive;
            let in_evict = self.s_evictable.contains(&(s.lru_tick, sid));
            if evictable != in_evict {
                return Err(format!(
                    "sblock {sid}: evictable={evictable} but eviction index={in_evict}"
                ));
            }
            if evictable {
                evictable_s += 1;
            }
            if s.assigned_to.is_some() {
                let fully_active = s.active_parts == s.parts.len();
                if !fully_active {
                    return Err(format!("assigned sblock {sid} has inactive parts"));
                }
            }
        }
        if self.s_inactive.len() != inactive_s {
            return Err(format!(
                "s_inactive holds {} entries but {inactive_s} sblocks are fully inactive",
                self.s_inactive.len()
            ));
        }
        if self.s_evictable.len() != evictable_s {
            return Err(format!(
                "s_evictable holds {} entries but {evictable_s} sblocks are evictable",
                self.s_evictable.len()
            ));
        }
        // 3. Live allocations point at correctly-assigned targets, and no
        //    pBlock serves two live allocations.
        let mut held: HashMap<PBlockId, AllocationId> = HashMap::new();
        for (id, (target, _size)) in &self.live {
            match target {
                Target::P(pid) => {
                    let p = self
                        .pblocks
                        .get(*pid)
                        .ok_or_else(|| format!("{id} targets dead pblock {pid}"))?;
                    if p.assigned_to != Some(*id) {
                        return Err(format!("{id}: pblock {pid} assignment mismatch"));
                    }
                    if let Some(other) = held.insert(*pid, *id) {
                        return Err(format!("pblock {pid} held by {other} and {id}"));
                    }
                }
                Target::S(sid) => {
                    let s = self
                        .sblocks
                        .get(*sid)
                        .ok_or_else(|| format!("{id} targets dead sblock {sid}"))?;
                    if s.assigned_to != Some(*id) {
                        return Err(format!("{id}: sblock {sid} assignment mismatch"));
                    }
                    for pid in &s.parts {
                        if let Some(other) = held.insert(*pid, *id) {
                            return Err(format!("pblock {pid} held by {other} and {id}"));
                        }
                    }
                }
                Target::Small(_) => {}
            }
        }
        // 4. Embedded small pool invariants.
        self.small.validate()?;
        Ok(())
    }
}

impl AllocatorCore for GmLakeAllocator {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        if req.size == 0 {
            return Err(AllocError::ZeroSize);
        }
        self.driver.advance_clock(self.host_op_ns);
        if req.size < self.config.small_threshold {
            return self.allocate_small(req);
        }
        let result = match self.try_allocate_large(req) {
            Err(AllocError::OutOfMemory { .. }) => {
                // S5 fallback: surrender every cached structure and retry once.
                let released = self.release_cached_impl();
                if released == 0 {
                    self.counters.record(AllocState::Oom);
                    self.iter_non_exact += 1;
                    self.stats.oom_count += 1;
                    return Err(AllocError::OutOfMemory {
                        requested: req.size,
                        reserved: self.stats.reserved_bytes,
                        capacity: self.driver.capacity(),
                    });
                }
                self.try_allocate_large(req).map_err(|e| {
                    if matches!(e, AllocError::OutOfMemory { .. }) {
                        self.counters.record(AllocState::Oom);
                        self.iter_non_exact += 1;
                        self.stats.oom_count += 1;
                    }
                    e
                })
            }
            other => other,
        };
        if result.is_ok() {
            // StitchFree: trim the sPool now that the new block (if any) is
            // assigned and therefore protected from eviction.
            self.enforce_spool_capacity();
        }
        result
    }

    fn alloc_on_stream(
        &mut self,
        req: AllocRequest,
        stream: StreamId,
    ) -> Result<Allocation, AllocError> {
        // Pin the stream for the duration of the call: exact-match BestFit
        // results prefer same-stream candidates, and the block handed out is
        // stamped as last used by `stream`.
        self.current_stream = Some(stream);
        let result = self.allocate(req);
        self.current_stream = None;
        result
    }

    fn free_on_stream(&mut self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        // The freeing stream is the block's last user: stamp it so the next
        // exact match from that stream finds its own warm block.
        self.current_stream = Some(stream);
        let result = self.deallocate(id);
        self.current_stream = None;
        result
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        let (target, size) = self
            .live
            .remove(&id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        self.driver.advance_clock(self.host_op_ns);
        match target {
            Target::P(pid) => {
                let p = self.pblocks.get_mut(pid).expect("live pblock");
                p.assigned_to = None;
                if self.current_stream.is_some() {
                    p.last_stream = self.current_stream;
                }
                self.set_pblock_active(pid, false);
            }
            Target::S(sid) => {
                let parts = {
                    let tick = self.next_tick();
                    let s = self.sblocks.get_mut(sid).expect("live sblock");
                    s.assigned_to = None;
                    s.lru_tick = tick;
                    if self.current_stream.is_some() {
                        s.last_stream = self.current_stream;
                    }
                    s.parts.clone()
                };
                for pid in parts {
                    self.set_pblock_active(pid, false);
                }
            }
            Target::Small(inner) => {
                if let Err(e) = self.small.deallocate(inner) {
                    // Keep the allocation live so a rolled-back fault can be
                    // retried; anything else still indicates a bug.
                    self.live.insert(id, (target, size));
                    return Err(match e {
                        AllocError::DriverFault { .. } => e,
                        other => AllocError::Driver(format!("small pool: {other}")),
                    });
                }
            }
        }
        self.stats.on_free(size);
        self.sync_reserved();
        Ok(())
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "gmlake"
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn iteration_boundary(&mut self) {
        if self.iter_allocs > 0 && self.iter_non_exact == 0 {
            self.converged_streak += 1;
        } else {
            self.converged_streak = 0;
        }
        self.iterations += 1;
        self.non_exact_history.push(self.iter_non_exact);
        self.iter_non_exact = 0;
        self.iter_allocs = 0;
    }

    fn release_cached(&mut self) -> u64 {
        self.release_cached_impl()
    }

    fn set_stitch_enabled(&mut self, enabled: bool) {
        self.stitch_enabled = enabled;
    }

    fn fault_journal_stats(&self) -> gmlake_alloc_api::FaultJournalStats {
        gmlake_alloc_api::FaultJournalStats {
            failed_ops: self.journal.failed_ops,
            orphan_vas: self.journal.orphan_vas,
            orphan_va_bytes: self.journal.orphan_va_bytes,
            orphan_chunks: self.journal.orphan_chunks,
        }
    }

    /// GMLake's proactive defrag pass, gentler than the OOM fallback:
    ///
    /// 1. **sPool GC** — destroys unassigned sBlock structures that are
    ///    *blocked* (some part is active). An unassigned view whose parts
    ///    are woven into live allocations cannot serve an exact match, so
    ///    it is pure bookkeeping weight; dropping it releases its VA range
    ///    and un-references its parts, replenishing the cheap
    ///    (`StitchCost::Unreferenced`) stitching supply. Fully-inactive
    ///    views — the ready exact-match candidates behind the S1 steady
    ///    state — are deliberately kept.
    /// 2. **Dead-fragment release** — returns the physical memory of
    ///    inactive, unassigned, unreferenced pBlocks smaller than the
    ///    fragmentation limit. Such blocks are excluded from stitching by
    ///    the §4.2.3 robustness rule, so short of an improbable exact match
    ///    they are stranded capacity.
    ///
    /// Returns the physical bytes released (structure GC frees only virtual
    /// address space, which is unmetered).
    fn compact(&mut self) -> u64 {
        let blocked: Vec<SBlockId> = self
            .sblocks
            .iter()
            .filter(|(_, s)| s.assigned_to.is_none() && s.active_parts > 0)
            .map(|(sid, _)| sid)
            .collect();
        for sid in blocked {
            if self.destroy_sblock(sid).is_ok() {
                self.counters.evictions += 1;
            }
        }
        let dead: Vec<PBlockId> = self
            .pblocks
            .iter()
            .filter(|(_, p)| {
                !p.active
                    && p.assigned_to.is_none()
                    && p.referenced_by.is_empty()
                    && p.size < self.config.frag_limit
            })
            .map(|(pid, _)| pid)
            .collect();
        let mut released = 0;
        for pid in dead {
            let size = self.pblocks[pid].size;
            if self.destroy_pblock(pid).is_ok() {
                released += size;
            }
        }
        self.sync_reserved();
        self.emit(EventKind::Defrag, released, 0, 0);
        released
    }
}

impl Drop for GmLakeAllocator {
    fn drop(&mut self) {
        // Destructors never fail (C-DTOR-FAIL): best-effort teardown via
        // the batched entry points.
        let sids: Vec<SBlockId> = self.sblocks.keys().collect();
        for sid in sids {
            let s = self.sblocks.remove(sid).expect("listed above");
            let _ = self.driver.mem_unmap_range(s.va, s.size);
            let _ = self.driver.mem_address_free(s.va, s.size);
        }
        let pids: Vec<PBlockId> = self.pblocks.keys().collect();
        for pid in pids {
            let p = self.pblocks.remove(pid).expect("listed above");
            let _ = self.driver.mem_unmap_range(p.va, p.size);
            let _ = self.driver.mem_release_batch(&p.chunks);
            let _ = self.driver.mem_address_free(p.va, p.size);
        }
    }
}
