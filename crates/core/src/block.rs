//! pBlock and sBlock structures (§3.2 of the paper).
//!
//! * A **pBlock** (primitive block) owns a VA reservation and the physical
//!   2 MiB chunks mapped behind it. It is the only structure that owns
//!   physical memory, and the smallest unit assignable to a tensor.
//! * An **sBlock** (stitched block) owns *only* a VA reservation: its range
//!   is mapped onto the chunks of several pBlocks (which stay mapped at
//!   their own addresses too — the multi-VA aliasing the CUDA VMM allows).
//!   An sBlock is active whenever any of its pBlocks is active.

use std::collections::BTreeSet;

use gmlake_alloc_api::{AllocationId, StreamId, VirtAddr};
use gmlake_gpu_sim::PhysHandle;

use crate::bestfit::StitchCost;

/// Identifier of a pBlock within one allocator.
pub(crate) type PBlockId = u64;
/// Identifier of an sBlock within one allocator.
pub(crate) type SBlockId = u64;

/// A primitive block: VA range + owned physical chunks.
#[derive(Debug)]
pub(crate) struct PBlock {
    pub va: VirtAddr,
    pub size: u64,
    /// Physical chunks, each of the device granularity, mapped consecutively
    /// at `va`.
    pub chunks: Vec<PhysHandle>,
    /// Whether the block's memory is currently used by a tensor (directly or
    /// through an assigned sBlock).
    pub active: bool,
    /// Allocation currently holding this pBlock *directly* (not through an
    /// sBlock).
    pub assigned_to: Option<AllocationId>,
    /// sBlocks whose mapping includes this pBlock's chunks.
    pub referenced_by: BTreeSet<SBlockId>,
    /// Cached stitch-cost tier — which partition of the inactive index this
    /// block sits in while inactive. Maintained incrementally by the
    /// allocator as references and sBlock availability change, so `BestFit`
    /// never has to re-derive it.
    pub tier: StitchCost,
    /// Stream that last held this block (stamped on stream-aware allocate
    /// and free). Exact-match `BestFit` prefers candidates last used by the
    /// requesting stream, so warm blocks stay stream-local without any
    /// ordering or correctness impact on streamless callers (`None`).
    pub last_stream: Option<StreamId>,
}

impl PBlock {
    pub fn new(va: VirtAddr, size: u64, chunks: Vec<PhysHandle>) -> Self {
        PBlock {
            va,
            size,
            chunks,
            active: false,
            assigned_to: None,
            referenced_by: BTreeSet::new(),
            tier: StitchCost::Unreferenced,
            last_stream: None,
        }
    }
}

/// A stitched block: a VA range aliasing the chunks of `parts`.
#[derive(Debug)]
pub(crate) struct SBlock {
    pub va: VirtAddr,
    pub size: u64,
    /// Constituent pBlocks, in mapping order.
    pub parts: Vec<PBlockId>,
    /// Allocation currently holding this sBlock.
    pub assigned_to: Option<AllocationId>,
    /// Monotone tick of the last assignment, for LRU eviction.
    pub lru_tick: u64,
    /// Number of `parts` currently active. The sBlock is fully inactive
    /// (eligible for exact matches and eviction) exactly when this is zero —
    /// maintained incrementally so activity flips never re-scan the part
    /// list.
    pub active_parts: usize,
    /// Stream that last held this stitched view (see `PBlock::last_stream`).
    pub last_stream: Option<StreamId>,
}

impl SBlock {
    pub fn new(va: VirtAddr, size: u64, parts: Vec<PBlockId>, tick: u64) -> Self {
        SBlock {
            va,
            size,
            parts,
            assigned_to: None,
            lru_tick: tick,
            active_parts: 0,
            last_stream: None,
        }
    }
}

/// What an allocation id resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    /// A pBlock assigned directly.
    P(PBlockId),
    /// An sBlock.
    S(SBlockId),
    /// An allocation delegated to the embedded small pool (its own id space).
    Small(AllocationId),
}
