//! GMLake: GPU memory defragmentation via virtual memory stitching.
//!
//! This crate is the Rust reproduction of the primary contribution of
//! *GMLake: Efficient and Transparent GPU Memory Defragmentation for
//! Large-scale DNN Training with Virtual Memory Stitching* (ASPLOS 2024).
//!
//! Instead of splitting cached device memory (and stranding the remainders,
//! as the best-fit-with-coalescing caching allocator does), GMLake *fuses*
//! non-contiguous physical blocks behind a single contiguous virtual address
//! range using the CUDA virtual memory management API:
//!
//! * [`GmLakeAllocator`] — the allocator (`Alloc` / `Split` / `Stitch` /
//!   `BestFit` / `Update` / `StitchFree`);
//! * [`GmLakeConfig`] — chunk size, fragmentation limit, sPool capacity;
//! * [`StateCounters`] / [`AllocState`] — telemetry of the S1–S5 allocation
//!   states of the paper's Figure 9, used to observe convergence.
//!
//! ```
//! use gmlake_core::{GmLakeAllocator, GmLakeConfig};
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_alloc_api::{AllocRequest, AllocatorCore, mib};
//!
//! let driver = CudaDriver::new(DeviceConfig::small_test());
//! // Lower the fragmentation limit so MiB-scale doctest blocks may stitch.
//! let config = GmLakeConfig::default().with_frag_limit(mib(2));
//! let mut lake = GmLakeAllocator::new(driver.clone(), config);
//!
//! // Free 4 MiB + 6 MiB, then allocate 10 MiB: served by stitching, with
//! // zero new physical memory.
//! let a = lake.allocate(AllocRequest::new(mib(4)))?;
//! let b = lake.allocate(AllocRequest::new(mib(6)))?;
//! lake.deallocate(a.id)?;
//! lake.deallocate(b.id)?;
//! let c = lake.allocate(AllocRequest::new(mib(10)))?;
//! assert_eq!(driver.phys_in_use(), mib(10));
//! assert_eq!(lake.state_counters().stitches, 1);
//! # lake.deallocate(c.id)?;
//! # Ok::<(), gmlake_alloc_api::AllocError>(())
//! ```

mod allocator;
mod bestfit;
mod block;
mod config;
mod slab;

#[cfg(test)]
mod tests;

pub use allocator::{FaultJournal, GmLakeAllocator};
pub use config::{AllocState, GmLakeConfig, StateCounters};
