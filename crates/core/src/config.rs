//! GMLake configuration and allocation-state telemetry.

use gmlake_alloc_api::mib;
use gmlake_caching::BfcConfig;

/// Tuning knobs of the GMLake allocator.
///
/// The defaults follow the paper: 2 MiB physical chunks (the CUDA VMM
/// granularity), a small-allocation threshold of 2 MiB below which the
/// classic splitting allocator is used (§3.1: "allocation < 2 MB is rare in
/// LLM training"), and a *fragmentation limit* below which blocks are neither
/// split nor used as stitching candidates (§4.2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmLakeConfig {
    /// Requests below this size go to the embedded splitting allocator
    /// (default: 2 MiB, the chunk size).
    pub small_threshold: u64,
    /// Blocks smaller than this are never split off as remainders nor used
    /// as multi-block stitching candidates. The paper quotes 128 MiB as an
    /// example for real hardware, where per-part bookkeeping costs real CPU
    /// time; in simulation the per-chunk mapping cost is identical either
    /// way, so we default low (4 MiB) to minimize whole-block internal
    /// waste, and sweep the knob in the `ablation_frag_limit` bench to show
    /// the trade-off the paper describes (§4.2.3).
    pub frag_limit: u64,
    /// Maximum number of cached sBlock structures before the LRU
    /// `StitchFree` pass evicts inactive ones (§3.3.2). The paper notes
    /// that "as long as we maintain enough sPool instances, all allocations
    /// only search for its best-fit sBlock without creating a new sBlock" —
    /// an undersized sPool causes perpetual evict/re-stitch churn, so the
    /// default is sized above one steady-state iteration's working set.
    pub max_sblocks: usize,
    /// How many LRU-ordered eviction candidates `StitchFree` inspects
    /// before destroying one. Within the window the victim with the
    /// fewest *uniquely referenced* parts wins (its pBlocks live on in
    /// other cached views, so destroying it cannibalizes the least
    /// exact-match coverage); ties fall back to LRU order. `1` recovers
    /// the pure `(lru_tick, id)` LRU of the paper's §3.3.2. The window is
    /// a full scan of each candidate's parts, so keep it small.
    pub evict_scan_window: usize,
    /// Whether every `Split` additionally caches an sBlock stitching the two
    /// halves (the behaviour illustrated in the paper's Figure 9 S2), so a
    /// future request of the original size exact-matches. Under workloads
    /// with hundreds of distinct sizes this densifies pBlock↔sBlock sharing
    /// until most cached sBlocks are unavailable (some part is always busy),
    /// which blocks convergence — so it defaults off; the
    /// `ablation_split_halves` bench quantifies the trade-off.
    pub cache_split_halves: bool,
    /// Configuration of the embedded small-allocation pool.
    pub small_config: BfcConfig,
}

impl Default for GmLakeConfig {
    fn default() -> Self {
        GmLakeConfig {
            small_threshold: mib(2),
            frag_limit: mib(4),
            max_sblocks: 8192,
            evict_scan_window: 8,
            cache_split_halves: false,
            small_config: BfcConfig::default(),
        }
    }
}

impl GmLakeConfig {
    /// Sets the fragmentation limit.
    #[must_use]
    pub fn with_frag_limit(mut self, frag_limit: u64) -> Self {
        self.frag_limit = frag_limit;
        self
    }

    /// Sets the sBlock cache capacity.
    #[must_use]
    pub fn with_max_sblocks(mut self, max_sblocks: usize) -> Self {
        self.max_sblocks = max_sblocks;
        self
    }

    /// Sets the small-allocation threshold.
    #[must_use]
    pub fn with_small_threshold(mut self, small_threshold: u64) -> Self {
        self.small_threshold = small_threshold;
        self
    }

    /// Sets the `StitchFree` victim-scan window (`1` = pure LRU).
    #[must_use]
    pub fn with_evict_scan_window(mut self, evict_scan_window: usize) -> Self {
        self.evict_scan_window = evict_scan_window;
        self
    }

    /// Enables or disables caching an sBlock of the halves on every split.
    #[must_use]
    pub fn with_cache_split_halves(mut self, enable: bool) -> Self {
        self.cache_split_halves = enable;
        self
    }
}

/// Which of the paper's allocation states (Figure 9) served each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocState {
    /// S1 — exact match of an inactive sBlock or pBlock.
    ExactMatch,
    /// S2 — a single larger pBlock was found (split or used whole).
    SingleBlock,
    /// S3 — multiple pBlocks were stitched.
    MultiBlock,
    /// S4 — new physical memory was allocated (possibly stitched with
    /// leftovers).
    Insufficient,
    /// S5 — out of memory.
    Oom,
}

/// Cumulative counters of allocation-state transitions; the paper's
/// convergence claim (§4.2.2) is that after a few iterations only S1 fires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateCounters {
    /// S1 count.
    pub exact: u64,
    /// S2 count.
    pub single: u64,
    /// S3 count.
    pub multi: u64,
    /// S4 count.
    pub insufficient: u64,
    /// S5 count.
    pub oom: u64,
    /// Number of `Stitch` executions (sBlock creations).
    pub stitches: u64,
    /// Number of `Split` executions.
    pub splits: u64,
    /// Number of sBlocks evicted by `StitchFree`.
    pub evictions: u64,
}

impl StateCounters {
    /// Transitions that indicate the allocator is still adapting
    /// (everything except exact matches).
    pub fn non_exact(&self) -> u64 {
        self.single + self.multi + self.insufficient + self.oom
    }

    pub(crate) fn record(&mut self, state: AllocState) {
        match state {
            AllocState::ExactMatch => self.exact += 1,
            AllocState::SingleBlock => self.single += 1,
            AllocState::MultiBlock => self.multi += 1,
            AllocState::Insufficient => self.insufficient += 1,
            AllocState::Oom => self.oom += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = GmLakeConfig::default();
        assert_eq!(c.small_threshold, mib(2));
        assert!(c.frag_limit >= mib(2));
        assert!(c.max_sblocks > 0);
    }

    #[test]
    fn builders_chain() {
        let c = GmLakeConfig::default()
            .with_frag_limit(mib(128))
            .with_max_sblocks(7)
            .with_small_threshold(mib(4));
        assert_eq!(c.frag_limit, mib(128));
        assert_eq!(c.max_sblocks, 7);
        assert_eq!(c.small_threshold, mib(4));
    }

    #[test]
    fn counters_record_states() {
        let mut s = StateCounters::default();
        s.record(AllocState::ExactMatch);
        s.record(AllocState::SingleBlock);
        s.record(AllocState::MultiBlock);
        s.record(AllocState::Insufficient);
        s.record(AllocState::Oom);
        assert_eq!(s.exact, 1);
        assert_eq!(s.non_exact(), 4);
    }
}
