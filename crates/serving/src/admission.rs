//! Admission control: whether a device accepts a new tenant's quota
//! commitment, and what happens when it is over committed capacity.

use std::collections::VecDeque;

use crate::tenant::TenantId;

/// What to do with a tenant arrival that would push the device's
/// committed quota past its limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the arrival outright. The cheapest policy, and the only one
    /// that never delays an answer — serving front-ends that can route the
    /// job to another device want this.
    Reject,
    /// Park the arrival in a FIFO queue and retry it at every service
    /// step, up to `max_wait_steps`; past that the arrival times out and
    /// is refused.
    Queue {
        /// Steps an arrival may wait before timing out.
        max_wait_steps: u64,
    },
    /// Evict idle tenants (oldest-idle first, never active ones) until the
    /// arrival fits, then admit it; refuse if shedding every idle tenant
    /// still leaves the device over committed capacity.
    Shed,
}

/// The answer to one tenant arrival (see
/// [`ServingService::offer`](crate::ServingService::offer)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The tenant is registered and may allocate.
    Admitted(TenantId),
    /// The device refused the arrival (policy [`AdmissionPolicy::Reject`],
    /// or [`AdmissionPolicy::Shed`] with nothing left to shed).
    Rejected,
    /// The arrival is queued; [`ServingService::step`] will admit it when
    /// capacity frees, or time it out.
    ///
    /// [`ServingService::step`]: crate::ServingService::step
    Queued,
    /// Idle tenants were shed to make room, then the tenant was admitted.
    AdmittedAfterShed(TenantId),
}

impl AdmissionVerdict {
    /// The admitted tenant id, if any.
    pub fn tenant(&self) -> Option<TenantId> {
        match self {
            AdmissionVerdict::Admitted(t) | AdmissionVerdict::AdmittedAfterShed(t) => Some(*t),
            _ => None,
        }
    }
}

/// Cumulative admission-control counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Arrivals admitted immediately (including dequeued ones).
    pub admitted: u64,
    /// Arrivals refused outright.
    pub rejected: u64,
    /// Arrivals parked in the queue at least once.
    pub queued: u64,
    /// Queued arrivals that timed out waiting.
    pub queue_timeouts: u64,
    /// Arrivals admitted only after shedding idle tenants.
    pub shed_admits: u64,
    /// Idle tenants evicted by the shed policy.
    pub tenants_shed: u64,
    /// Peak simultaneously-registered tenants.
    pub peak_tenants: u64,
}

/// One parked arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QueuedArrival {
    /// The quota the arrival asked to commit.
    pub quota_bytes: u64,
    /// The step the arrival was first queued at.
    pub queued_at: u64,
}

/// Commitment-capacity bookkeeping plus the waiting queue. The controller
/// decides *whether* an arrival fits; the
/// [`ServingService`](crate::ServingService) owns the side effects
/// (registering tenants, shedding, telemetry).
#[derive(Debug)]
pub(crate) struct AdmissionController {
    /// Committed-quota ceiling: device capacity × overcommit factor.
    pub limit_bytes: u64,
    pub policy: AdmissionPolicy,
    pub queue: VecDeque<QueuedArrival>,
    pub stats: AdmissionStats,
}

impl AdmissionController {
    pub fn new(limit_bytes: u64, policy: AdmissionPolicy) -> Self {
        AdmissionController {
            limit_bytes,
            policy,
            queue: VecDeque::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// Whether a `quota_bytes` commitment fits under the limit given the
    /// currently committed total.
    pub fn fits(&self, committed: u64, quota_bytes: u64) -> bool {
        committed + quota_bytes <= self.limit_bytes
    }

    /// Drops queued arrivals older than `max_wait` steps, counting each as
    /// a timeout; returns them for telemetry.
    pub fn expire(&mut self, now_step: u64, max_wait: u64) -> Vec<QueuedArrival> {
        let mut expired = Vec::new();
        self.queue.retain(|q| {
            if now_step.saturating_sub(q.queued_at) > max_wait {
                expired.push(*q);
                false
            } else {
                true
            }
        });
        self.stats.queue_timeouts += expired.len() as u64;
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_is_inclusive_at_the_limit() {
        let c = AdmissionController::new(100, AdmissionPolicy::Reject);
        assert!(c.fits(60, 40));
        assert!(!c.fits(60, 41));
        assert!(c.fits(0, 100));
    }

    #[test]
    fn expire_drops_only_overdue_arrivals_in_order() {
        let mut c = AdmissionController::new(100, AdmissionPolicy::Queue { max_wait_steps: 5 });
        c.queue.push_back(QueuedArrival {
            quota_bytes: 10,
            queued_at: 0,
        });
        c.queue.push_back(QueuedArrival {
            quota_bytes: 20,
            queued_at: 4,
        });
        let expired = c.expire(6, 5);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].quota_bytes, 10);
        assert_eq!(c.queue.len(), 1);
        assert_eq!(c.stats.queue_timeouts, 1);
        assert_eq!(c.expire(6, 5).len(), 0, "idempotent at the same step");
    }

    #[test]
    fn verdict_tenant_extraction() {
        let t = TenantId(3);
        assert_eq!(AdmissionVerdict::Admitted(t).tenant(), Some(t));
        assert_eq!(AdmissionVerdict::AdmittedAfterShed(t).tenant(), Some(t));
        assert_eq!(AdmissionVerdict::Rejected.tenant(), None);
        assert_eq!(AdmissionVerdict::Queued.tenant(), None);
    }
}
