//! Step-cadence defragmentation for serving pools: a periodic compaction
//! plus an aggressive mode keyed to tenant churn and fragmentation.
//!
//! Training loops defragment at iteration boundaries (the runtime's
//! `DefragScheduler`); a serving pool has no iterations, but it does have
//! a step cadence and — unlike training — *churn*: tenants arriving and
//! departing reshape the size distribution, stranding cached blocks sized
//! for jobs that no longer exist. The manager runs a cheap periodic
//! `compact` on a fixed cadence and escalates to an aggressive pass
//! (drain event rings, compact, release the cache) while churn or
//! fragmentation is high.

use gmlake_runtime::PoolHandle;

/// Tuning knobs of the serving layer's defrag manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefragConfig {
    /// Run a periodic `compact` every this many steps (`0` disables the
    /// periodic mode).
    pub period_steps: u64,
    /// Sliding window, in steps, over which churn is counted.
    pub churn_window_steps: u64,
    /// Tenant arrivals + departures within the window at or above which
    /// the manager escalates to the aggressive pass.
    pub aggressive_churn: u64,
    /// Pool fragmentation at or above which the manager escalates
    /// regardless of churn.
    pub aggressive_frag: f64,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            period_steps: 64,
            churn_window_steps: 32,
            aggressive_churn: 8,
            aggressive_frag: 0.5,
        }
    }
}

/// Cumulative counters of the manager's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragManagerStats {
    /// Periodic `compact` passes run.
    pub periodic_passes: u64,
    /// Aggressive (drain + compact + release) passes run.
    pub aggressive_passes: u64,
    /// Physical bytes reclaimed across all passes.
    pub bytes_reclaimed: u64,
}

/// Step-driven defrag driver for one serving pool. Not thread-safe on its
/// own — the owning [`ServingService`](crate::ServingService) calls it
/// from behind its step lock, once per step.
#[derive(Debug)]
pub(crate) struct DefragManager {
    cfg: DefragConfig,
    /// Churn events per recent step, oldest first (bounded ring of
    /// `churn_window_steps` entries).
    window: std::collections::VecDeque<u64>,
    stats: DefragManagerStats,
}

impl DefragManager {
    pub fn new(cfg: DefragConfig) -> Self {
        DefragManager {
            cfg,
            window: std::collections::VecDeque::new(),
            stats: DefragManagerStats::default(),
        }
    }

    pub fn stats(&self) -> DefragManagerStats {
        self.stats
    }

    /// Churn events (arrivals + departures) inside the sliding window.
    pub fn churn_in_window(&self) -> u64 {
        self.window.iter().sum()
    }

    /// Advances the manager by one step that saw `churn_events` tenant
    /// arrivals + departures, running whichever pass the cadence and the
    /// pool's state call for. Returns the bytes reclaimed this step.
    pub fn on_step(&mut self, step: u64, churn_events: u64, pool: &PoolHandle) -> u64 {
        self.window.push_back(churn_events);
        while self.window.len() as u64 > self.cfg.churn_window_steps.max(1) {
            self.window.pop_front();
        }
        let mut reclaimed = 0;
        let aggressive = self.churn_in_window() >= self.cfg.aggressive_churn
            || pool.fragmentation() >= self.cfg.aggressive_frag;
        if aggressive {
            // Promote parked cross-stream blocks first so the compaction
            // and release below see them, then drop the whole idle cache:
            // under heavy churn the cached shapes belong to departed
            // tenants and will not recur.
            pool.process_events();
            reclaimed += pool.compact();
            reclaimed += pool.release_cached();
            self.stats.aggressive_passes += 1;
        } else if self.cfg.period_steps > 0 && step.is_multiple_of(self.cfg.period_steps) {
            reclaimed += pool.compact();
            self.stats.periodic_passes += 1;
        }
        self.stats.bytes_reclaimed += reclaimed;
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::{mib, AllocRequest};
    use gmlake_caching::CachingAllocator;
    use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
    use gmlake_runtime::{DeviceId, PoolService};

    fn pool() -> PoolHandle {
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        PoolService::new()
            .register(DeviceId(0), Box::new(CachingAllocator::new(driver)))
            .unwrap()
    }

    #[test]
    fn periodic_pass_fires_on_cadence_only() {
        let pool = pool();
        let mut m = DefragManager::new(DefragConfig {
            period_steps: 4,
            churn_window_steps: 8,
            aggressive_churn: u64::MAX,
            aggressive_frag: 1.1,
        });
        for step in 1..=8 {
            m.on_step(step, 0, &pool);
        }
        assert_eq!(m.stats().periodic_passes, 2, "steps 4 and 8");
        assert_eq!(m.stats().aggressive_passes, 0);
    }

    #[test]
    fn churn_burst_escalates_and_reclaims_the_idle_cache() {
        let pool = pool();
        let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        pool.deallocate(a.id).unwrap();
        assert!(pool.stats().reserved_bytes >= mib(8), "cache warm");
        let mut m = DefragManager::new(DefragConfig {
            period_steps: 0,
            churn_window_steps: 4,
            aggressive_churn: 6,
            aggressive_frag: 1.1, // never by fragmentation
        });
        assert_eq!(m.on_step(1, 2, &pool), 0, "churn 2 < 6: quiet");
        let got = m.on_step(2, 4, &pool);
        assert!(got >= mib(8), "churn 6 >= 6: aggressive pass released");
        assert_eq!(pool.stats().reserved_bytes, 0);
        assert_eq!(m.stats().aggressive_passes, 1);
        // The window slides: after 4 quiet steps the burst ages out.
        for step in 3..=6 {
            m.on_step(step, 0, &pool);
        }
        assert_eq!(m.churn_in_window(), 0);
        assert_eq!(
            m.stats().aggressive_passes,
            3,
            "steps 3 and 4 still saw the burst in the window; 5 and 6 did not"
        );
    }

    #[test]
    fn fragmentation_alone_escalates() {
        let pool = pool();
        let a = pool.allocate(AllocRequest::new(mib(8))).unwrap();
        pool.deallocate(a.id).unwrap();
        assert!(pool.fragmentation() > 0.9, "all-cache pool is fragmented");
        let mut m = DefragManager::new(DefragConfig {
            period_steps: 0,
            churn_window_steps: 4,
            aggressive_churn: u64::MAX,
            aggressive_frag: 0.5,
        });
        assert!(m.on_step(1, 0, &pool) >= mib(8));
        assert_eq!(m.stats().aggressive_passes, 1);
    }
}
