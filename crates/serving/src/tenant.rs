//! Tenant identity, per-tenant byte-quota accounting, and the registry
//! shared by the admission controller and the rescue stage.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use gmlake_alloc_api::{AllocationId, StreamId};
use parking_lot::Mutex;

/// Identifies one tenant (one serving job) within a
/// [`ServingService`](crate::ServingService).
///
/// Process-unique and never reused: a departed tenant's id stays dead, so
/// a stale handle can never charge a newcomer's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Read-only snapshot of one tenant's accounting state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantUsage {
    /// The tenant's byte quota (admission-time commitment).
    pub quota_bytes: u64,
    /// Bytes the tenant currently has live, at the allocator's rounded
    /// granularity — this is what quota enforcement compares against.
    pub used_bytes: u64,
    /// Bytes the tenant asked for across its live allocations (before
    /// size-class rounding); `used_bytes - requested_bytes` is the
    /// tenant's internal-fragmentation overhead.
    pub requested_bytes: u64,
    /// Live allocations.
    pub live_allocs: u64,
    /// The logical GPU stream the tenant's traffic rides.
    pub stream: StreamId,
    /// The service step of the tenant's last allocation activity.
    pub last_active_step: u64,
}

impl TenantUsage {
    /// The tenant's internal fragmentation: the fraction of its used bytes
    /// that exist only because of size-class rounding. `0.0` for an idle
    /// tenant with nothing live.
    pub fn fragmentation(&self) -> f64 {
        if self.used_bytes == 0 {
            0.0
        } else {
            1.0 - self.requested_bytes as f64 / self.used_bytes as f64
        }
    }
}

/// One registered tenant.
#[derive(Debug)]
struct TenantState {
    quota: u64,
    used: u64,
    requested: u64,
    /// Live allocations: id → (rounded size, requested size).
    live: HashMap<AllocationId, (u64, u64)>,
    stream: StreamId,
    last_active_step: u64,
}

impl TenantState {
    fn usage(&self) -> TenantUsage {
        TenantUsage {
            quota_bytes: self.quota,
            used_bytes: self.used,
            requested_bytes: self.requested,
            live_allocs: self.live.len() as u64,
            stream: self.stream,
            last_active_step: self.last_active_step,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    tenants: BTreeMap<u64, TenantState>,
    next_id: u64,
    /// Sum of registered quotas — the admission controller's commitment
    /// gauge.
    committed: u64,
    next_stream: u64,
}

/// Thread-safe registry of tenants and their byte-quota accounting.
///
/// The registry is pure bookkeeping: it never talks to the allocator.
/// [`ServingService`](crate::ServingService) brackets each pool call with
/// the registry's two-phase charge — `try_reserve` before the allocation
/// (against the *requested* size) and `settle` after it (against the
/// allocator's rounded size), so enforcement is exact even though the
/// rounded size is only known once the pool has answered.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    inner: Mutex<RegistryInner>,
    /// Stream banks to round-robin tenants across (fixed at construction).
    streams: u64,
}

/// Why a [`TenantRegistry::try_reserve`] or [`TenantRegistry::settle`]
/// charge was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChargeError {
    /// The tenant id is not registered (departed or never existed).
    UnknownTenant,
    /// The charge would exceed the quota; carries (used, quota) at the
    /// moment of refusal for an exact error report.
    OverQuota {
        /// Live bytes at refusal time.
        used: u64,
        /// The tenant's quota.
        quota: u64,
    },
}

impl TenantRegistry {
    /// A registry that spreads tenants across `streams` logical GPU
    /// streams round-robin (clamped to at least 1).
    pub fn new(streams: u64) -> Self {
        TenantRegistry {
            inner: Mutex::new(RegistryInner::default()),
            streams: streams.max(1),
        }
    }

    /// Registers a tenant with `quota_bytes`, assigning the next stream
    /// round-robin. Returns the new id and its stream.
    pub fn register(&self, quota_bytes: u64, now_step: u64) -> (TenantId, StreamId) {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let stream = StreamId((inner.next_stream % self.streams) as u32);
        inner.next_stream += 1;
        inner.committed += quota_bytes;
        inner.tenants.insert(
            id,
            TenantState {
                quota: quota_bytes,
                used: 0,
                requested: 0,
                live: HashMap::new(),
                stream,
                last_active_step: now_step,
            },
        );
        (TenantId(id), stream)
    }

    /// Removes `tenant`, returning its remaining live allocations as
    /// `(id, rounded size)` pairs (the caller frees them on the pool) and
    /// its stream. `None` if the tenant is unknown.
    pub fn remove(&self, tenant: TenantId) -> Option<(Vec<(AllocationId, u64)>, StreamId)> {
        let mut inner = self.inner.lock();
        let state = inner.tenants.remove(&tenant.0)?;
        inner.committed -= state.quota;
        let live = state
            .live
            .iter()
            .map(|(&id, &(size, _))| (id, size))
            .collect();
        Some((live, state.stream))
    }

    /// Phase 1 of the quota charge: reserves `requested` bytes against the
    /// tenant's quota (refusing exactly at the boundary: a reservation
    /// that would make `used > quota` fails) and marks the tenant active
    /// at `now_step`.
    pub(crate) fn try_reserve(
        &self,
        tenant: TenantId,
        requested: u64,
        now_step: u64,
    ) -> Result<StreamId, ChargeError> {
        let mut inner = self.inner.lock();
        let state = inner
            .tenants
            .get_mut(&tenant.0)
            .ok_or(ChargeError::UnknownTenant)?;
        if state.used + requested > state.quota {
            return Err(ChargeError::OverQuota {
                used: state.used,
                quota: state.quota,
            });
        }
        state.used += requested;
        state.last_active_step = now_step;
        Ok(state.stream)
    }

    /// Rolls back a phase-1 reservation after the pool refused the
    /// allocation.
    pub(crate) fn unreserve(&self, tenant: TenantId, requested: u64) {
        if let Some(state) = self.inner.lock().tenants.get_mut(&tenant.0) {
            state.used = state.used.saturating_sub(requested);
        }
    }

    /// Phase 2 of the quota charge: replaces the `requested`-byte
    /// reservation with the allocator's `rounded` size and records the
    /// live allocation. Fails (restoring the pre-reservation state, so
    /// the caller must free `id` on the pool) when the rounding pushed
    /// the tenant past its quota.
    pub(crate) fn settle(
        &self,
        tenant: TenantId,
        id: AllocationId,
        requested: u64,
        rounded: u64,
    ) -> Result<(), ChargeError> {
        let mut inner = self.inner.lock();
        let state = inner
            .tenants
            .get_mut(&tenant.0)
            .ok_or(ChargeError::UnknownTenant)?;
        let settled = state.used - requested + rounded;
        if settled > state.quota {
            state.used -= requested;
            return Err(ChargeError::OverQuota {
                used: state.used,
                quota: state.quota,
            });
        }
        state.used = settled;
        state.requested += requested;
        state.live.insert(id, (rounded, requested));
        Ok(())
    }

    /// Credits a freed allocation back to the tenant. Returns the
    /// `(rounded size, stream)` the free must be issued with, or `None`
    /// when `id` is not live for `tenant` (e.g. already dropped by the
    /// rescue stage).
    pub(crate) fn credit(&self, tenant: TenantId, id: AllocationId) -> Option<(u64, StreamId)> {
        let mut inner = self.inner.lock();
        let state = inner.tenants.get_mut(&tenant.0)?;
        let (size, requested) = state.live.remove(&id)?;
        state.used -= size;
        state.requested -= requested;
        Some((size, state.stream))
    }

    /// Usage snapshot of one tenant.
    pub fn usage(&self, tenant: TenantId) -> Option<TenantUsage> {
        self.inner.lock().tenants.get(&tenant.0).map(|s| s.usage())
    }

    /// Usage snapshots of every tenant, ascending by id.
    pub fn usages(&self) -> Vec<(TenantId, TenantUsage)> {
        self.inner
            .lock()
            .tenants
            .iter()
            .map(|(&id, s)| (TenantId(id), s.usage()))
            .collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.inner.lock().tenants.len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of registered quotas — what admission has committed.
    pub fn committed_bytes(&self) -> u64 {
        self.inner.lock().committed
    }

    /// Sum of live bytes across every tenant.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().tenants.values().map(|s| s.used).sum()
    }

    /// Tenants idle since before `now_step - idle_after`, oldest first —
    /// the rescue stage's victim order. Tenants active within the window
    /// are never listed.
    pub(crate) fn idle_tenants(&self, now_step: u64, idle_after: u64) -> Vec<TenantId> {
        let inner = self.inner.lock();
        let mut idle: Vec<(u64, u64)> = inner
            .tenants
            .iter()
            .filter(|(_, s)| now_step.saturating_sub(s.last_active_step) >= idle_after)
            .map(|(&id, s)| (s.last_active_step, id))
            .collect();
        idle.sort_unstable();
        idle.into_iter().map(|(_, id)| TenantId(id)).collect()
    }

    /// Drops every live allocation of `tenant` from the books (the caller
    /// frees them on the pool), returning the `(id, rounded size)` pairs
    /// and the tenant's stream. The tenant stays registered with an empty
    /// working set. `None` for unknown tenants.
    pub(crate) fn drop_live(
        &self,
        tenant: TenantId,
    ) -> Option<(Vec<(AllocationId, u64)>, StreamId)> {
        let mut inner = self.inner.lock();
        let state = inner.tenants.get_mut(&tenant.0)?;
        let live: Vec<(AllocationId, u64)> = state
            .live
            .drain()
            .map(|(id, (size, _))| (id, size))
            .collect();
        state.used = 0;
        state.requested = 0;
        Some((live, state.stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_round_robin_streams_and_commits_quota() {
        let reg = TenantRegistry::new(2);
        let (a, sa) = reg.register(100, 0);
        let (b, sb) = reg.register(200, 0);
        let (_c, sc) = reg.register(300, 0);
        assert_ne!(a, b);
        assert_eq!(sa, StreamId(0));
        assert_eq!(sb, StreamId(1));
        assert_eq!(sc, StreamId(0), "round-robin wraps");
        assert_eq!(reg.committed_bytes(), 600);
        assert_eq!(reg.len(), 3);
        reg.remove(b).unwrap();
        assert_eq!(reg.committed_bytes(), 400);
        assert!(reg.remove(b).is_none(), "ids are never reused");
    }

    #[test]
    fn two_phase_charge_is_exact_at_the_boundary() {
        let reg = TenantRegistry::new(1);
        let (t, _) = reg.register(100, 0);
        // Reserve exactly up to the quota: allowed.
        reg.try_reserve(t, 100, 1).unwrap();
        assert_eq!(
            reg.try_reserve(t, 1, 1),
            Err(ChargeError::OverQuota {
                used: 100,
                quota: 100
            })
        );
        // Settling at the reserved size records the live allocation.
        reg.settle(t, AllocationId::new(1), 100, 100).unwrap();
        let u = reg.usage(t).unwrap();
        assert_eq!((u.used_bytes, u.live_allocs), (100, 1));
        // Credit restores headroom.
        assert_eq!(
            reg.credit(t, AllocationId::new(1)),
            Some((100, StreamId(0)))
        );
        assert_eq!(reg.usage(t).unwrap().used_bytes, 0);
    }

    #[test]
    fn settle_rejects_rounding_past_the_quota_and_restores_state() {
        let reg = TenantRegistry::new(1);
        let (t, _) = reg.register(100, 0);
        reg.try_reserve(t, 90, 1).unwrap();
        // The allocator rounded 90 up to 128: over quota; the reservation
        // is rolled back entirely.
        assert_eq!(
            reg.settle(t, AllocationId::new(1), 90, 128),
            Err(ChargeError::OverQuota {
                used: 0,
                quota: 100
            })
        );
        let u = reg.usage(t).unwrap();
        assert_eq!((u.used_bytes, u.requested_bytes, u.live_allocs), (0, 0, 0));
    }

    #[test]
    fn idle_order_is_oldest_first_and_spares_active_tenants() {
        let reg = TenantRegistry::new(1);
        let (a, _) = reg.register(100, 0);
        let (b, _) = reg.register(100, 0);
        let (c, _) = reg.register(100, 0);
        // b active at step 5, a at step 2, c never after registration.
        reg.try_reserve(a, 1, 2).unwrap();
        reg.try_reserve(b, 1, 5).unwrap();
        assert_eq!(reg.idle_tenants(10, 6), vec![c, a]);
        assert_eq!(reg.idle_tenants(10, 100), Vec::<TenantId>::new());
    }

    #[test]
    fn drop_live_empties_the_books_but_keeps_the_tenant() {
        let reg = TenantRegistry::new(1);
        let (t, _) = reg.register(100, 0);
        reg.try_reserve(t, 30, 1).unwrap();
        reg.settle(t, AllocationId::new(7), 30, 32).unwrap();
        let (live, _) = reg.drop_live(t).unwrap();
        assert_eq!(live, vec![(AllocationId::new(7), 32)]);
        assert_eq!(reg.usage(t).unwrap().used_bytes, 0);
        assert_eq!(reg.len(), 1, "evicted, not departed");
        assert_eq!(reg.credit(t, AllocationId::new(7)), None, "already dropped");
    }

    #[test]
    fn usage_fragmentation_measures_rounding_waste() {
        let reg = TenantRegistry::new(1);
        let (t, _) = reg.register(1000, 0);
        reg.try_reserve(t, 96, 1).unwrap();
        reg.settle(t, AllocationId::new(1), 96, 128).unwrap();
        let u = reg.usage(t).unwrap();
        assert!((u.fragmentation() - 0.25).abs() < 1e-9);
    }
}
