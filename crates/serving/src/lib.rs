//! # gmlake-serving — multi-tenant serving over GMLake pools
//!
//! Training jobs own a whole device; serving fleets do not. Hundreds of
//! inference jobs — heterogeneous model footprints, bursty lifetimes —
//! multiplex one GPU, and the memory pool underneath them must keep the
//! tenants isolated *logically* (one tenant's appetite must never surface
//! as another tenant's OOM) while sharing the physical pool as
//! aggressively as GMLake's stitching allows.
//!
//! This crate is that front-end, one [`ServingService`] per device pool:
//!
//! * [`TenantRegistry`] — per-tenant byte quotas with exact two-phase
//!   charge accounting (reserve before the pool call, settle the rounded
//!   size after), live-allocation books, idle tracking;
//! * [`AdmissionPolicy`] — arrivals commit quota against
//!   `capacity × overcommit`; over the ceiling they are rejected, queued
//!   with a bounded wait, or admitted by shedding idle tenants;
//! * tenant-aware OOM rescue — the service installs a stage-4
//!   [`RescueHook`](gmlake_runtime::RescueHook) that drops *idle*
//!   tenants' working sets (oldest-idle first) before an active tenant
//!   can see a device-level OOM;
//! * [`DefragConfig`] — a step-cadence defrag manager compacting
//!   periodically and escalating under tenant churn or fragmentation.
//!
//! Quota violations surface as the recoverable
//! [`AllocError::QuotaExceeded`](gmlake_alloc_api::AllocError::QuotaExceeded)
//! with exact `requested`/`used`/`quota` numbers, refused before the
//! device is consulted.
//!
//! See `docs/serving.md` for the design narrative and
//! `gmlake-workload`'s serving generator + `bench_pr8` for the churn
//! workloads and p99/p999 latency gates built on top of this crate.

#![warn(missing_docs)]

mod admission;
mod defrag;
mod service;
mod tenant;

pub use admission::{AdmissionPolicy, AdmissionStats, AdmissionVerdict};
pub use defrag::{DefragConfig, DefragManagerStats};
pub use service::{ServingConfig, ServingService, ServingStats, StepOutcome};
pub use tenant::{TenantId, TenantRegistry, TenantUsage};
